//! Generated-scenario conformance: the farm's procedurally generated
//! environments get the same bit-exactness guarantees the 15 hand-written
//! benchmarks have.
//!
//! Four layers of evidence:
//!
//! 1. Acceptance scale: the default farm yields ≥ 200 distinct well-formed
//!    scenarios from ≥ 4 families including compositional products.
//! 2. A seeded sweep over ≥ 50 generated environments comparing `decide`,
//!    `decide_batch`, and `decide_exact` decision-for-decision (bit
//!    identity on action words), with and without a decision table.
//! 3. Decision-table degradation: on *every* generated instance the table
//!    build either succeeds or falls back to the exact path — never
//!    panics — and the fallback obs counter records each degradation
//!    (the PR 8 finding: a dense grid certifies nothing at 8/16/18-D).
//! 4. Artifact round-trips on generated environments, products included:
//!    canonical bytes are a fixed point and the restored shield decides
//!    bit-identically.
//!
//! Plus proptest generators for family parameters and composition depth
//! asserting well-formedness of every reachable instance.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vrl::dynamics::EnvironmentContext;
use vrl::shield::{Shield, ShieldPiece, TableConfig};
use vrl::synth::PolicyProgram;
use vrl_farm::{compose, family, generate, scenario_by_id, FarmConfig, Scenario};
use vrl_runtime::{fixtures, ShieldArtifact};

/// The demo-shield geometry the benchmark conformance sweeps use: an
/// ellipsoid at a quarter of the safe-box widths and mildly stabilizing
/// linear gains, one program row per action dimension.
fn demo_shield(env: &EnvironmentContext) -> Shield {
    let safe = env.safety().safe_box();
    let radii: Vec<f64> = safe
        .lows()
        .iter()
        .zip(safe.highs().iter())
        .map(|(lo, hi)| 0.25 * (hi - lo))
        .collect();
    let gains = vec![vec![-0.5; env.state_dim()]; env.action_dim()];
    let program = PolicyProgram::linear(&gains, &vec![0.0; env.action_dim()]);
    Shield::new(
        env.clone(),
        vec![ShieldPiece::new(
            program,
            fixtures::ellipsoid_certificate(env, &radii),
        )],
    )
}

/// Random probes spanning the safe box expanded 1.3× about its center —
/// inside, outside, and straddling states.
fn probe_states(env: &EnvironmentContext, rng: &mut SmallRng, count: usize) -> Vec<Vec<f64>> {
    let expanded = env.safety().safe_box().scaled_about_center(1.3);
    (0..count).map(|_| expanded.sample(rng)).collect()
}

/// A deterministic spread of the default farm: every `stride`-th scenario.
fn sample_scenarios(stride: usize) -> Vec<Scenario> {
    generate(&FarmConfig::default())
        .into_iter()
        .step_by(stride)
        .collect()
}

#[test]
fn farm_reaches_acceptance_scale_with_well_formed_scenarios() {
    let scenarios = generate(&FarmConfig::default());
    assert!(
        scenarios.len() >= 200,
        "expected at least 200 scenarios, got {}",
        scenarios.len()
    );
    let mut ids = std::collections::HashSet::new();
    let mut families = std::collections::HashSet::new();
    for s in &scenarios {
        assert!(ids.insert(s.id().to_string()), "duplicate ID {}", s.id());
        families.insert(s.family().to_string());
        // Re-validating through the public constructor proves each
        // generated instance passes every well-formedness check.
        Scenario::new(
            s.id(),
            s.family(),
            s.env().clone(),
            s.oracle_gains().to_vec(),
            s.invariant_degree(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
    assert!(
        families.len() >= 5,
        "expected at least 4 families plus products, got {families:?}"
    );
    assert!(
        scenarios.iter().filter(|s| s.family() == "product").count() >= 50,
        "the default farm should sample a substantial product set"
    );
}

#[test]
fn decide_paths_are_bit_identical_on_fifty_generated_envs() {
    let sample = sample_scenarios(4);
    assert!(
        sample.len() >= 50,
        "the sweep needs at least 50 environments, got {}",
        sample.len()
    );
    for (index, scenario) in sample.iter().enumerate() {
        let env = scenario.env();
        let exact = demo_shield(env);
        let tabled = demo_shield(env).with_table_or_fallback(&TableConfig::uniform(6));

        let mut rng = SmallRng::seed_from_u64(9000 + index as u64);
        let states = probe_states(env, &mut rng, 24);
        let proposals: Vec<Vec<f64>> = states
            .iter()
            .map(|_| {
                (0..env.action_dim())
                    .map(|_| rng.gen_range(-2.0..2.0))
                    .collect()
            })
            .collect();

        for (state, proposed) in states.iter().zip(proposals.iter()) {
            let reference = exact.decide_exact(state, proposed);
            for candidate in [
                exact.decide(state, proposed),
                tabled.decide(state, proposed),
                tabled.decide_exact(state, proposed),
            ] {
                assert_eq!(
                    candidate.intervened,
                    reference.intervened,
                    "{}: {state:?}",
                    scenario.id()
                );
                assert_eq!(candidate.action.len(), reference.action.len());
                for (a, b) in candidate.action.iter().zip(reference.action.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{}: {state:?}", scenario.id());
                }
            }
        }
        // The batched path partitions lanes through the same geometry.
        for shield in [&exact, &tabled] {
            let batch = shield.decide_batch(&states, &proposals);
            for ((state, proposed), decision) in
                states.iter().zip(proposals.iter()).zip(batch.iter())
            {
                assert_eq!(
                    decision,
                    &exact.decide_exact(state, proposed),
                    "{}: batch lane {state:?}",
                    scenario.id()
                );
            }
        }
    }
}

#[test]
fn table_build_degrades_gracefully_on_every_generated_instance() {
    let scenarios = generate(&FarmConfig::default());
    let mut fell_back = 0usize;
    let mut built = 0usize;
    // Release sweeps every generated instance; debug (with the per-cell
    // interval-certification asserts compiled in) strides to every 4th,
    // plus the named high-dimensional instances checked below.
    let stride = if cfg!(debug_assertions) { 4 } else { 1 };
    for scenario in scenarios.iter().step_by(stride) {
        let env = scenario.env();
        let before = vrl::shield::decide_table_build_fallback_count();
        // Resolution 8 certifies the low-dimensional grids and overflows
        // the cell cap from 8 dimensions up — the PR 8 finding.  Either
        // way this must not panic.
        let shield = demo_shield(env).with_table_or_fallback(&TableConfig::uniform(8));
        let after = vrl::shield::decide_table_build_fallback_count();
        if shield.table().is_some() {
            built += 1;
            assert_eq!(after, before, "{}: spurious fallback count", scenario.id());
        } else {
            fell_back += 1;
            assert_eq!(
                after,
                before + 1,
                "{}: fallback must be recorded in the obs counter",
                scenario.id()
            );
        }
        // Degraded or not, the shield still serves — bit-identically to
        // the exact path.
        let mut rng = SmallRng::seed_from_u64(scenario.seed());
        let state = env.safety().safe_box().sample(&mut rng);
        let proposed = vec![0.5; env.action_dim()];
        assert_eq!(
            demo_shield(env).decide_exact(&state, &proposed),
            shield.decide(&state, &proposed),
            "{}",
            scenario.id()
        );
    }
    // The high-dimensional instances of the PR 8 finding (8-D and 16-D
    // platoons, the 18-D oscillator) must all have degraded...
    for id in ["platoon/n4", "platoon/n8", "oscillator/k16"] {
        let scenario = scenario_by_id(id).unwrap();
        assert!(
            demo_shield(scenario.env())
                .with_table_or_fallback(&TableConfig::uniform(8))
                .table()
                .is_none(),
            "{id}: an 8^n grid cannot fit the cell cap at n >= 8"
        );
    }
    // ...and the farm must exercise both regimes.
    assert!(
        built > 0,
        "some low-dimensional instance must build a table"
    );
    assert!(
        fell_back > 0,
        "some high-dimensional instance must fall back"
    );
}

#[test]
fn artifacts_round_trip_bit_exactly_on_generated_envs() {
    let sample = sample_scenarios(17);
    assert!(sample.len() >= 12);
    assert!(sample.iter().any(|s| s.family() == "product"));
    for scenario in &sample {
        let env = scenario.env();
        let oracle = fixtures::demo_oracle(env, &[8], scenario.seed());
        let artifact = ShieldArtifact::new(demo_shield(env), oracle)
            .expect("demo oracle matches the environment")
            .with_label(scenario.id());
        let bytes = artifact.to_bytes();
        let restored = ShieldArtifact::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{}: round trip failed: {e}", scenario.id()));
        // Canonical bytes are a fixed point of the round trip.
        assert_eq!(bytes, restored.to_bytes(), "{}", scenario.id());
        assert_eq!(restored.label(), scenario.id());

        let mut rng = SmallRng::seed_from_u64(scenario.seed() ^ 0xa5a5);
        for state in probe_states(env, &mut rng, 8) {
            let proposed = vec![0.25; env.action_dim()];
            assert_eq!(
                artifact.shield().decide(&state, &proposed),
                restored.shield().decide(&state, &proposed),
                "{}: restored artifact must decide identically",
                scenario.id()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every reachable pendulum grid point is well-formed and its ID
    /// regenerates the identical scenario.
    fn prop_pendulum_parameters_are_well_formed(
        mass in 0.05..4.0f64,
        length in 0.05..4.0f64,
    ) {
        let scenario = family::pendulum_scenario(mass, length).unwrap();
        prop_assert_eq!(scenario.env().state_dim(), 2);
        prop_assert_eq!(scenario.oracle_gains().len(), scenario.env().action_dim());
        let again = scenario_by_id(scenario.id()).unwrap();
        prop_assert_eq!(
            again.env().dynamics().derivatives(),
            scenario.env().dynamics().derivatives()
        );
    }

    /// Platoon sizes and oscillator orders scale dimensions consistently.
    fn prop_sized_families_are_well_formed(
        n in 1usize..12,
        k in 1usize..20,
    ) {
        let platoon = family::platoon_scenario(n).unwrap();
        prop_assert_eq!(platoon.env().state_dim(), 2 * n);
        prop_assert_eq!(platoon.env().action_dim(), n);
        prop_assert_eq!(platoon.oracle_gains().len(), n);
        let oscillator = family::oscillator_scenario(k).unwrap();
        prop_assert_eq!(oscillator.env().state_dim(), 2 + k);
        prop_assert_eq!(oscillator.env().action_dim(), 1);
    }

    /// Products of random atoms at random composition depth are
    /// well-formed: dimensions add, coefficients stay finite, the safe box
    /// stays non-empty, and the flattened ID regenerates the product.
    fn prop_products_are_well_formed(
        mass in 0.1..3.0f64,
        drag in 0.05..1.5f64,
        damping in 0.05..1.5f64,
        n in 1usize..4,
        depth in 2usize..4,
        order in proptest::collection::vec(0usize..4, 3),
    ) {
        let atoms = [
            family::pendulum_scenario(mass, 1.0).unwrap(),
            family::quadcopter_scenario(drag).unwrap(),
            family::duffing_scenario(damping).unwrap(),
            family::platoon_scenario(n).unwrap(),
        ];
        let mut product = atoms[order[0]].clone();
        let mut expected_dim = product.env().state_dim();
        for step in 1..depth {
            let next = &atoms[order[step % order.len()]];
            expected_dim += next.env().state_dim();
            product = compose(&product, next).unwrap();
        }
        prop_assert_eq!(product.env().state_dim(), expected_dim);
        // Well-formedness is re-checked by the public constructor.
        prop_assert!(Scenario::new(
            product.id(),
            "product",
            product.env().clone(),
            product.oracle_gains().to_vec(),
            product.invariant_degree(),
        ).is_ok());
        let safe = product.env().safety().safe_box();
        for d in 0..product.env().state_dim() {
            prop_assert!(safe.low(d) < safe.high(d));
        }
        for p in product.env().dynamics().derivatives() {
            for (_, c) in p.terms() {
                prop_assert!(c.is_finite());
            }
        }
        let again = scenario_by_id(product.id()).unwrap();
        prop_assert_eq!(
            again.env().dynamics().derivatives(),
            product.env().dynamics().derivatives()
        );
    }
}
