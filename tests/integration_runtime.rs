//! End-to-end deployment test: synthesize a shield with the full pipeline,
//! persist it, serve it concurrently, then re-synthesize for a changed
//! environment and hot swap — all with zero unsafe decisions.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use vrl::dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl::pipeline::{run_pipeline, PipelineConfig};
use vrl::poly::Polynomial;
use vrl::shield::TableConfig;
use vrl::verify::VerificationConfig;
use vrl_runtime::{ShieldArtifact, ShieldServer};

/// The scalar system the pipeline tests use: ẋ = a, start in |x| ≤ 0.3,
/// stay in |x| ≤ 1, actions saturated to |a| ≤ 2.
fn scalar_env() -> EnvironmentContext {
    let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
    EnvironmentContext::new(
        "scalar",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.3]),
        SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
    )
    .with_action_bounds(vec![-2.0], vec![2.0])
}

fn smoke_config() -> PipelineConfig {
    let mut config = PipelineConfig::smoke_test();
    config.cegis.verification = VerificationConfig::with_degree(2);
    config
}

/// Drives the closed loop through the server for `steps` transitions and
/// asserts that no visited state ever violates `env`'s safety spec.
fn drive_safely(
    server: &ShieldServer,
    deployment: &str,
    env: &EnvironmentContext,
    start: &[f64],
    steps: usize,
) {
    let mut state = start.to_vec();
    for step in 0..steps {
        assert!(
            !env.is_unsafe(&state),
            "state {state:?} became unsafe at step {step}"
        );
        let decision = server.decide(deployment, &state).expect("serving succeeds");
        state = env.step_deterministic(&state, &decision.action);
    }
}

#[test]
fn deploy_serve_resynthesize_hot_swap() {
    // 1. Synthesize: train an oracle and a verified shield end to end.
    let env = scalar_env();
    let config = smoke_config();
    let outcome = run_pipeline(&env, &config).expect("the scalar system is shieldable");
    assert_eq!(outcome.evaluation.shielded_failures, 0);

    // 2. Persist and reload the deployment bundle (bytes round trip),
    //    with a precomputed decision table attached: the config persists,
    //    the table itself is rebuilt on load.
    let artifact = ShieldArtifact::new(outcome.shield, outcome.oracle)
        .unwrap()
        .with_label("pipeline-v1")
        .with_table_config(TableConfig::uniform(32))
        .expect("the scalar safe box grids cleanly");
    let artifact = ShieldArtifact::from_bytes(&artifact.to_bytes()).expect("round trip");
    assert!(artifact.table_config().is_some());
    assert!(
        artifact.shield().table().is_some(),
        "loading must rebuild the decision table from the persisted config"
    );

    // 3. Deploy and serve.
    let server = Arc::new(ShieldServer::with_workers(4));
    server.deploy("scalar", artifact).unwrap();
    assert_eq!(server.generation("scalar").unwrap(), 1);

    // Batched serving: every sampled start state gets a decision, and the
    // batch agrees with sequential serving (decisions are pure).
    let mut rng = SmallRng::seed_from_u64(99);
    let states: Vec<Vec<f64>> = (0..300).map(|_| env.sample_initial(&mut rng)).collect();
    let batch = server.decide_batch("scalar", &states).unwrap();
    assert_eq!(batch.len(), states.len());
    for (state, expected) in states.iter().zip(batch.iter()) {
        assert_eq!(&server.decide("scalar", state).unwrap(), expected);
    }

    // Closed-loop serving is safe from several starts (zero unsafe states).
    for start in [[-0.3], [-0.1], [0.0], [0.2], [0.3]] {
        drive_safely(&server, "scalar", &env, &start, 400);
    }

    // 4. Concurrent traffic from 4 threads while the environment changes
    //    under the deployment.
    let stop = Arc::new(AtomicBool::new(false));
    let served: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
    let unsafe_decisions = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        let unsafe_decisions = Arc::clone(&unsafe_decisions);
        let env = scalar_env();
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(1000 + t as u64);
            let mut count = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // States from the *restricted* initial region are valid
                // under both the old and the new shield.
                let state = vec![rng_range(&mut rng, -0.25, 0.25)];
                let decision = server
                    .decide("scalar", &state)
                    .expect("serving never fails");
                assert_eq!(decision.action.len(), 1);
                assert!(decision.action[0].is_finite());
                // Consistency: the applied action must respect the action
                // bounds shared by both generations.
                assert!(decision.action[0].abs() <= 2.0 + 1e-12);
                // The successor under the applied action must stay safe in
                // the (looser) original environment for both generations.
                let next = env.step_deterministic(&state, &decision.action);
                if env.is_unsafe(&next) {
                    unsafe_decisions.fetch_add(1, Ordering::Relaxed);
                }
                count += 1;
                served[t as usize].store(count, Ordering::Relaxed);
            }
            count
        }));
    }

    // Wait until all threads are serving, then hot swap mid-traffic:
    // re-synthesize the shield for a *tighter* safety requirement without
    // retraining the oracle (the Table 3 scenario).
    while served.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
        std::thread::yield_now();
    }
    let restricted = scalar_env()
        .with_safety(SafetySpec::inside(BoxRegion::symmetric(&[0.6])))
        .with_name("scalar-restricted");
    let (generation, report) = server
        .resynthesize_and_redeploy("scalar", &restricted, &config)
        .expect("the restricted scalar system is shieldable");
    assert_eq!(generation, 2);
    assert!(report.pieces >= 1);
    assert_eq!(server.environment("scalar").unwrap(), "scalar-restricted");

    // The resynthesized deployment carried the decision-table config: the
    // next decision goes through table dispatch (a hit or a boundary-cell
    // fallback — either way the table-path counters move).
    let table_traffic_before = vrl::shield::decide_table_traffic();
    let _ = server.decide("scalar", &[0.0]).unwrap();
    assert!(
        vrl::shield::decide_table_traffic() > table_traffic_before,
        "the resynthesized shield must keep serving through its table"
    );

    // Let traffic run against the new generation, then stop.
    let marks: Vec<u64> = served.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    while served
        .iter()
        .zip(marks.iter())
        .any(|(c, &mark)| c.load(Ordering::Relaxed) <= mark)
    {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for handle in handles {
        total += handle.join().expect("serving thread never panicked");
    }
    assert!(total > 0);
    assert_eq!(
        unsafe_decisions.load(Ordering::Relaxed),
        0,
        "no decision before, during, or after the hot swap may lead unsafe"
    );

    // 5. The swapped-in shield keeps the closed loop inside the *tighter*
    //    bound, oracle unchanged.
    for start in [[-0.25], [0.0], [0.25]] {
        drive_safely(&server, "scalar", &restricted, &start, 400);
    }

    // Telemetry observed everything.
    let telemetry = server.telemetry("scalar").unwrap();
    assert_eq!(telemetry.generation, 2);
    assert_eq!(telemetry.redeploys, 1);
    assert!(telemetry.decisions as usize >= total as usize);
    assert!(telemetry.p99_latency >= telemetry.p50_latency);
}

#[test]
fn resynthesis_failure_keeps_previous_shield_serving() {
    let env = scalar_env();
    let config = smoke_config();
    let outcome = run_pipeline(&env, &config).expect("shieldable");
    let server = ShieldServer::with_workers(2);
    let artifact = ShieldArtifact::new(outcome.shield, outcome.oracle).unwrap();
    server.deploy("scalar", artifact).unwrap();

    // An absurdly tight safety bound the CEGIS budget cannot cover.
    let impossible = scalar_env()
        .with_safety(SafetySpec::inside(BoxRegion::symmetric(&[1e-4])))
        .with_name("scalar-impossible");
    let result = server.resynthesize_and_redeploy("scalar", &impossible, &config);
    assert!(
        result.is_err(),
        "synthesis for the impossible spec must fail"
    );

    // The deployment is untouched and keeps serving the verified shield.
    assert_eq!(server.generation("scalar").unwrap(), 1);
    drive_safely(&server, "scalar", &env, &[0.2], 300);
}

fn rng_range(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    use rand::Rng;
    rng.gen_range(lo..hi)
}
