//! Decision-table conformance: table-dispatched decisions must be
//! bit-identical to the exact compiled path.
//!
//! Three layers of evidence:
//!
//! 1. A sweep over every Table 1 benchmark (state dimensions 2–8, mixed
//!    action dimensions, obstacles): a ragged-resolution table is built per
//!    benchmark and `decide` / `decide_batch` are compared decision-for-
//!    decision against a table-free clone of the same shield on states
//!    spanning inside, outside, and straddling the safe box.
//! 2. Property tests over random shields, ragged resolutions, and edge /
//!    corner states, including the structural guarantee that a boundary
//!    cell is never answered by the table (`coverage` returns `None`).
//! 3. Artifact round-trip and fleet-rehydration checks: the persisted
//!    config rebuilds a table wherever the artifact lands, and a
//!    rehydrated deployment keeps serving through table dispatch.
//!
//! The shields are the fixtures' ellipsoidal demo shields (the same
//! geometry the batch-conformance sweep uses): the sweep proves the *table
//! plumbing* is exact on every benchmark geometry, not that the invariants
//! are inductive.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vrl::dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl::poly::Polynomial;
use vrl::shield::{CellClass, DecisionTable, Shield, ShieldPiece, TableConfig};
use vrl::synth::PolicyProgram;
use vrl::verify::BarrierCertificate;
use vrl_benchmarks::{all_benchmarks, benchmark_by_name};
use vrl_runtime::{fixtures, Placement, ShardRouter, ShieldArtifact, ShieldServer};

/// Per-benchmark shield geometry (same as the batch-conformance sweep): an
/// ellipsoid at half the safe-box half-widths and mildly stabilizing
/// linear gains.
fn shield_parameters(env: &EnvironmentContext) -> (Vec<Vec<f64>>, Vec<f64>) {
    let safe = env.safety().safe_box();
    let radii: Vec<f64> = safe
        .lows()
        .iter()
        .zip(safe.highs().iter())
        .map(|(lo, hi)| 0.25 * (hi - lo))
        .collect();
    let gains = vec![vec![-0.5; env.state_dim()]; env.action_dim()];
    (gains, radii)
}

/// A demo shield for `env` with one program row per action dimension
/// (multi-action benchmarks need more than `fixtures::ellipsoid_shield`
/// provides).
fn demo_shield(env: &EnvironmentContext) -> Shield {
    let (gains, radii) = shield_parameters(env);
    let program = PolicyProgram::linear(&gains, &vec![0.0; env.action_dim()]);
    Shield::new(
        env.clone(),
        vec![ShieldPiece::new(
            program,
            fixtures::ellipsoid_certificate(env, &radii),
        )],
    )
}

/// A deliberately ragged resolution whose cell count stays under `cap`:
/// the largest uniform base, with alternating dimensions bumped where the
/// budget allows.
fn ragged_resolution(dim: usize, cap: usize) -> Vec<usize> {
    let mut base = 1usize;
    while (base + 1).checked_pow(dim as u32).is_some_and(|c| c <= cap) {
        base += 1;
    }
    let mut resolution = vec![base; dim];
    for d in (0..dim).step_by(2) {
        resolution[d] += 1;
        if resolution.iter().product::<usize>() > cap {
            resolution[d] -= 1;
        }
    }
    resolution
}

/// States spanning the table's interesting geometry: random draws from the
/// safe box expanded 1.3× about its center (inside, outside, and straddling
/// the grid edge), plus the exact safe-box corners when the dimension makes
/// that affordable.
fn probe_states(env: &EnvironmentContext, rng: &mut SmallRng, count: usize) -> Vec<Vec<f64>> {
    let safe = env.safety().safe_box();
    let expanded = safe.scaled_about_center(1.3);
    let mut states: Vec<Vec<f64>> = (0..count).map(|_| expanded.sample(rng)).collect();
    if env.state_dim() <= 4 {
        states.extend(safe.corners());
    }
    states
}

#[test]
fn table_decisions_are_bit_identical_on_all_table1_benchmarks() {
    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 15, "Table 1 lists 15 benchmarks");
    let mut total_certified = 0usize;
    for (index, spec) in benchmarks.into_iter().enumerate() {
        let name = spec.name();
        let env = spec.into_env();
        let exact = demo_shield(&env);
        let config = TableConfig {
            resolution: ragged_resolution(env.state_dim(), 4096),
            ..TableConfig::default()
        };
        let tabled = demo_shield(&env)
            .with_table(&config)
            .unwrap_or_else(|e| panic!("{name}: table build failed: {e}"));
        let stats = *tabled.table().unwrap().stats();
        assert_eq!(
            stats.covered + stats.uncovered + stats.boundary,
            stats.cells,
            "{name}: cell census must add up"
        );
        total_certified += stats.covered + stats.uncovered;

        let mut rng = SmallRng::seed_from_u64(7000 + index as u64);
        let states = probe_states(&env, &mut rng, 200);
        let proposals: Vec<Vec<f64>> = states
            .iter()
            .map(|_| {
                (0..env.action_dim())
                    .map(|_| rng.gen_range(-2.0..2.0))
                    .collect()
            })
            .collect();
        for (state, proposed) in states.iter().zip(proposals.iter()) {
            let fast = tabled.decide(state, proposed);
            let reference = exact.decide(state, proposed);
            assert_eq!(fast.intervened, reference.intervened, "{name}: {state:?}");
            assert_eq!(
                fast.action.len(),
                reference.action.len(),
                "{name}: {state:?}"
            );
            for (a, b) in fast.action.iter().zip(reference.action.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: {state:?}");
            }
        }
        // The batched path partitions lanes through the same table.
        let batch = tabled.decide_batch(&states, &proposals);
        for ((state, proposed), decision) in states.iter().zip(proposals.iter()).zip(batch.iter()) {
            assert_eq!(
                decision,
                &exact.decide(state, proposed),
                "{name}: batch lane {state:?}"
            );
        }
    }
    assert!(
        total_certified > 0,
        "the sweep must certify at least some cells somewhere"
    );
}

/// A random 2-D double-integrator shield: ẋ = v, v̇ = a, ellipsoidal
/// certificate, optional obstacle punched into the safe box.
fn random_shield(
    safe_hw: (f64, f64),
    radii: (f64, f64),
    obstacle: Option<(f64, f64, f64, f64)>,
) -> Shield {
    let dynamics = PolyDynamics::new(
        2,
        1,
        vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
    )
    .unwrap();
    let mut safety = SafetySpec::inside(BoxRegion::new(
        vec![-safe_hw.0, -safe_hw.1],
        vec![safe_hw.0, safe_hw.1],
    ));
    if let Some((cx, cy, wx, wy)) = obstacle {
        safety = safety.with_obstacle(BoxRegion::new(
            vec![cx - wx, cy - wy],
            vec![cx + wx, cy + wy],
        ));
    }
    let env = EnvironmentContext::new(
        "prop",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.1, 0.1]),
        safety,
    );
    let program = PolicyProgram::linear(&[vec![-0.5, -0.5]], &[0.0]);
    let mut barrier = Polynomial::constant(-1.0, 2);
    for (i, r) in [radii.0, radii.1].into_iter().enumerate() {
        let x = Polynomial::variable(i, 2);
        barrier = &barrier + &(&x * &x).scaled(1.0 / (r * r));
    }
    Shield::new(
        env,
        vec![ShieldPiece::new(program, BarrierCertificate::new(barrier))],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shields × ragged resolutions × random and edge states: table
    /// dispatch is bit-identical to the exact path, and the cell census is
    /// structurally sound (a boundary cell is never answered).
    fn prop_table_dispatch_matches_exact_decide(
        hw_x in 0.6..1.4f64,
        hw_v in 0.6..1.4f64,
        r_x in 0.2..1.0f64,
        r_v in 0.2..1.0f64,
        res_x in 1usize..14,
        res_v in 1usize..14,
        obstacle_flag in 0u32..2,
        xs in proptest::collection::vec(-2.0..2.0f64, 24),
        vs in proptest::collection::vec(-2.0..2.0f64, 24),
        proposals in proptest::collection::vec(-3.0..3.0f64, 24),
    ) {
        let obstacle = (obstacle_flag == 1).then_some((0.3, -0.2, 0.15, 0.25));
        let exact = random_shield((hw_x, hw_v), (r_x, r_v), obstacle);
        let tabled = random_shield((hw_x, hw_v), (r_x, r_v), obstacle)
            .with_table(&TableConfig {
                resolution: vec![res_x, res_v],
                ..TableConfig::default()
            })
            .expect("a finite safe box always grids");
        let table = tabled.table().unwrap();

        // Random states plus the exact cell edges/corners of the grid:
        // a shared face may resolve to either adjacent cell, but the
        // answer must stay exact either way.
        let mut states: Vec<Vec<f64>> =
            xs.iter().zip(vs.iter()).map(|(&x, &v)| vec![x, v]).collect();
        for i in 0..=res_x {
            let x = (-hw_x + 2.0 * hw_x * i as f64 / res_x as f64).clamp(-hw_x, hw_x);
            for j in 0..=res_v {
                let v = (-hw_v + 2.0 * hw_v * j as f64 / res_v as f64).clamp(-hw_v, hw_v);
                states.push(vec![x, v]);
            }
        }
        for (i, state) in states.iter().enumerate() {
            // Structural guarantee: the class and the answer agree, and a
            // boundary cell is never answered by the table.
            match table.cell_class(state) {
                Some(CellClass::Covered) => prop_assert_eq!(table.coverage(state), Some(true)),
                Some(CellClass::Uncovered) => prop_assert_eq!(table.coverage(state), Some(false)),
                Some(CellClass::Boundary) => prop_assert_eq!(table.coverage(state), None),
                None => prop_assert_eq!(table.coverage(state), Some(false)),
            }
            if let Some(covered) = table.coverage(state) {
                prop_assert_eq!(covered, exact.covers(state), "coverage vs covers at {:?}", state);
            }
            let proposed = vec![proposals[i % proposals.len()]];
            prop_assert_eq!(
                tabled.decide(state, &proposed),
                exact.decide(state, &proposed),
                "decide diverged at {:?}",
                state
            );
        }
    }
}

#[test]
fn artifact_round_trip_rebuilds_an_identical_table() {
    let env = benchmark_by_name("pendulum")
        .expect("pendulum is a Table 1 benchmark")
        .into_env();
    let artifact = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[16],
        7,
    )
    .unwrap()
    .with_table_config(TableConfig {
        resolution: vec![48, 24],
        ..TableConfig::default()
    })
    .expect("the pendulum safe box grids cleanly");
    let restored = ShieldArtifact::from_bytes(&artifact.to_bytes()).expect("round trip");
    let original: &DecisionTable = artifact.shield().table().unwrap();
    let rebuilt: &DecisionTable = restored.shield().table().unwrap();
    // The table is never serialized; the deterministic rebuild must land on
    // the identical table, cell for cell.
    assert_eq!(original, rebuilt);
    assert_eq!(original.stats(), rebuilt.stats());
    assert_eq!(restored.table_config(), artifact.table_config());
}

#[test]
fn fleet_rehydration_keeps_table_dispatch_serving() {
    let env = benchmark_by_name("pendulum").unwrap().into_env();
    let tabled = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[16],
        11,
    )
    .unwrap()
    .with_table_config(TableConfig::uniform(32))
    .unwrap();
    let plain = tabled.clone().without_table_config();

    // A table-free reference server and a table-dispatching fleet must
    // serve identical decisions.
    let reference = ShieldServer::with_workers(1);
    reference.deploy("pendulum", plain).unwrap();
    let router = ShardRouter::new(2, 1, Placement::Rendezvous);
    router.deploy("pendulum", tabled).unwrap();

    let mut rng = SmallRng::seed_from_u64(23);
    let safe = env.safety().safe_box().clone();
    let states: Vec<Vec<f64>> = (0..50).map(|_| safe.sample(&mut rng)).collect();
    let traffic_before = vrl::shield::decide_table_traffic();
    for state in &states {
        assert_eq!(
            router.decide("pendulum", state).unwrap(),
            reference.decide("pendulum", state).unwrap()
        );
    }
    assert!(
        vrl::shield::decide_table_traffic() > traffic_before,
        "fleet decisions must route through the deployment's table"
    );

    // Grow the fleet until the deployment's placement moves: the new shard
    // rehydrates from artifact bytes, rebuilding the table, and keeps both
    // the decisions and the table dispatch.
    let mut moved = false;
    for _ in 0..16 {
        if router.add_shard().iter().any(|m| m == "pendulum") {
            moved = true;
            break;
        }
    }
    assert!(moved, "pendulum should move within 16 added shards");
    let traffic_before = vrl::shield::decide_table_traffic();
    for state in &states {
        assert_eq!(
            router.decide("pendulum", state).unwrap(),
            reference.decide("pendulum", state).unwrap()
        );
    }
    assert!(
        vrl::shield::decide_table_traffic() > traffic_before,
        "the rehydrated deployment must keep serving through its rebuilt table"
    );
}
