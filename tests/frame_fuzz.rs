//! Corrupted-frame robustness at the HTTP boundary, mirroring
//! `artifact_fuzz.rs` for the binary decide codec: every truncation of a
//! valid frame, a bit flip at every byte offset, oversize length prefixes,
//! and hundreds of random mutations must produce a clean structured error
//! (or a valid decision for payload-only flips — raw `f64` bits are dense,
//! so most payload corruptions are just *different* finite states), and the
//! server must never panic or drop the connection without a status.
//!
//! Unlike the artifact codec, the frame codec carries no checksum — it
//! frames hot-path request traffic where a per-request hash would cost more
//! than it protects (TCP already checksums the transport).  The invariant
//! fuzzed here is therefore *no panic, no hang, always a structured
//! answer*, with hard rejection guaranteed for the header and prelude
//! regions (magic, version, kind, length prefix, flags, geometry).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use vrl_runtime::frame;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::wire::Json;
use vrl_runtime::{fixtures, ShieldServer};

/// Bytes of header (magic + version + kind + length) and request prelude
/// (flags + dim + count) — the region where any bit flip must be rejected.
const STRUCTURAL_BYTES: usize = 13 + 9;

fn pendulum_frontend() -> (HttpFrontend, Arc<ShieldServer>) {
    let env = vrl_benchmarks::benchmark_by_name("pendulum")
        .expect("pendulum")
        .into_env();
    let artifact = fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[16],
        71,
    )
    .expect("dimensions agree");
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("pendulum", artifact).unwrap();
    let config = HttpConfig {
        max_connections: 32,
        idle_timeout: Duration::from_millis(500),
        ..HttpConfig::default()
    };
    let frontend = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&server) as Arc<dyn ShieldBackend>,
        config,
    )
    .expect("loopback bind succeeds");
    (frontend, server)
}

fn valid_request_frame() -> Vec<u8> {
    let states = vec![vec![0.11, -0.22], vec![0.05, 0.40], vec![-0.31, 0.07]];
    frame::encode_decide_request(&states, true)
}

/// POSTs `body` as a binary frame and asserts a structured answer: a 200
/// (decodable frame response) or a 4xx JSON error envelope with a code.
/// Returns the status.
fn post_frame(client: &mut MiniClient, body: &[u8]) -> u16 {
    let response = client
        .request_with_headers(
            "POST",
            "/v1/deployments/pendulum/decide",
            body,
            &[("content-type", frame::CONTENT_TYPE_FRAME)],
        )
        .expect("the connection must survive a corrupt frame");
    if response.status == 200 {
        assert_eq!(
            response.header("content-type"),
            Some(frame::CONTENT_TYPE_FRAME)
        );
        frame::decode_decide_response(&response.body).expect("200 bodies decode");
    } else {
        let json = Json::parse(&response.body).expect("error bodies are JSON");
        let error = json.get("error").expect("structured error envelope");
        assert!(
            matches!(error.get("code"), Some(Json::Str(_))),
            "{}",
            response.text()
        );
    }
    response.status
}

#[test]
fn every_truncation_is_a_clean_400() {
    let (frontend, _server) = pendulum_frontend();
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let whole = valid_request_frame();
    assert_eq!(
        post_frame(&mut client, &whole),
        200,
        "the intact frame serves"
    );
    for len in 0..whole.len() {
        // Unit level: a strict prefix can never decode (the length prefix
        // always disagrees with the actual payload).
        assert!(
            frame::decode_decide_request(&whole[..len], 8192).is_err(),
            "truncation to {len} bytes must not decode"
        );
        // Wire level: same truncation, structured 400, connection intact.
        assert_eq!(
            post_frame(&mut client, &whole[..len]),
            400,
            "truncation to {len} bytes over HTTP"
        );
    }
    frontend.shutdown();
}

#[test]
fn bit_flips_never_panic_and_structural_flips_always_reject() {
    let (frontend, _server) = pendulum_frontend();
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let whole = valid_request_frame();
    for offset in 0..whole.len() {
        let mut corrupted = whole.clone();
        corrupted[offset] ^= 1 << (offset % 8);
        // Unit level: decoding must return, never panic; header and
        // prelude corruption must be rejected outright.
        let decoded = frame::decode_decide_request(&corrupted, 8192);
        if offset < STRUCTURAL_BYTES {
            assert!(
                decoded.is_err(),
                "structural flip at byte {offset} must be rejected"
            );
        }
        // Wire level: every flip gets a structured answer.  Payload flips
        // may legitimately serve (a different finite state) or reject
        // (422 for a smuggled non-finite bit pattern); structural flips
        // must reject.
        let status = post_frame(&mut client, &corrupted);
        if offset < STRUCTURAL_BYTES {
            assert!(
                status >= 400,
                "structural flip at byte {offset} answered {status}"
            );
        } else {
            assert!(
                status == 200 || status == 422,
                "payload flip at byte {offset} answered {status}"
            );
        }
    }
    frontend.shutdown();
}

#[test]
fn oversize_declarations_are_rejected_without_allocating() {
    let (frontend, _server) = pendulum_frontend();
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    // Length prefix far beyond the actual body: must be a 400, not an
    // attempted allocation or a read hang.
    let mut oversize_len = valid_request_frame();
    oversize_len[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(post_frame(&mut client, &oversize_len), 400);

    // Geometry-consistent but absurd count: a frame *declaring* billions of
    // states with no payload fails the geometry check (400) before any
    // allocation happens.
    let mut huge_count = valid_request_frame();
    huge_count[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(post_frame(&mut client, &huge_count), 400);
    assert!(frame::decode_decide_request(&huge_count, usize::MAX).is_err());

    // A well-formed frame over the server's batch cap is the same 413 the
    // JSON codec answers.
    let too_many: Vec<Vec<f64>> = (0..8193).map(|i| vec![i as f64 * 1e-4, 0.0]).collect();
    let body = frame::encode_decide_request(&too_many, true);
    let response = client
        .request_with_headers(
            "POST",
            "/v1/deployments/pendulum/decide",
            &body,
            &[("content-type", frame::CONTENT_TYPE_FRAME)],
        )
        .unwrap();
    assert_eq!(response.status, 413, "{}", response.text());
    assert!(
        response.text().contains("batch_too_large"),
        "{}",
        response.text()
    );
    frontend.shutdown();
}

#[test]
fn random_mutations_always_get_a_structured_answer() {
    let (frontend, server) = pendulum_frontend();
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let whole = valid_request_frame();
    let mut rng = SmallRng::seed_from_u64(97);
    for _ in 0..500 {
        let mut corrupted = whole.clone();
        let offset = rng.gen_range(0..corrupted.len());
        corrupted[offset] = rng.gen::<u32>() as u8;
        // Unit level for all 500: decode returns cleanly.
        let _ = frame::decode_decide_request(&corrupted, 8192);
    }
    // Wire level for a subset (each request is a full HTTP round trip).
    for _ in 0..64 {
        let mut corrupted = whole.clone();
        let offset = rng.gen_range(0..corrupted.len());
        corrupted[offset] = rng.gen::<u32>() as u8;
        let status = post_frame(&mut client, &corrupted);
        assert!(
            status == 200 || (400..500).contains(&status),
            "mutation answered {status}"
        );
    }
    // The deployment is still healthy after the barrage.
    assert!(server.decide("pendulum", &[0.1, 0.0]).is_ok());
    assert_eq!(post_frame(&mut client, &whole), 200);
    frontend.shutdown();
}
