//! Integration tests for the runtime shield (Algorithm 3), using the
//! quadcopter benchmark end to end.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::{ClosurePolicy, ConstantPolicy};
use vrl::shield::{evaluate_shielded_system, synthesize_shield, CegisConfig, ShieldedPolicy};
use vrl::verify::VerificationConfig;
use vrl_benchmarks::quadcopter::quadcopter_env;

fn quadcopter_shield() -> (vrl::dynamics::EnvironmentContext, vrl::shield::Shield) {
    let env = quadcopter_env();
    // A competent altitude-hold controller serves as the oracle.
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-3.0 * s[0] - 2.5 * s[1]]);
    let config = CegisConfig {
        verification: VerificationConfig::with_degree(2),
        ..CegisConfig::smoke_test()
    };
    let mut rng = SmallRng::seed_from_u64(21);
    let (shield, _) = synthesize_shield(&env, &oracle, &config, &mut rng)
        .expect("the quadcopter controller is shieldable");
    (env, shield)
}

#[test]
fn well_behaved_network_is_rarely_interrupted() {
    let (env, shield) = quadcopter_shield();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-3.0 * s[0] - 2.5 * s[1]]);
    let mut rng = SmallRng::seed_from_u64(22);
    let eval = evaluate_shielded_system(&env, &oracle, &shield, 10, 2000, &mut rng);
    assert_eq!(eval.shielded_failures, 0);
    assert_eq!(eval.neural_failures, 0);
    // The paper observes that a well-trained network is essentially never
    // interrupted on the easy benchmarks; allow a tiny number of interventions.
    assert!(
        eval.intervention_rate() < 0.01,
        "intervention rate {} should be negligible",
        eval.intervention_rate()
    );
}

#[test]
fn adversarial_network_is_kept_safe_by_the_shield() {
    let (env, shield) = quadcopter_shield();
    // A "broken" network that always applies maximum torque in one direction.
    let adversary = ConstantPolicy::new(vec![8.0]);
    let mut rng = SmallRng::seed_from_u64(23);
    let eval = evaluate_shielded_system(&env, &adversary, &shield, 5, 3000, &mut rng);
    assert!(
        eval.neural_failures > 0,
        "the unshielded adversary must fail"
    );
    assert_eq!(
        eval.shielded_failures, 0,
        "the shield must prevent every failure"
    );
    assert!(eval.interventions > 0);
}

#[test]
fn shielded_policy_counters_are_exposed() {
    let (env, shield) = quadcopter_shield();
    let adversary = ConstantPolicy::new(vec![8.0]);
    let shielded = ShieldedPolicy::new(&shield, &adversary);
    let mut rng = SmallRng::seed_from_u64(24);
    let trajectory = env.rollout(&shielded, &[0.3, 0.3], 1000, &mut rng);
    assert!(!trajectory.violates(env.safety()));
    assert_eq!(shielded.decisions(), trajectory.len());
    assert!(shielded.interventions() > 0);
}
