//! Integration tests for the CEGIS loop of Algorithm 2 (Example 4.3 style).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{synthesize_shield, CegisConfig};
use vrl::solver::{query_cache_stats, reset_query_cache};
use vrl::synth::DistillConfig;
use vrl::verify::{verify_program, VerificationConfig};
use vrl_benchmarks::duffing::duffing_env;

#[test]
fn cegis_covers_the_duffing_initial_region() {
    let env = duffing_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![0.6 * s[0] - 2.2 * s[1]]);
    let config = CegisConfig {
        distill: DistillConfig {
            iterations: 40,
            trajectories: 2,
            horizon: 200,
            ..DistillConfig::smoke_test()
        },
        verification: VerificationConfig::with_degree(4),
        max_pieces: 6,
        max_shrink_steps: 5,
        coverage_samples: 300,
        ..CegisConfig::smoke_test()
    };
    let mut rng = SmallRng::seed_from_u64(12);
    let (shield, report) = synthesize_shield(&env, &oracle, &config, &mut rng)
        .expect("the Duffing oscillator is shieldable");
    assert!(report.pieces >= 1);
    assert!(report.attempts >= report.pieces);
    // The paper's Example 4.3 counterexample initial states must be covered.
    assert!(shield.covers(&[-0.46, -0.36]));
    assert!(shield.covers(&[2.249, 2.0]));
    // All corners and many random initial states are covered.
    for corner in env.init().corners() {
        assert!(shield.covers(&corner), "corner {corner:?} must be covered");
    }
    for _ in 0..200 {
        let s = env.sample_initial(&mut rng);
        assert!(
            shield.covers(&s),
            "sampled initial state {s:?} must be covered"
        );
    }
    // The invariants certify only safe states.
    let program = shield.to_program();
    assert!(
        program.evaluate(&[6.0, 0.0]).is_none(),
        "states outside the safe box must hit the abort branch"
    );
}

#[test]
fn cegis_reproof_queries_hit_the_compiled_query_cache() {
    // Verification is seeded, so re-proving the same program in the same
    // environment replays the exact same branch-and-bound query families:
    // the second run must answer every compilation from the per-thread
    // query cache (zero new misses) and produce the identical certificate.
    // Example 4.3's P1 on a restricted initial region (one CEGIS piece).
    let env = duffing_env().with_init(vrl::dynamics::BoxRegion::symmetric(&[1.0, 1.0]));
    let program = vec![vrl::poly::Polynomial::linear(&[0.39, -1.41], 0.0)];
    let config = VerificationConfig::with_degree(4);
    reset_query_cache();
    let first = verify_program(&env, &program, env.init(), &config)
        .expect("the Example 4.3 policy is certifiable");
    let after_first = query_cache_stats();
    assert!(after_first.misses > 0, "the first run must compile queries");
    // Even a single run hits: the separation condition re-proves the same
    // negated barrier over every band region of the working domain.
    assert!(
        after_first.hits > 0,
        "separation re-checks must share one compiled family"
    );
    let second = verify_program(&env, &program, env.init(), &config)
        .expect("re-proof of the same program succeeds");
    let after_second = query_cache_stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "a re-proof of the same certificate family must not recompile"
    );
    assert!(
        after_second.hits > after_first.hits,
        "re-proof queries must be answered from the cache"
    );
    assert_eq!(
        first.polynomial(),
        second.polynomial(),
        "cache hits must leave the synthesized certificate unchanged"
    );
}

#[test]
fn cegis_shield_keeps_simulated_trajectories_safe() {
    let env = duffing_env();
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![0.6 * s[0] - 2.2 * s[1]]);
    let config = CegisConfig {
        distill: DistillConfig::smoke_test(),
        verification: VerificationConfig::with_degree(4),
        ..CegisConfig::smoke_test()
    };
    let mut rng = SmallRng::seed_from_u64(13);
    let (shield, _) = synthesize_shield(&env, &oracle, &config, &mut rng).expect("shieldable");
    let program = shield.to_program();
    for _ in 0..10 {
        let s0 = env.sample_initial(&mut rng);
        if !shield.covers(&s0) {
            continue; // smoke budgets may not cover every corner; soundness is per-piece
        }
        let trajectory = env.rollout(&program, &s0, 3000, &mut rng);
        assert!(
            !trajectory.violates(env.safety()),
            "the verified program must keep {s0:?} safe"
        );
    }
}
