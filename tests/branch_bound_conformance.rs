//! Differential soundness sweep for the lane-batched branch-and-bound
//! frontier: over every Table 1 benchmark, the batched search
//! (`BranchBoundConfig::lane_batched = true`, the default) must return the
//! **exact** outcome of the scalar search — same verdict, same witness
//! point, same box count — on an induction-style query, and the full
//! verification pipeline must synthesize **identical certificates** under
//! both modes.
//!
//! Like `batch_conformance`, the certificates here are the fixtures'
//! ellipsoidal demo shields sized from each benchmark's safe box (the
//! queries need not be provable — refuted and budget-exhausted outcomes are
//! compared just as strictly); the pipeline tests then cover genuinely
//! certifiable programs.  Per-benchmark timings are printed so CI logs
//! surface verification-speed regressions (run with `--nocapture`).

use std::time::Instant;
use vrl::poly::{Interval, Polynomial};
use vrl::solver::{prove_bound, BoundQuery, BranchBoundConfig};
use vrl::verify::{verify_program, VerificationConfig};
use vrl_benchmarks::{all_benchmarks, benchmark_by_name};
use vrl_runtime::fixtures;

/// The induction-style query of the eval-kernel benches, generalized to any
/// benchmark: `E(s') ≤ 0` under the guard `E(s) ≤ 0`, with `E` the
/// ellipsoid at a quarter of the safe-box widths and a mildly stabilizing
/// linear program (every action pulls against every state coordinate).
fn induction_query(
    env: &vrl::dynamics::EnvironmentContext,
) -> (Polynomial, Polynomial, Vec<Interval>) {
    let safe = env.safety().safe_box();
    let radii: Vec<f64> = safe
        .lows()
        .iter()
        .zip(safe.highs().iter())
        .map(|(lo, hi)| 0.25 * (hi - lo))
        .collect();
    let programs: Vec<Polynomial> = (0..env.action_dim())
        .map(|_| Polynomial::linear(&vec![-0.5; env.state_dim()], 0.0))
        .collect();
    let successor = env.successor_polynomials(&programs);
    let barrier = fixtures::ellipsoid_certificate(env, &radii)
        .polynomial()
        .clone();
    let next_value = barrier.substitute(&successor);
    let domain = safe.to_intervals();
    (next_value, barrier, domain)
}

#[test]
fn batched_branch_and_bound_matches_scalar_on_all_table1_benchmarks() {
    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 15, "Table 1 lists 15 benchmarks");
    let scalar_config = BranchBoundConfig {
        max_boxes: 3_000,
        lane_batched: false,
        ..BranchBoundConfig::default()
    };
    let batched_config = BranchBoundConfig {
        max_boxes: 3_000,
        ..BranchBoundConfig::default()
    };
    let sweep_start = Instant::now();
    for spec in benchmarks {
        let name = spec.name();
        let env = spec.into_env();
        let (next_value, barrier, domain) = induction_query(&env);
        let query = BoundQuery::new(&next_value, 0.0).with_guard(&barrier);
        let start = Instant::now();
        let scalar = prove_bound(&query, &domain, &scalar_config);
        let scalar_elapsed = start.elapsed();
        let start = Instant::now();
        let batched = prove_bound(&query, &domain, &batched_config);
        let batched_elapsed = start.elapsed();
        assert_eq!(
            scalar, batched,
            "{name}: lane-batched branch-and-bound diverged from the scalar path"
        );
        println!(
            "branch_bound_conformance: {name:<20} scalar {scalar_elapsed:>10.3?}  batched {batched_elapsed:>10.3?}  outcome {}",
            match &batched {
                o if o.is_proved() => "proved",
                o if o.counterexample().is_some() => "refuted",
                _ => "unknown",
            }
        );
    }
    println!(
        "branch_bound_conformance: full 15-benchmark sweep in {:.3?}",
        sweep_start.elapsed()
    );
}

#[test]
fn sound_minimum_is_bit_identical_across_modes_on_all_table1_benchmarks() {
    // `sound_minimum`'s wave-batched refinement must return the *bit-exact*
    // bound of the scalar one-box-at-a-time arm — same pops, same splits,
    // same float — on every benchmark's certificate and successor
    // polynomials, across budgets that stop mid-wave, exactly at a wave
    // boundary, and deep into refinement.
    use vrl::solver::sound_minimum_with;
    for spec in all_benchmarks() {
        let name = spec.name();
        let env = spec.into_env();
        let (next_value, barrier, domain) = induction_query(&env);
        for polynomial in [&barrier, &next_value] {
            for max_boxes in [1usize, 7, 16, 300] {
                let scalar = sound_minimum_with(polynomial, &domain, max_boxes, false);
                let batched = sound_minimum_with(polynomial, &domain, max_boxes, true);
                assert_eq!(
                    scalar.to_bits(),
                    batched.to_bits(),
                    "{name}: sound_minimum diverged at max_boxes={max_boxes} \
                     (scalar {scalar}, batched {batched})"
                );
            }
        }
    }
}

#[test]
fn verification_certificates_are_identical_across_modes() {
    // Full-pipeline certificate identity: the linear (Lyapunov) back-end on
    // a Table 1 LTI benchmark, and the nonlinear (sampled-constraint +
    // branch-and-bound) back-end on the Duffing oscillator with the paper's
    // Example 4.3 program.  Verification is seeded, so the only degree of
    // freedom between the runs is the branch-and-bound evaluation mode —
    // identical certificates prove the batched frontier changes nothing.
    let cases: Vec<(
        &str,
        vrl::dynamics::EnvironmentContext,
        Vec<Polynomial>,
        u32,
    )> = vec![
        (
            "satellite",
            benchmark_by_name("satellite").unwrap().into_env(),
            vec![Polynomial::linear(&[-2.0, -2.0], 0.0)],
            2,
        ),
        (
            // Example 4.3's first synthesized policy P1 on a restricted
            // initial region (the full Duffing region needs several CEGIS
            // pieces; one is enough to exercise the nonlinear back-end).
            "duffing",
            vrl_benchmarks::duffing::duffing_env()
                .with_init(vrl::dynamics::BoxRegion::symmetric(&[1.0, 1.0])),
            vec![Polynomial::linear(&[0.39, -1.41], 0.0)],
            4,
        ),
    ];
    for (name, env, program, degree) in cases {
        let mut scalar_config = VerificationConfig::with_degree(degree);
        scalar_config.branch_bound.lane_batched = false;
        let batched_config = VerificationConfig::with_degree(degree);
        let start = Instant::now();
        let scalar_cert = verify_program(&env, &program, env.init(), &scalar_config)
            .unwrap_or_else(|e| panic!("{name}: scalar verification failed: {e}"));
        let scalar_elapsed = start.elapsed();
        let start = Instant::now();
        let batched_cert = verify_program(&env, &program, env.init(), &batched_config)
            .unwrap_or_else(|e| panic!("{name}: batched verification failed: {e}"));
        let batched_elapsed = start.elapsed();
        assert_eq!(
            scalar_cert.polynomial(),
            batched_cert.polynomial(),
            "{name}: the two modes synthesized different certificates"
        );
        println!(
            "branch_bound_conformance: verify {name:<12} scalar {scalar_elapsed:>10.3?}  batched {batched_elapsed:>10.3?}  (identical certificate)"
        );
    }
}
