//! Artifact persistence round-trip tests over Table 1 benchmarks: a shield
//! serialized and deserialized must make *identical* decisions everywhere,
//! and corrupted or version-incompatible artifacts must be rejected.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::Policy;
use vrl::poly::Polynomial;
use vrl::shield::{Shield, ShieldPiece};
use vrl::synth::PolicyProgram;
use vrl::verify::{verify_program, VerificationConfig};
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::fixtures;
use vrl_runtime::{ArtifactError, ShieldArtifact, FORMAT_VERSION};

/// A deployment for a Table 1 benchmark: ellipsoid-invariant shield plus a
/// small random oracle, both from the shared `vrl_runtime::fixtures`
/// helpers (round-trip *fidelity* does not depend on how the certificate
/// was obtained).
fn artifact_for(name: &str, gains: &[f64], radii: &[f64], seed: u64) -> ShieldArtifact {
    let env = benchmark_by_name(name)
        .unwrap_or_else(|| panic!("{name} is a Table 1 benchmark"))
        .into_env();
    fixtures::demo_artifact(&env, gains, radii, &[32, 32], seed)
        .expect("benchmark dimensions agree")
        .with_label(format!("roundtrip-{name}"))
}

/// The satellite deployment goes through the *real* Lyapunov verification
/// back-end (it is linear, so the certificate search is fast even in debug
/// builds).
fn verified_satellite_artifact(seed: u64) -> ShieldArtifact {
    let env = benchmark_by_name("satellite").unwrap().into_env();
    let gains = [-2.0, -2.0];
    let invariant = verify_program(
        &env,
        &[Polynomial::linear(&gains, 0.0)],
        env.init(),
        &VerificationConfig::with_degree(2),
    )
    .expect("the satellite PD program is certifiable");
    let shield = Shield::new(
        env.clone(),
        vec![ShieldPiece::new(
            PolicyProgram::linear(&[gains.to_vec()], &[0.0]),
            invariant,
        )],
    );
    ShieldArtifact::new(shield, fixtures::demo_oracle(&env, &[32, 32], seed))
        .expect("benchmark dimensions agree")
        .with_label("roundtrip-satellite".to_string())
}

/// The three Table 1 deployments exercised below, with stabilizing gains
/// from `vrl_runtime::fixtures`.  Built once per test binary: the bytes are
/// cached and each test decodes its own copy.
fn table1_artifacts() -> Vec<(&'static str, ShieldArtifact)> {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<(&'static str, Vec<u8>)>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            vec![
                ("satellite", verified_satellite_artifact(41).to_bytes()),
                (
                    "pendulum",
                    artifact_for(
                        "pendulum",
                        &fixtures::PENDULUM_GAINS,
                        &fixtures::PENDULUM_RADII,
                        42,
                    )
                    .to_bytes(),
                ),
                (
                    "cartpole",
                    artifact_for(
                        "cartpole",
                        &fixtures::CARTPOLE_GAINS,
                        &fixtures::CARTPOLE_RADII,
                        43,
                    )
                    .to_bytes(),
                ),
            ]
        })
        .iter()
        .map(|(name, bytes)| {
            (
                *name,
                ShieldArtifact::from_bytes(bytes).expect("cached artifact decodes"),
            )
        })
        .collect()
}

#[test]
fn decisions_are_identical_after_round_trip_on_table1_benchmarks() {
    for (name, artifact) in table1_artifacts() {
        let bytes = artifact.to_bytes();
        let restored = ShieldArtifact::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name} round trip failed: {e}"));
        assert_eq!(
            restored.metadata(),
            artifact.metadata(),
            "{name} metadata drifted"
        );
        // Serialization is deterministic byte for byte.
        assert_eq!(
            restored.to_bytes(),
            bytes,
            "{name} serialization is not canonical"
        );
        // 100 states sampled from the whole safe region (not just S0), so
        // the comparison covers allowed, overridden, and fallback decisions.
        let mut rng = SmallRng::seed_from_u64(2019);
        let safe_box = artifact.shield().env().safety().safe_box().clone();
        let mut interventions = 0;
        for _ in 0..100 {
            let state = safe_box.sample(&mut rng);
            let proposed = artifact.oracle().action(&state);
            assert_eq!(
                restored.oracle().action(&state),
                proposed,
                "{name}: oracle drifted at {state:?}"
            );
            let expected = artifact.shield().decide(&state, &proposed);
            let actual = restored.shield().decide(&state, &proposed);
            assert_eq!(
                actual, expected,
                "{name}: shield decision drifted at {state:?}"
            );
            if expected.intervened {
                interventions += 1;
            }
        }
        assert!(
            interventions > 0,
            "{name}: the sample should exercise at least one intervention"
        );
    }
}

#[test]
fn file_round_trip_preserves_decisions() {
    let (_, artifact) = table1_artifacts().remove(1);
    let dir = std::env::temp_dir().join("vrl-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pendulum.shield");
    artifact.save(&path).unwrap();
    let loaded = ShieldArtifact::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded.label(), "roundtrip-pendulum");
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..100 {
        let state = artifact.shield().env().sample_initial(&mut rng);
        let proposed = artifact.oracle().action(&state);
        assert_eq!(
            loaded.shield().decide(&state, &proposed),
            artifact.shield().decide(&state, &proposed)
        );
    }
}

#[test]
fn corrupted_bytes_are_rejected_not_misparsed() {
    let (_, artifact) = table1_artifacts().remove(0);
    let bytes = artifact.to_bytes();
    // Flip one bit in every 97th byte of the payload region: each corruption
    // must be caught by the checksum (or, for header bytes, the gates).
    for offset in (16..bytes.len() - 8).step_by(97) {
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= 0x01;
        assert!(
            ShieldArtifact::from_bytes(&corrupted).is_err(),
            "bit flip at byte {offset} went undetected"
        );
    }
    // Truncations anywhere must be rejected.
    for keep in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
        assert!(ShieldArtifact::from_bytes(&bytes[..keep]).is_err());
    }
}

#[test]
fn wrong_format_version_is_rejected() {
    let (_, artifact) = table1_artifacts().remove(0);
    let mut bytes = artifact.to_bytes();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    match ShieldArtifact::from_bytes(&bytes) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // And a wholly different file type is identified as such.
    assert!(matches!(
        ShieldArtifact::from_bytes(b"PK\x03\x04 definitely a zip file"),
        Err(ArtifactError::BadMagic)
    ));
}
