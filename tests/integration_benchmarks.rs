//! Integration tests exercising the verification back-ends on the Table 1
//! benchmark families, including the high-dimensional LTI systems.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::{BoxRegion, Policy};
use vrl::poly::Polynomial;
use vrl::synth::PolicyProgram;
use vrl::verify::{verify_program, VerificationConfig};
use vrl_benchmarks::oscillator::FILTER_ORDER;
use vrl_benchmarks::platoon::platoon_env;
use vrl_benchmarks::{all_benchmarks, benchmark_by_name};

#[test]
fn registry_exposes_all_fifteen_benchmarks() {
    let all = all_benchmarks();
    assert_eq!(all.len(), 15);
    let total_vars: usize = all.iter().map(|b| b.env().state_dim()).sum();
    // 2+3+3+3+4+3+3+2+2+4+4+4+8+16+18 = 79 state variables across Table 1.
    assert_eq!(total_vars, 79);
}

#[test]
fn lyapunov_backend_certifies_the_lti_benchmarks() {
    // Satellite with a PD program.
    let satellite = benchmark_by_name("satellite").unwrap().into_env();
    let program = vec![Polynomial::linear(&[-2.0, -2.0], 0.0)];
    let cert = verify_program(
        &satellite,
        &program,
        satellite.init(),
        &VerificationConfig::with_degree(2),
    )
    .expect("satellite PD program is certifiable");
    let mut rng = SmallRng::seed_from_u64(31);
    for _ in 0..50 {
        let s = satellite.sample_initial(&mut rng);
        assert!(cert.contains(&s));
    }
    assert!(!cert.contains(&[2.5, 0.0]));
}

#[test]
fn lyapunov_backend_scales_to_the_eight_car_platoon() {
    // A single ellipsoidal invariant cannot reach the corners of a
    // 16-dimensional initial box whose sides are a third of the safe range
    // (the corner is √16 times farther than a face centre); the paper's SOS
    // search uses higher-degree certificates there.  We certify a reduced
    // initial region, which still exercises the 16-dimensional back-end, and
    // the CEGIS driver reports the uncovered corners honestly otherwise.
    let env = platoon_env(8).with_init(BoxRegion::symmetric(&[0.03; 16]));
    // Per-car PD with predecessor feed-forward: a_i = -2 e_i - 2.5 v_i + a_{i-1},
    // i.e. the cumulative gains Σ_{j ≤ i} (-2 e_j - 2.5 v_j), which decouples
    // the platoon into independent double integrators.
    let n = env.state_dim();
    let programs: Vec<Polynomial> = (0..8)
        .map(|i| {
            let mut gains = vec![0.0; n];
            for j in 0..=i {
                gains[2 * j] = -2.0;
                gains[2 * j + 1] = -2.5;
            }
            Polynomial::linear(&gains, 0.0)
        })
        .collect();
    let cert = verify_program(
        &env,
        &programs,
        env.init(),
        &VerificationConfig::with_degree(2),
    )
    .expect("the 16-dimensional platoon must be certifiable by the quadratic back-end");
    assert_eq!(cert.state_dim(), 16);
    // Simulated closed loop never leaves the invariant.
    let program =
        PolicyProgram::from_branches(vec![vrl::synth::GuardedPolicy::unconditional(programs)]);
    let mut s = vec![0.03; 16];
    for _ in 0..2000 {
        assert!(cert.contains(&s));
        assert!(!env.is_unsafe(&s));
        s = env.step_deterministic(&s, &program.action(&s));
    }
}

#[test]
fn lyapunov_backend_handles_the_eighteen_dimensional_oscillator() {
    // Certify the damped oscillator on a reduced initial region, exercising
    // the 18-dimensional quadratic back-end.
    let env = vrl_benchmarks::oscillator::oscillator_env()
        .with_init(BoxRegion::symmetric(&[0.02; 2 + FILTER_ORDER]));
    let n = env.state_dim();
    let mut gains = vec![0.0; n];
    gains[0] = -1.0;
    gains[1] = -1.5;
    let program = vec![Polynomial::linear(&gains, 0.0)];
    let cert = verify_program(
        &env,
        &program,
        env.init(),
        &VerificationConfig::with_degree(2),
    )
    .expect("the 18-dimensional oscillator must be certifiable on the reduced region");
    assert_eq!(cert.state_dim(), 18);
    assert!(cert.contains(&[0.02; 18]));
}

#[test]
fn nonlinear_backend_certifies_the_biology_benchmark() {
    let env = benchmark_by_name("biology").unwrap().into_env();
    // Insulin dosing proportional to the glucose excursion, with strong
    // plasma-insulin clearance so the closed loop is well damped.
    let program = vec![Polynomial::linear(&[1.0, 0.0, -2.0], 0.0)];
    let mut config = VerificationConfig::with_degree(2);
    config.max_candidate_rounds = 25;
    config.transition_samples = 800;
    // The bilinear Bergman model stresses the branch-and-bound budget: the
    // verifier must either produce a certificate or report a concrete
    // obstruction — it must never silently claim success (soundness).
    match verify_program(&env, &program, env.init(), &config) {
        Ok(cert) => {
            let mut rng = SmallRng::seed_from_u64(33);
            for _ in 0..25 {
                let s = env.sample_initial(&mut rng);
                assert!(cert.contains(&s));
            }
            assert!(
                !cert.contains(&[-1.0, 0.0, 0.0]),
                "hypoglycemic states must be excluded"
            );
        }
        Err(failure) => {
            assert!(
                failure.counterexample().is_some() || !failure.to_string().is_empty(),
                "a failed verification must explain itself"
            );
            // Even when the certificate search is inconclusive, the program is
            // empirically safe; the runtime shield would fall back to it.
            let mut rng = SmallRng::seed_from_u64(33);
            let policy =
                PolicyProgram::from_branches(vec![vrl::synth::GuardedPolicy::unconditional(
                    program,
                )]);
            for _ in 0..10 {
                let s0 = env.sample_initial(&mut rng);
                let t = env.rollout(&policy, &s0, 3000, &mut rng);
                assert!(!t.violates(env.safety()));
            }
        }
    }
}

#[test]
fn every_benchmark_program_sketch_dimension_matches() {
    for spec in all_benchmarks() {
        let env = spec.env();
        let sketch = vrl::synth::ProgramSketch::affine(env.state_dim(), env.action_dim());
        assert_eq!(
            sketch.num_parameters(),
            env.action_dim() * (env.state_dim() + 1)
        );
    }
}
