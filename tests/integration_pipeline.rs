//! End-to-end pipeline integration tests spanning all crates: RL training,
//! Algorithm 1 distillation, verification, CEGIS, shielding and evaluation.

use vrl::pipeline::{run_pipeline, PipelineConfig};
use vrl_benchmarks::quadcopter::quadcopter_env;

#[test]
fn full_pipeline_shields_the_quadcopter() {
    let env = quadcopter_env();
    let mut config = PipelineConfig::smoke_test().with_invariant_degree(2);
    config.evaluation_episodes = 5;
    config.evaluation_steps = 500;
    let outcome = run_pipeline(&env, &config).expect("the quadcopter is shieldable");
    assert!(outcome.shield.num_pieces() >= 1);
    assert_eq!(
        outcome.evaluation.shielded_failures, 0,
        "the shield must prevent every violation"
    );
    assert_eq!(outcome.evaluation.episodes, 5);
    // The flattened Theorem 4.2 program covers the initial region's centre.
    let program = outcome.shield.to_program();
    assert!(program.evaluate(&env.init().center()).is_some());
    // The synthesized program is printable with the environment's names.
    let text = program.pretty(&env.variable_names());
    assert!(text.contains("def P(h, v):"));
}

#[test]
fn pipeline_is_reproducible_for_a_fixed_seed() {
    // The same configuration and seed must give the same shield structure.
    let env = quadcopter_env();
    let mut config = PipelineConfig::smoke_test().with_invariant_degree(2);
    config.evaluation_episodes = 3;
    config.evaluation_steps = 300;
    let first = run_pipeline(&env, &config).expect("shieldable");
    let second = run_pipeline(&env, &config).expect("shieldable");
    assert_eq!(first.shield.num_pieces(), second.shield.num_pieces());
    assert_eq!(first.evaluation.shielded_failures, 0);
    assert_eq!(second.evaluation.shielded_failures, 0);
}
