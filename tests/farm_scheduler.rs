//! Scheduler determinism and mass-deploy conformance.
//!
//! The farm's promise is *zero nondeterminism*: the same farm seed and
//! job config produce the identical job set, identical outcomes, and
//! byte-identical artifacts (checksummed) whether the pool runs one
//! worker or many.  These tests pin that promise, then push a report's
//! artifacts through a `ShardRouter` and serve from them.

use std::collections::HashSet;
use vrl::shield::{CegisConfig, TableConfig};
use vrl_farm::{
    fnv1a64, generate, run_farm, scenario_by_id, FarmConfig, JobConfig, JobOutcome, Scenario,
};
use vrl_runtime::{Placement, ShardRouter};

/// A seeded subset of scenarios cheap enough to synthesize in tests:
/// quadcopter drags, Duffing dampings, and a two-car platoon.  Debug
/// builds compile the per-lane parity asserts into every kernel, making
/// CEGIS jobs an order of magnitude slower, so the debug tier proves the
/// same determinism promise on the cheapest family only.
fn seeded_subset() -> Vec<Scenario> {
    let scenarios = generate(&FarmConfig::smoke());
    let mut subset: Vec<Scenario> = scenarios
        .iter()
        .filter(|s| {
            s.family() == "quadcopter" || (!cfg!(debug_assertions) && s.family() == "duffing")
        })
        .cloned()
        .collect();
    if !cfg!(debug_assertions) {
        subset.push(scenario_by_id("platoon/n2").expect("canonical platoon"));
    }
    let floor = if cfg!(debug_assertions) { 3 } else { 6 };
    assert!(subset.len() >= floor, "subset too small: {}", subset.len());
    subset
}

fn fast_config() -> JobConfig {
    let mut cegis = CegisConfig::smoke_test();
    cegis.distill.iterations = 30;
    cegis.distill.trajectories = 2;
    cegis.distill.horizon = 150;
    JobConfig {
        cegis,
        oracle_hidden: vec![8],
        table: Some(TableConfig::uniform(8)),
        timeout: None,
    }
}

/// Byte images of a report's artifacts (None for jobs without one), used
/// for byte-identity comparison across runs.
fn artifact_bytes(report: &vrl_farm::FarmReport) -> Vec<Option<Vec<u8>>> {
    report
        .records
        .iter()
        .map(|r| r.artifact.as_ref().map(|a| a.to_bytes()))
        .collect()
}

#[test]
fn one_thread_and_many_threads_produce_byte_identical_artifacts() {
    let subset = seeded_subset();
    let config = fast_config();
    let single = run_farm(&subset, &config, 1);
    let pooled = run_farm(&subset, &config, 4);
    let single_again = run_farm(&subset, &config, 1);

    assert!(
        single.synthesized() >= 1,
        "the seeded subset must synthesize at least one shield"
    );
    assert_eq!(single.records.len(), subset.len());
    assert_eq!(pooled.records.len(), subset.len());
    assert_eq!(pooled.threads, 4);

    let single_bytes = artifact_bytes(&single);
    for other in [&pooled, &single_again] {
        let other_bytes = artifact_bytes(other);
        for (index, scenario) in subset.iter().enumerate() {
            // Same job set, same order, same outcome.
            assert_eq!(single.records[index].scenario_id, scenario.id());
            assert_eq!(other.records[index].scenario_id, scenario.id());
            assert_eq!(
                single.records[index].outcome,
                other.records[index].outcome,
                "{}: outcome diverged across thread counts",
                scenario.id()
            );
            // Byte-identical artifacts, and the recorded checksum is the
            // checksum of those bytes.
            assert_eq!(
                single_bytes[index],
                other_bytes[index],
                "{}: artifact bytes diverged across thread counts",
                scenario.id()
            );
            if let JobOutcome::Synthesized {
                artifact_checksum, ..
            } = &single.records[index].outcome
            {
                let bytes = single_bytes[index]
                    .as_ref()
                    .expect("synthesized => artifact");
                assert_eq!(fnv1a64(bytes), *artifact_checksum);
            } else {
                assert!(single_bytes[index].is_none());
            }
        }
    }
}

#[test]
fn farm_reports_mass_deploy_and_serve_through_a_shard_router() {
    let subset = seeded_subset();
    let jobs_before = vrl_farm::jobs_completed();
    let report = run_farm(&subset, &fast_config(), 3);
    assert_eq!(
        vrl_farm::jobs_completed() - jobs_before,
        subset.len() as u64,
        "every job must be recorded in vrl_farm_jobs_total"
    );
    assert!(report.jobs_per_sec() > 0.0);

    let router = ShardRouter::new(3, 1, Placement::Jump);
    let deployed = report.deploy_to_router(&router).expect("deploy");
    assert_eq!(deployed, report.synthesized());
    assert!(deployed >= 1);

    // Every checkpointed artifact serves from its shard, and the served
    // decision is bit-identical to deciding against the artifact locally.
    for record in &report.records {
        let Some(artifact) = &record.artifact else {
            continue;
        };
        let scenario = scenario_by_id(&record.scenario_id).expect("IDs regenerate");
        let state = vec![0.05; scenario.env().state_dim()];
        use vrl::dynamics::Policy;
        let proposed = artifact.oracle().action(&state);
        let served = router.decide(&record.scenario_id, &state).expect("serve");
        assert_eq!(served, artifact.shield().decide(&state, &proposed));
    }
}

#[test]
fn duplicate_scenarios_each_get_their_own_record() {
    let scenario = scenario_by_id("quadcopter/d0.300").unwrap();
    let scenarios = vec![scenario.clone(), scenario.clone(), scenario];
    let report = run_farm(&scenarios, &fast_config(), 2);
    assert_eq!(report.records.len(), 3);
    let checksums: HashSet<String> = report
        .records
        .iter()
        .map(|r| format!("{:?}", r.outcome))
        .collect();
    // Identical scenarios produce identical outcomes (their jobs are
    // deterministic in the scenario seed alone).
    assert_eq!(checksums.len(), 1);
}

#[test]
fn the_scheduler_never_panics_on_high_dimensional_scenarios() {
    // An 8-D platoon with a tiny budget: CEGIS cannot cover the initial
    // region, the decision-table build falls back, and the job records an
    // honest non-synthesized outcome instead of panicking.
    let scenario = scenario_by_id("platoon/n4").unwrap();
    let mut config = fast_config();
    config.cegis.max_pieces = 1;
    config.cegis.max_shrink_steps = 1;
    config.cegis.coverage_samples = 16;
    config.cegis.distill.iterations = 2;
    config.cegis.distill.trajectories = 1;
    config.cegis.distill.horizon = 40;
    let report = run_farm(std::slice::from_ref(&scenario), &config, 1);
    assert_eq!(report.records.len(), 1);
    match &report.records[0].outcome {
        JobOutcome::Synthesized { .. } => {
            // If the tiny budget somehow covers 8-D, the artifact must
            // still have degraded to the exact path (no 8-D table fits
            // the cell cap).
            let artifact = report.records[0].artifact.as_ref().unwrap();
            assert!(artifact.shield().table().is_none());
        }
        JobOutcome::BudgetExhausted { .. } | JobOutcome::Infeasible => {}
        JobOutcome::TimedOut => panic!("no timeout was configured"),
    }
}
