//! End-to-end tests of the HTTP serving front-end: the full
//! PUT-artifact → decide-batch → telemetry story over a real loopback
//! socket, the wire-level error contract (structured 4xx for malformed,
//! truncated, oversized, and wrong-dimension requests — never a panic or a
//! dropped connection without a status), and HTTP-over-a-`ShardRouter`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::wire::Json;
use vrl_runtime::{fixtures, Placement, ShardRouter, ShieldArtifact, ShieldServer};

/// The pendulum demo deployment used throughout (the bench deployment, with
/// a smaller oracle so debug-mode tests stay fast).
fn pendulum_artifact(seed: u64) -> ShieldArtifact {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[32, 32],
        seed,
    )
    .expect("dimensions agree")
}

fn sample_states(count: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let safe = env.safety().safe_box().clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| safe.sample(&mut rng)).collect()
}

fn start_frontend(backend: Arc<dyn ShieldBackend>) -> HttpFrontend {
    let config = HttpConfig {
        max_connections: 32,
        idle_timeout: Duration::from_millis(500),
        ..HttpConfig::default()
    };
    HttpFrontend::bind("127.0.0.1:0", backend, config).expect("loopback bind succeeds")
}

fn json_f64(value: &Json) -> f64 {
    match value {
        Json::Num(v) => *v,
        other => panic!("expected a number, got {other:?}"),
    }
}

/// Extracts `[(action, intervened)]` from a batched decide response.
fn parse_decisions(body: &[u8]) -> Vec<(Vec<f64>, bool)> {
    let json = Json::parse(body).expect("response is valid JSON");
    let Some(Json::Arr(decisions)) = json.get("decisions") else {
        panic!("missing decisions in {}", String::from_utf8_lossy(body));
    };
    decisions
        .iter()
        .map(|d| {
            let Some(Json::Arr(action)) = d.get("action") else {
                panic!("decision without action");
            };
            let Some(Json::Bool(intervened)) = d.get("intervened") else {
                panic!("decision without intervened");
            };
            (action.iter().map(json_f64).collect(), *intervened)
        })
        .collect()
}

#[test]
fn deploy_decide_telemetry_end_to_end() {
    // Acceptance scenario: PUT an artifact over the wire, serve a 100-state
    // batched decide, and pin the decisions bit-identical to calling
    // ShieldServer::decide_batch directly on the same bytes.
    let frontend = start_frontend(Arc::new(ShieldServer::with_workers(2)));
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    let artifact = pendulum_artifact(17);
    let bytes = artifact.to_bytes();
    let put = client
        .request("PUT", "/v1/deployments/pendulum", &bytes)
        .unwrap();
    assert_eq!(put.status, 200, "{}", put.text());
    let put_json = Json::parse(&put.body).unwrap();
    assert_eq!(put_json.get("generation"), Some(&Json::Num(1.0)));
    assert_eq!(
        put_json.get("environment"),
        Some(&Json::Str("pendulum".to_string()))
    );

    // 100-state batch over the wire.
    let states = sample_states(100, 23);
    let body = Json::Obj(vec![(
        "states".to_string(),
        Json::Arr(
            states
                .iter()
                .map(|s| Json::Arr(s.iter().map(|&v| Json::Num(v)).collect()))
                .collect(),
        ),
    )])
    .render();
    let response = client
        .request("POST", "/v1/deployments/pendulum/decide", body.as_bytes())
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let wire_decisions = parse_decisions(&response.body);
    assert_eq!(wire_decisions.len(), 100);

    // The reference: a direct in-process server over the same bytes.
    let direct = ShieldServer::with_workers(1);
    direct
        .deploy("pendulum", ShieldArtifact::from_bytes(&bytes).unwrap())
        .unwrap();
    let direct_decisions = direct.decide_batch("pendulum", &states).unwrap();
    for (wire, direct) in wire_decisions.iter().zip(direct_decisions.iter()) {
        assert_eq!(wire.1, direct.intervened);
        assert_eq!(wire.0.len(), direct.action.len());
        for (w, d) in wire.0.iter().zip(direct.action.iter()) {
            assert_eq!(w.to_bits(), d.to_bits(), "actions must be bit-identical");
        }
    }

    // Single-state shape serves the same decision as the direct scalar call.
    let single = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            format!("{{\"state\": [{}, {}]}}", states[0][0], states[0][1]).as_bytes(),
        )
        .unwrap();
    assert_eq!(single.status, 200);
    let single_json = Json::parse(&single.body).unwrap();
    let decision = single_json.get("decision").expect("single-state framing");
    let Some(Json::Arr(action)) = decision.get("action") else {
        panic!("missing action");
    };
    for (w, d) in action.iter().zip(direct_decisions[0].action.iter()) {
        assert_eq!(json_f64(w).to_bits(), d.to_bits());
    }

    // Telemetry: one PUT, two decide requests, 101 decisions.
    let telemetry = client
        .request("GET", "/v1/deployments/pendulum/telemetry", b"")
        .unwrap();
    assert_eq!(telemetry.status, 200);
    let t = Json::parse(&telemetry.body).unwrap();
    assert_eq!(t.get("requests"), Some(&Json::Num(2.0)));
    assert_eq!(t.get("decisions"), Some(&Json::Num(101.0)));
    assert_eq!(t.get("generation"), Some(&Json::Num(1.0)));

    // healthz lists the deployment.
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let h = Json::parse(&health.body).unwrap();
    assert_eq!(h.get("status"), Some(&Json::Str("ok".to_string())));
    assert_eq!(
        h.get("deployments"),
        Some(&Json::Arr(vec![Json::Str("pendulum".to_string())]))
    );

    // A second PUT is a hot redeploy: generation 2.
    let redeploy = client
        .request(
            "PUT",
            "/v1/deployments/pendulum",
            &pendulum_artifact(18).to_bytes(),
        )
        .unwrap();
    assert_eq!(redeploy.status, 200);
    let r = Json::parse(&redeploy.body).unwrap();
    assert_eq!(r.get("generation"), Some(&Json::Num(2.0)));

    frontend.shutdown();
}

/// Asserts one request's status and `error.code`, on a fresh connection.
fn assert_error(
    frontend: &HttpFrontend,
    method: &str,
    path: &str,
    body: &[u8],
    status: u16,
    code: &str,
) {
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let response = client.request(method, path, body).unwrap();
    assert_eq!(response.status, status, "{}", response.text());
    let json = Json::parse(&response.body).expect("error bodies are JSON");
    let error = json.get("error").expect("structured error envelope");
    assert_eq!(error.get("status"), Some(&Json::Num(status as f64)));
    assert_eq!(error.get("code"), Some(&Json::Str(code.to_string())));
    assert!(matches!(error.get("message"), Some(Json::Str(_))));
}

#[test]
fn wire_errors_are_structured_4xx() {
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("toy", pendulum_artifact(3)).unwrap();
    let frontend = start_frontend(server);
    let decide = "/v1/deployments/toy/decide";

    // Malformed JSON bodies.
    assert_error(
        &frontend,
        "POST",
        decide,
        b"{not json",
        400,
        "malformed_json",
    );
    assert_error(&frontend, "POST", decide, b"", 400, "malformed_json");
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"states": [[0.1, 0.2"#,
        400,
        "malformed_json",
    );
    // Well-formed, wrong shape.
    assert_error(&frontend, "POST", decide, b"{}", 400, "invalid_request");
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"state": "zero"}"#,
        400,
        "invalid_request",
    );
    // Oversized batch: limit is HttpConfig::default().max_batch = 8192.
    let oversized = format!("{{\"states\": [{}]}}", vec!["[0,0]"; 8193].join(","));
    assert_error(
        &frontend,
        "POST",
        decide,
        oversized.as_bytes(),
        413,
        "batch_too_large",
    );
    // Wrong-dimension states: understood but unservable.  (Non-finite
    // states cannot arrive via JSON — the parser already rejects numbers
    // that overflow f64 — so `non_finite_state` is pinned by the server's
    // unit tests instead.)
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"state": [0.1, 0.2, 0.3]}"#,
        422,
        "dimension_mismatch",
    );
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"states": [[0.1, 0.2], [0.3]]}"#,
        422,
        "dimension_mismatch",
    );
    // Unknown deployment and unknown path.
    assert_error(
        &frontend,
        "POST",
        "/v1/deployments/ghost/decide",
        br#"{"state": [0, 0]}"#,
        404,
        "unknown_deployment",
    );
    assert_error(&frontend, "GET", "/v1/nope", b"", 404, "not_found");
    // Wrong method on a real path.
    assert_error(&frontend, "GET", decide, b"", 405, "method_not_allowed");
    assert_error(
        &frontend,
        "POST",
        "/v1/deployments/toy",
        b"x",
        405,
        "method_not_allowed",
    );
    // Corrupt artifact uploads: checksum flip vs. garbage vs. truncation.
    let mut corrupt = pendulum_artifact(4).to_bytes();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x20;
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy2",
        &corrupt,
        422,
        "checksum_mismatch",
    );
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy2",
        b"not an artifact",
        422,
        "bad_magic",
    );
    let whole = pendulum_artifact(4).to_bytes();
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy2",
        &whole[..whole.len() - 10],
        422,
        "artifact_truncated",
    );
    // Dimension-incompatible hot redeploy.
    let env = benchmark_by_name("cartpole").expect("cartpole").into_env();
    let cartpole = fixtures::demo_artifact(
        &env,
        &fixtures::CARTPOLE_GAINS,
        &fixtures::CARTPOLE_RADII,
        &[8],
        1,
    )
    .unwrap();
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy",
        &cartpole.to_bytes(),
        409,
        "incompatible_artifact",
    );

    frontend.shutdown();
}

#[test]
fn http_level_framing_errors_are_clean() {
    let frontend = start_frontend(Arc::new(ShieldServer::with_workers(1)));
    let addr = frontend.local_addr();

    let raw = |request: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(request).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    };

    // Truncated body: Content-Length promises more than arrives.
    let truncated = raw(
        b"POST /v1/deployments/toy/decide HTTP/1.1\r\ncontent-length: 400\r\n\r\n{\"state\": [",
    );
    assert!(truncated.starts_with("HTTP/1.1 400"), "{truncated}");
    assert!(truncated.contains("truncated_body"), "{truncated}");

    // Missing Content-Length on POST.
    let lengthless = raw(b"POST /v1/deployments/toy/decide HTTP/1.1\r\n\r\n");
    assert!(lengthless.starts_with("HTTP/1.1 411"), "{lengthless}");

    // Chunked encoding is politely refused.
    let chunked =
        raw(b"POST /v1/deployments/toy/decide HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
    assert!(chunked.starts_with("HTTP/1.1 501"), "{chunked}");

    // Garbage request line.
    let garbage = raw(b"\x01\x02\x03\r\n\r\n");
    assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

    // Declared body over the configured limit.
    let huge = raw(b"PUT /v1/deployments/toy HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n");
    assert!(huge.starts_with("HTTP/1.1 413"), "{huge}");

    frontend.shutdown();
}

#[test]
fn frontend_serves_a_shard_router() {
    // The same wire protocol over a sharded fleet: deployments land on
    // their placed shards and answer identically to a direct server.
    let router = Arc::new(ShardRouter::new(3, 1, Placement::Rendezvous));
    let frontend = start_frontend(Arc::clone(&router) as Arc<dyn ShieldBackend>);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    let names = ["alpha", "beta", "gamma", "delta"];
    for (i, name) in names.iter().enumerate() {
        let response = client
            .request(
                "PUT",
                &format!("/v1/deployments/{name}"),
                &pendulum_artifact(i as u64).to_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
    let health = client.request("GET", "/healthz", b"").unwrap();
    let h = Json::parse(&health.body).unwrap();
    assert_eq!(
        h.get("deployments"),
        Some(&Json::Arr(
            ["alpha", "beta", "delta", "gamma"]
                .iter()
                .map(|n| Json::Str(n.to_string()))
                .collect()
        ))
    );

    let states = sample_states(40, 7);
    let body = Json::Obj(vec![(
        "states".to_string(),
        Json::Arr(
            states
                .iter()
                .map(|s| Json::Arr(s.iter().map(|&v| Json::Num(v)).collect()))
                .collect(),
        ),
    )])
    .render();
    for (i, name) in names.iter().enumerate() {
        let response = client
            .request(
                "POST",
                &format!("/v1/deployments/{name}/decide"),
                body.as_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200);
        let wire_decisions = parse_decisions(&response.body);
        let direct = ShieldServer::with_workers(1);
        direct.deploy(*name, pendulum_artifact(i as u64)).unwrap();
        let direct_decisions = direct.decide_batch(name, &states).unwrap();
        for (wire, direct) in wire_decisions.iter().zip(direct_decisions.iter()) {
            for (w, d) in wire.0.iter().zip(direct.action.iter()) {
                assert_eq!(w.to_bits(), d.to_bits());
            }
        }
    }

    // Fleet telemetry adds up across shards even when served over HTTP.
    let fleet = router.aggregate_telemetry();
    assert_eq!(fleet.deployments, names.len() as u64);
    assert_eq!(fleet.requests, names.len() as u64);
    assert_eq!(fleet.decisions, (names.len() * states.len()) as u64);

    frontend.shutdown();
}

#[test]
fn keep_alive_and_pipelined_requests_share_a_connection() {
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("toy", pendulum_artifact(9)).unwrap();
    let frontend = start_frontend(server);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    // Many requests over one connection.
    for i in 0..20 {
        let x = (i as f64) / 100.0;
        let response = client
            .request(
                "POST",
                "/v1/deployments/toy/decide",
                format!("{{\"state\": [{x}, 0.0]}}").as_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200);
    }
    // Two requests written back-to-back before reading either response.
    let mut stream = TcpStream::connect(frontend.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let one = b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
    let mut two = Vec::new();
    two.extend_from_slice(one);
    two.extend_from_slice(
        b"GET /v1/deployments/toy/telemetry HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
    );
    stream.write_all(&two).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out);
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    frontend.shutdown();
}
