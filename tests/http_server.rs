//! End-to-end tests of the HTTP serving front-end: the full
//! PUT-artifact → decide-batch → telemetry story over a real loopback
//! socket, the wire-level error contract (structured 4xx for malformed,
//! truncated, oversized, and wrong-dimension requests — never a panic or a
//! dropped connection without a status), and HTTP-over-a-`ShardRouter`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::wire::Json;
use vrl_runtime::{fixtures, Placement, ShardRouter, ShieldArtifact, ShieldServer};

/// The pendulum demo deployment used throughout (the bench deployment, with
/// a smaller oracle so debug-mode tests stay fast).
fn pendulum_artifact(seed: u64) -> ShieldArtifact {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[32, 32],
        seed,
    )
    .expect("dimensions agree")
}

fn sample_states(count: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let safe = env.safety().safe_box().clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| safe.sample(&mut rng)).collect()
}

fn start_frontend(backend: Arc<dyn ShieldBackend>) -> HttpFrontend {
    let config = HttpConfig {
        max_connections: 32,
        idle_timeout: Duration::from_millis(500),
        ..HttpConfig::default()
    };
    HttpFrontend::bind("127.0.0.1:0", backend, config).expect("loopback bind succeeds")
}

fn json_f64(value: &Json) -> f64 {
    match value {
        Json::Num(v) => *v,
        other => panic!("expected a number, got {other:?}"),
    }
}

/// Extracts `[(action, intervened)]` from a batched decide response.
fn parse_decisions(body: &[u8]) -> Vec<(Vec<f64>, bool)> {
    let json = Json::parse(body).expect("response is valid JSON");
    let Some(Json::Arr(decisions)) = json.get("decisions") else {
        panic!("missing decisions in {}", String::from_utf8_lossy(body));
    };
    decisions
        .iter()
        .map(|d| {
            let Some(Json::Arr(action)) = d.get("action") else {
                panic!("decision without action");
            };
            let Some(Json::Bool(intervened)) = d.get("intervened") else {
                panic!("decision without intervened");
            };
            (action.iter().map(json_f64).collect(), *intervened)
        })
        .collect()
}

#[test]
fn deploy_decide_telemetry_end_to_end() {
    // Acceptance scenario: PUT an artifact over the wire, serve a 100-state
    // batched decide, and pin the decisions bit-identical to calling
    // ShieldServer::decide_batch directly on the same bytes.
    let frontend = start_frontend(Arc::new(ShieldServer::with_workers(2)));
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    let artifact = pendulum_artifact(17);
    let bytes = artifact.to_bytes();
    let put = client
        .request("PUT", "/v1/deployments/pendulum", &bytes)
        .unwrap();
    assert_eq!(put.status, 200, "{}", put.text());
    let put_json = Json::parse(&put.body).unwrap();
    assert_eq!(put_json.get("generation"), Some(&Json::U64(1)));
    assert_eq!(
        put_json.get("environment"),
        Some(&Json::Str("pendulum".to_string()))
    );

    // 100-state batch over the wire.
    let states = sample_states(100, 23);
    let body = Json::Obj(vec![(
        "states".to_string(),
        Json::Arr(
            states
                .iter()
                .map(|s| Json::Arr(s.iter().map(|&v| Json::Num(v)).collect()))
                .collect(),
        ),
    )])
    .render();
    let response = client
        .request("POST", "/v1/deployments/pendulum/decide", body.as_bytes())
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let wire_decisions = parse_decisions(&response.body);
    assert_eq!(wire_decisions.len(), 100);

    // The reference: a direct in-process server over the same bytes.
    let direct = ShieldServer::with_workers(1);
    direct
        .deploy("pendulum", ShieldArtifact::from_bytes(&bytes).unwrap())
        .unwrap();
    let direct_decisions = direct.decide_batch("pendulum", &states).unwrap();
    for (wire, direct) in wire_decisions.iter().zip(direct_decisions.iter()) {
        assert_eq!(wire.1, direct.intervened);
        assert_eq!(wire.0.len(), direct.action.len());
        for (w, d) in wire.0.iter().zip(direct.action.iter()) {
            assert_eq!(w.to_bits(), d.to_bits(), "actions must be bit-identical");
        }
    }

    // Single-state shape serves the same decision as the direct scalar call.
    let single = client
        .request(
            "POST",
            "/v1/deployments/pendulum/decide",
            format!("{{\"state\": [{}, {}]}}", states[0][0], states[0][1]).as_bytes(),
        )
        .unwrap();
    assert_eq!(single.status, 200);
    let single_json = Json::parse(&single.body).unwrap();
    let decision = single_json.get("decision").expect("single-state framing");
    let Some(Json::Arr(action)) = decision.get("action") else {
        panic!("missing action");
    };
    for (w, d) in action.iter().zip(direct_decisions[0].action.iter()) {
        assert_eq!(json_f64(w).to_bits(), d.to_bits());
    }

    // Telemetry: one PUT, two decide requests, 101 decisions.
    let telemetry = client
        .request("GET", "/v1/deployments/pendulum/telemetry", b"")
        .unwrap();
    assert_eq!(telemetry.status, 200);
    let t = Json::parse(&telemetry.body).unwrap();
    assert_eq!(t.get("requests"), Some(&Json::U64(2)));
    assert_eq!(t.get("decisions"), Some(&Json::U64(101)));
    assert_eq!(t.get("generation"), Some(&Json::U64(1)));

    // healthz lists the deployment with its generation, plus uptime.
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let h = Json::parse(&health.body).unwrap();
    assert_eq!(h.get("status"), Some(&Json::Str("ok".to_string())));
    assert!(matches!(h.get("uptime_seconds"), Some(Json::U64(_))));
    let Some(Json::Arr(deployments)) = h.get("deployments") else {
        panic!("healthz without deployments: {}", health.text());
    };
    assert_eq!(deployments.len(), 1);
    assert_eq!(
        deployments[0].get("name"),
        Some(&Json::Str("pendulum".to_string()))
    );
    assert_eq!(deployments[0].get("generation"), Some(&Json::U64(1)));

    // A second PUT is a hot redeploy: generation 2.
    let redeploy = client
        .request(
            "PUT",
            "/v1/deployments/pendulum",
            &pendulum_artifact(18).to_bytes(),
        )
        .unwrap();
    assert_eq!(redeploy.status, 200);
    let r = Json::parse(&redeploy.body).unwrap();
    assert_eq!(r.get("generation"), Some(&Json::U64(2)));

    frontend.shutdown();
}

/// Asserts one request's status and `error.code`, on a fresh connection.
fn assert_error(
    frontend: &HttpFrontend,
    method: &str,
    path: &str,
    body: &[u8],
    status: u16,
    code: &str,
) {
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let response = client.request(method, path, body).unwrap();
    assert_eq!(response.status, status, "{}", response.text());
    let json = Json::parse(&response.body).expect("error bodies are JSON");
    let error = json.get("error").expect("structured error envelope");
    assert_eq!(error.get("status"), Some(&Json::U64(status as u64)));
    assert_eq!(error.get("code"), Some(&Json::Str(code.to_string())));
    assert!(matches!(error.get("message"), Some(Json::Str(_))));
    // Every error envelope names the request it failed, and the same id is
    // echoed as a header.
    let Some(Json::Str(request_id)) = error.get("request_id") else {
        panic!("error envelope without request_id: {}", response.text());
    };
    assert_eq!(response.header("x-request-id"), Some(request_id.as_str()));
}

#[test]
fn wire_errors_are_structured_4xx() {
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("toy", pendulum_artifact(3)).unwrap();
    let frontend = start_frontend(server);
    let decide = "/v1/deployments/toy/decide";

    // Malformed JSON bodies.
    assert_error(
        &frontend,
        "POST",
        decide,
        b"{not json",
        400,
        "malformed_json",
    );
    assert_error(&frontend, "POST", decide, b"", 400, "malformed_json");
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"states": [[0.1, 0.2"#,
        400,
        "malformed_json",
    );
    // Well-formed, wrong shape.
    assert_error(&frontend, "POST", decide, b"{}", 400, "invalid_request");
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"state": "zero"}"#,
        400,
        "invalid_request",
    );
    // Oversized batch: limit is HttpConfig::default().max_batch = 8192.
    let oversized = format!("{{\"states\": [{}]}}", vec!["[0,0]"; 8193].join(","));
    assert_error(
        &frontend,
        "POST",
        decide,
        oversized.as_bytes(),
        413,
        "batch_too_large",
    );
    // Wrong-dimension states: understood but unservable.  (Non-finite
    // states cannot arrive via JSON — the parser already rejects numbers
    // that overflow f64 — so `non_finite_state` is pinned by the server's
    // unit tests instead.)
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"state": [0.1, 0.2, 0.3]}"#,
        422,
        "dimension_mismatch",
    );
    assert_error(
        &frontend,
        "POST",
        decide,
        br#"{"states": [[0.1, 0.2], [0.3]]}"#,
        422,
        "dimension_mismatch",
    );
    // Unknown deployment and unknown path.
    assert_error(
        &frontend,
        "POST",
        "/v1/deployments/ghost/decide",
        br#"{"state": [0, 0]}"#,
        404,
        "unknown_deployment",
    );
    assert_error(&frontend, "GET", "/v1/nope", b"", 404, "not_found");
    // Wrong method on a real path.
    assert_error(&frontend, "GET", decide, b"", 405, "method_not_allowed");
    assert_error(
        &frontend,
        "POST",
        "/v1/deployments/toy",
        b"x",
        405,
        "method_not_allowed",
    );
    // Corrupt artifact uploads: checksum flip vs. garbage vs. truncation.
    let mut corrupt = pendulum_artifact(4).to_bytes();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x20;
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy2",
        &corrupt,
        422,
        "checksum_mismatch",
    );
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy2",
        b"not an artifact",
        422,
        "bad_magic",
    );
    let whole = pendulum_artifact(4).to_bytes();
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy2",
        &whole[..whole.len() - 10],
        422,
        "artifact_truncated",
    );
    // Dimension-incompatible hot redeploy.
    let env = benchmark_by_name("cartpole").expect("cartpole").into_env();
    let cartpole = fixtures::demo_artifact(
        &env,
        &fixtures::CARTPOLE_GAINS,
        &fixtures::CARTPOLE_RADII,
        &[8],
        1,
    )
    .unwrap();
    assert_error(
        &frontend,
        "PUT",
        "/v1/deployments/toy",
        &cartpole.to_bytes(),
        409,
        "incompatible_artifact",
    );

    frontend.shutdown();
}

#[test]
fn http_level_framing_errors_are_clean() {
    let frontend = start_frontend(Arc::new(ShieldServer::with_workers(1)));
    let addr = frontend.local_addr();

    let raw = |request: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(request).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    };

    // Truncated body: Content-Length promises more than arrives.
    let truncated = raw(
        b"POST /v1/deployments/toy/decide HTTP/1.1\r\ncontent-length: 400\r\n\r\n{\"state\": [",
    );
    assert!(truncated.starts_with("HTTP/1.1 400"), "{truncated}");
    assert!(truncated.contains("truncated_body"), "{truncated}");

    // Missing Content-Length on POST.
    let lengthless = raw(b"POST /v1/deployments/toy/decide HTTP/1.1\r\n\r\n");
    assert!(lengthless.starts_with("HTTP/1.1 411"), "{lengthless}");

    // Chunked encoding is politely refused.
    let chunked =
        raw(b"POST /v1/deployments/toy/decide HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
    assert!(chunked.starts_with("HTTP/1.1 501"), "{chunked}");

    // Garbage request line.
    let garbage = raw(b"\x01\x02\x03\r\n\r\n");
    assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

    // Declared body over the configured limit.
    let huge = raw(b"PUT /v1/deployments/toy HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n");
    assert!(huge.starts_with("HTTP/1.1 413"), "{huge}");

    frontend.shutdown();
}

#[test]
fn frontend_serves_a_shard_router() {
    // The same wire protocol over a sharded fleet: deployments land on
    // their placed shards and answer identically to a direct server.
    let router = Arc::new(ShardRouter::new(3, 1, Placement::Rendezvous));
    let frontend = start_frontend(Arc::clone(&router) as Arc<dyn ShieldBackend>);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    let names = ["alpha", "beta", "gamma", "delta"];
    for (i, name) in names.iter().enumerate() {
        let response = client
            .request(
                "PUT",
                &format!("/v1/deployments/{name}"),
                &pendulum_artifact(i as u64).to_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
    let health = client.request("GET", "/healthz", b"").unwrap();
    let h = Json::parse(&health.body).unwrap();
    let Some(Json::Arr(deployments)) = h.get("deployments") else {
        panic!("healthz without deployments: {}", health.text());
    };
    let listed: Vec<&str> = deployments
        .iter()
        .map(|d| match d.get("name") {
            Some(Json::Str(name)) => name.as_str(),
            other => panic!("deployment without name: {other:?}"),
        })
        .collect();
    assert_eq!(listed, ["alpha", "beta", "delta", "gamma"]);
    for d in deployments {
        assert_eq!(d.get("generation"), Some(&Json::U64(1)));
    }

    let states = sample_states(40, 7);
    let body = Json::Obj(vec![(
        "states".to_string(),
        Json::Arr(
            states
                .iter()
                .map(|s| Json::Arr(s.iter().map(|&v| Json::Num(v)).collect()))
                .collect(),
        ),
    )])
    .render();
    for (i, name) in names.iter().enumerate() {
        let response = client
            .request(
                "POST",
                &format!("/v1/deployments/{name}/decide"),
                body.as_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200);
        let wire_decisions = parse_decisions(&response.body);
        let direct = ShieldServer::with_workers(1);
        direct.deploy(*name, pendulum_artifact(i as u64)).unwrap();
        let direct_decisions = direct.decide_batch(name, &states).unwrap();
        for (wire, direct) in wire_decisions.iter().zip(direct_decisions.iter()) {
            for (w, d) in wire.0.iter().zip(direct.action.iter()) {
                assert_eq!(w.to_bits(), d.to_bits());
            }
        }
    }

    // Fleet telemetry adds up across shards even when served over HTTP.
    let fleet = router.aggregate_telemetry();
    assert_eq!(fleet.deployments, names.len() as u64);
    assert_eq!(fleet.requests, names.len() as u64);
    assert_eq!(fleet.decisions, (names.len() * states.len()) as u64);

    frontend.shutdown();
}

/// The distinct series names (metric name + labels stripped) in a
/// Prometheus text exposition.
fn series_names(text: &str) -> Vec<String> {
    let mut names: Vec<String> = text
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .map(|line| line.split(['{', ' ']).next().unwrap().to_string())
        .collect();
    names.sort();
    names.dedup();
    names
}

#[test]
fn metrics_scrape_serves_the_cross_layer_catalog() {
    // The golden scrape: a fresh front-end serves the complete registry —
    // synthesis, solver, and serving series — over loopback, in valid
    // Prometheus text exposition format.  The registry is process-global
    // and other tests run concurrently, so values are asserted as floors.
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("toy", pendulum_artifact(5)).unwrap();
    let frontend = start_frontend(server);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    // Drive some traffic so the serving counters are visibly nonzero.
    for _ in 0..3 {
        let response = client
            .request(
                "POST",
                "/v1/deployments/toy/decide",
                br#"{"state": [0.05, 0.0]}"#,
            )
            .unwrap();
        assert_eq!(response.status, 200);
    }

    let scrape = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(scrape.status, 200);
    assert_eq!(
        scrape.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = scrape.text().into_owned();

    // Well-formed exposition: every series has a HELP and TYPE comment.
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in the exposition");
    }
    let names = series_names(&text);
    // Histograms explode into _bucket/_sum/_count; count base families.
    let families: Vec<&String> = names
        .iter()
        .filter(|n| !n.ends_with("_bucket") && !n.ends_with("_sum") && !n.ends_with("_count"))
        .collect();
    assert!(
        families.len() >= 15,
        "expected >= 15 series families, got {}: {families:?}",
        families.len()
    );
    // The catalog spans all instrumented layers.
    for prefix in ["vrl_synth_", "vrl_solver_", "vrl_runtime_", "vrl_http_"] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix} series in {names:?}"
        );
    }
    // Specific series with guaranteed-nonzero values after the traffic
    // above (floors: other tests share the process-global registry).
    let value_of = |series: &str| -> f64 {
        text.lines()
            .find(|line| line.starts_with(series) && line.as_bytes()[series.len()] == b' ')
            .and_then(|line| line.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {series} not found"))
    };
    assert!(value_of("vrl_runtime_requests_total") >= 3.0);
    assert!(value_of("vrl_runtime_decisions_total") >= 3.0);
    assert!(value_of("vrl_runtime_decide_latency_seconds_count") >= 3.0);
    assert!(value_of("vrl_http_requests_total{status=\"200\"}") >= 3.0);
    // The pendulum fixture synthesizes nothing at serve time, so CEGIS and
    // solver series exist but may legitimately be zero here.
    assert!(text.contains("vrl_solver_bb_queries_total"));
    assert!(text.contains("vrl_synth_cegis_runs_total"));

    // The 405 guard covers the metrics path too.
    assert_error(
        &frontend,
        "POST",
        "/metrics",
        b"",
        405,
        "method_not_allowed",
    );

    frontend.shutdown();
}

#[test]
fn request_ids_echo_and_generate() {
    let frontend = start_frontend(Arc::new(ShieldServer::with_workers(1)));
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    // A client-supplied id is echoed verbatim, on successes and errors.
    let ok = client
        .request_with_headers("GET", "/healthz", b"", &[("x-request-id", "trace-me-42")])
        .unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(ok.header("x-request-id"), Some("trace-me-42"));
    let err = client
        .request_with_headers("GET", "/v1/nope", b"", &[("x-request-id", "trace-me-43")])
        .unwrap();
    assert_eq!(err.status, 404);
    assert_eq!(err.header("x-request-id"), Some("trace-me-43"));
    let json = Json::parse(&err.body).unwrap();
    assert_eq!(
        json.get("error").and_then(|e| e.get("request_id")),
        Some(&Json::Str("trace-me-43".to_string()))
    );

    // No id supplied: the server generates a req-<16 hex> one.
    let generated = client.request("GET", "/healthz", b"").unwrap();
    let id = generated.header("x-request-id").expect("generated id");
    assert!(id.starts_with("req-"), "{id}");
    assert_eq!(id.len(), 4 + 16, "{id}");
    // Distinct per request.
    let second = client.request("GET", "/healthz", b"").unwrap();
    assert_ne!(second.header("x-request-id"), Some(id));

    // Invalid ids (controls/spaces, overlong) are replaced, not reflected.
    let invalid = client
        .request_with_headers("GET", "/healthz", b"", &[("x-request-id", "has space")])
        .unwrap();
    assert!(invalid
        .header("x-request-id")
        .is_some_and(|v| v.starts_with("req-")));
    let overlong = "x".repeat(129);
    let invalid = client
        .request_with_headers("GET", "/healthz", b"", &[("x-request-id", &overlong)])
        .unwrap();
    assert!(invalid
        .header("x-request-id")
        .is_some_and(|v| v.starts_with("req-")));

    frontend.shutdown();
}

#[test]
fn span_exports_round_trip_as_json() {
    // Spans recorded during request handling drain from the global ring and
    // export as parseable JSON lines and a parseable Chrome trace.  Other
    // tests in this binary record spans concurrently, so filter to the
    // uniquely named spans created here.
    let frontend = start_frontend(Arc::new(ShieldServer::with_workers(1)));
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let ok = client
        .request_with_headers(
            "GET",
            "/healthz",
            b"",
            &[("x-request-id", "span-roundtrip-req")],
        )
        .unwrap();
    assert_eq!(ok.status, 200);
    {
        let _outer = vrl_obs::span("roundtrip.outer");
        let _inner = vrl_obs::request_span("roundtrip.inner", "span-roundtrip-req");
    }
    // The HTTP span closes on the serving thread before the response is
    // written, but give its flush a moment under load.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut records = Vec::new();
    loop {
        records.extend(vrl_obs::drain_spans());
        let have_http = records.iter().any(|r| {
            r.request_id.as_deref() == Some("span-roundtrip-req") && r.name == "http.request"
        });
        if have_http || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let ours: Vec<vrl_obs::SpanRecord> = records
        .into_iter()
        .filter(|r| {
            r.name.starts_with("roundtrip.")
                || r.request_id.as_deref() == Some("span-roundtrip-req")
        })
        .collect();
    let outer = ours.iter().find(|r| r.name == "roundtrip.outer").unwrap();
    let inner = ours.iter().find(|r| r.name == "roundtrip.inner").unwrap();
    let http = ours.iter().find(|r| r.name == "http.request").unwrap();
    assert_eq!(inner.parent, outer.id);
    assert_eq!(http.request_id.as_deref(), Some("span-roundtrip-req"));

    // JSON-lines export: every line parses and carries the span fields.
    let lines = vrl_obs::spans_to_json_lines(&ours);
    for (line, record) in lines.lines().zip(ours.iter()) {
        let json = Json::parse(line.as_bytes()).expect("span line parses");
        assert_eq!(json.get("name"), Some(&Json::Str(record.name.to_string())));
        assert_eq!(json.get("id"), Some(&Json::U64(record.id)));
        assert_eq!(json.get("dur_ns"), Some(&Json::U64(record.dur_ns)));
    }

    // Chrome trace export: a single JSON array of complete ("X") events
    // with microsecond timestamps — what Perfetto/chrome://tracing opens.
    let trace = vrl_obs::spans_to_chrome_trace(&ours);
    let Json::Arr(events) = Json::parse(trace.as_bytes()).expect("trace parses") else {
        panic!("chrome trace is not an array: {trace}");
    };
    assert_eq!(events.len(), ours.len());
    for (event, record) in events.iter().zip(ours.iter()) {
        assert_eq!(event.get("name"), Some(&Json::Str(record.name.to_string())));
        assert_eq!(event.get("ph"), Some(&Json::Str("X".to_string())));
        assert_eq!(event.get("pid"), Some(&Json::U64(1)));
        assert_eq!(event.get("tid"), Some(&Json::U64(record.thread)));
        let dur_us = event.get("dur").and_then(Json::as_f64).expect("dur");
        assert!((dur_us - record.dur_ns as f64 / 1000.0).abs() < 0.001);
        if let Some(request_id) = &record.request_id {
            assert_eq!(
                event.get("args").and_then(|a| a.get("request_id")),
                Some(&Json::Str(request_id.to_string()))
            );
        }
    }

    frontend.shutdown();
}

#[test]
fn keep_alive_and_pipelined_requests_share_a_connection() {
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("toy", pendulum_artifact(9)).unwrap();
    let frontend = start_frontend(server);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    // Many requests over one connection.
    for i in 0..20 {
        let x = (i as f64) / 100.0;
        let response = client
            .request(
                "POST",
                "/v1/deployments/toy/decide",
                format!("{{\"state\": [{x}, 0.0]}}").as_bytes(),
            )
            .unwrap();
        assert_eq!(response.status, 200);
    }
    // Two requests written back-to-back before reading either response.
    let mut stream = TcpStream::connect(frontend.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let one = b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
    let mut two = Vec::new();
    two.extend_from_slice(one);
    two.extend_from_slice(
        b"GET /v1/deployments/toy/telemetry HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
    );
    stream.write_all(&two).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out);
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    frontend.shutdown();
}

#[test]
fn delete_undeploys_over_the_wire() {
    let server = Arc::new(ShieldServer::with_workers(1));
    let frontend = start_frontend(server);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    let put = client
        .request(
            "PUT",
            "/v1/deployments/toy",
            &pendulum_artifact(11).to_bytes(),
        )
        .unwrap();
    assert_eq!(put.status, 200);

    let deleted = client
        .request("DELETE", "/v1/deployments/toy", b"")
        .unwrap();
    assert_eq!(deleted.status, 200);
    let json = Json::parse(&deleted.body).unwrap();
    assert_eq!(json.get("undeployed"), Some(&Json::Bool(true)));

    // A second DELETE and a decide against the gone deployment are both
    // structured 404s, not dropped connections.
    let again = client
        .request("DELETE", "/v1/deployments/toy", b"")
        .unwrap();
    assert_eq!(again.status, 404);
    assert!(
        again.text().contains("unknown_deployment"),
        "{}",
        again.text()
    );
    let decide = client
        .request(
            "POST",
            "/v1/deployments/toy/decide",
            br#"{"state": [0.0, 0.0]}"#,
        )
        .unwrap();
    assert_eq!(decide.status, 404);
    frontend.shutdown();
}

#[test]
fn overload_503_carries_retry_after() {
    let server = Arc::new(ShieldServer::with_workers(1));
    let config = HttpConfig {
        max_connections: 1,
        idle_timeout: Duration::from_secs(5),
        ..HttpConfig::default()
    };
    let frontend =
        HttpFrontend::bind("127.0.0.1:0", server, config).expect("loopback bind succeeds");

    // The first client occupies the only connection slot (its keep-alive
    // serving thread stays live between requests).
    let mut first = MiniClient::connect(frontend.local_addr()).unwrap();
    assert_eq!(first.request("GET", "/healthz", b"").unwrap().status, 200);

    // The second connection is shed with a structured 503 that tells the
    // client when to come back.
    let mut second = MiniClient::connect(frontend.local_addr()).unwrap();
    let shed = second.request("GET", "/healthz", b"").unwrap();
    assert_eq!(shed.status, 503);
    assert!(shed.text().contains("overloaded"), "{}", shed.text());
    let retry_after = shed
        .header("retry-after")
        .expect("overload 503 advertises retry-after");
    assert!(
        retry_after.parse::<u64>().unwrap() >= 1,
        "retry-after must be at least a second: {retry_after}"
    );
    frontend.shutdown();
}

#[test]
fn decide_codec_negotiation_matrix() {
    use vrl_runtime::frame;
    // The decide endpoint negotiates its codec per request by Content-Type.
    // Rows of the matrix (also documented in the README):
    //   (request content-type, body codec) -> (status, response codec)
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("toy", pendulum_artifact(13)).unwrap();
    let frontend = start_frontend(server.clone());
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let path = "/v1/deployments/toy/decide";
    let states = vec![vec![0.1, -0.2], vec![0.0, 0.3]];
    let json_body = vrl_runtime::wire::decide_batch_request(&states);
    let frame_body = frame::encode_decide_request(&states, true);
    let reference = server.decide_batch("toy", &states).unwrap();

    let post = |client: &mut MiniClient, content_type: Option<&str>, body: &[u8]| match content_type
    {
        Some(value) => client
            .request_with_headers("POST", path, body, &[("content-type", value)])
            .unwrap(),
        None => client.request("POST", path, body).unwrap(),
    };

    // No Content-Type, JSON content types, and unrecognized content types
    // all take the JSON codec (the debuggable default).
    for content_type in [None, Some("application/json"), Some("text/plain")] {
        let response = post(&mut client, content_type, json_body.as_bytes());
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(response.header("content-type"), Some("application/json"));
        let decisions = vrl_runtime::wire::decode_decide_response(&response.body).unwrap();
        assert_eq!(decisions, reference, "{content_type:?}");
    }
    // The frame content type takes the binary codec, with or without
    // media-type parameters, case-insensitively.
    for content_type in [
        frame::CONTENT_TYPE_FRAME,
        "application/x-vrl-frame; v=1",
        "Application/X-VRL-Frame",
    ] {
        let response = post(&mut client, Some(content_type), &frame_body);
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(
            response.header("content-type"),
            Some(frame::CONTENT_TYPE_FRAME),
            "{content_type}"
        );
        let decisions = frame::decode_decide_response(&response.body).unwrap();
        assert_eq!(decisions, reference, "{content_type}");
    }
    // A content-type merely *prefixed* by the frame type is not the frame
    // type; the JSON parser then rejects the binary body.
    let response = post(&mut client, Some("application/x-vrl-frames"), &frame_body);
    assert_eq!(response.status, 400, "{}", response.text());
    assert!(
        response.text().contains("malformed_json"),
        "{}",
        response.text()
    );
    // Mismatched codec and body: structured 400s, never a hang or a panic.
    let crossed = post(
        &mut client,
        Some(frame::CONTENT_TYPE_FRAME),
        json_body.as_bytes(),
    );
    assert_eq!(crossed.status, 400, "{}", crossed.text());
    assert!(
        crossed.text().contains("malformed_frame"),
        "{}",
        crossed.text()
    );
    let crossed = post(&mut client, Some("application/json"), &frame_body);
    assert_eq!(crossed.status, 400, "{}", crossed.text());
    assert!(
        crossed.text().contains("malformed_json"),
        "{}",
        crossed.text()
    );

    // The codec-labeled counters saw both sides of the matrix.
    let scrape = client.request("GET", "/metrics", b"").unwrap();
    let text = scrape.text().into_owned();
    let value_of = |series: &str| -> f64 {
        text.lines()
            .find(|line| line.starts_with(series))
            .and_then(|line| line.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {series} not found"))
    };
    assert!(value_of("vrl_http_decide_requests_total{codec=\"json\"}") >= 4.0);
    assert!(value_of("vrl_http_decide_requests_total{codec=\"binary\"}") >= 4.0);
    assert!(value_of("vrl_http_codec_phase_seconds_count{phase=\"decode\"}") >= 1.0);
    assert!(value_of("vrl_http_codec_phase_seconds_count{phase=\"encode\"}") >= 1.0);

    frontend.shutdown();
}

#[test]
fn mini_client_read_timeout_is_a_clean_error() {
    // A listener that accepts at the OS level (connects land in the
    // backlog) but never answers: the request must fail with a clean
    // `TimedOut` within the configured deadline, not hang.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = MiniClient::connect_with_timeouts(
        addr,
        Duration::from_secs(1),
        Duration::from_millis(200),
        Duration::from_millis(200),
    )
    .expect("connect lands in the accept backlog");
    let started = std::time::Instant::now();
    let error = client
        .request("GET", "/healthz", b"")
        .expect_err("silent peer must time out");
    assert_eq!(error.kind(), std::io::ErrorKind::TimedOut, "{error}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout must honor the configured deadline, took {:?}",
        started.elapsed()
    );
    drop(listener);
}
