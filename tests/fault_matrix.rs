//! The fault matrix: every scripted transport fault, driven through the
//! chaos proxy against a real two-replica fleet, must leave decisions
//! bit-identical to in-process serving, keep telemetry alive across
//! failover, surface breaker transitions on `/metrics`, and never let a
//! request outlive the configured deadline budget.
//!
//! Topology per scenario:
//!
//! ```text
//!   FleetRouter ──► ChaosProxy ──► HttpFrontend(primary ShieldServer)
//!        │
//!        └────────────────────────► HttpFrontend(backup ShieldServer)
//! ```
//!
//! The proxy always fronts the deployment's *primary* replica (computed
//! from the placement's rank order before wiring), so every scripted fault
//! hits the replica the fleet tries first and the failover path is the one
//! under test.  The remote client opens one connection per attempt, so the
//! `FaultPlan` scripts faults by attempt: connection 0 is the deploy,
//! connections 1.. are the decide attempts.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::fault::{ChaosProxy, Fault, FaultPlan};
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::{
    fixtures, FleetConfig, FleetRouter, Placement, RemoteShard, RemoteShardConfig, ShieldArtifact,
    ShieldServer,
};

fn pendulum_artifact(seed: u64) -> ShieldArtifact {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[32, 32],
        seed,
    )
    .expect("dimensions agree")
}

fn sample_states(count: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    let safe = env.safety().safe_box().clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| safe.sample(&mut rng)).collect()
}

fn start_shard() -> HttpFrontend {
    let config = HttpConfig {
        max_connections: 32,
        idle_timeout: Duration::from_millis(500),
        ..HttpConfig::default()
    };
    HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::new(ShieldServer::with_workers(2)),
        config,
    )
    .expect("loopback bind succeeds")
}

/// An address that refuses every connect: bind a port, then release it.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    drop(listener);
    addr
}

/// Fast deadlines so a full fault matrix runs in seconds; the breaker
/// cooldown is effectively infinite so no half-open probe sneaks into the
/// middle of a scenario.
fn fast_shard_config() -> RemoteShardConfig {
    RemoteShardConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(250),
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(60),
        ..RemoteShardConfig::default()
    }
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        replicas: 2,
        probe_interval: None,
        shard_config: fast_shard_config(),
        ..FleetConfig::default()
    }
}

const DEPLOYMENT: &str = "pendulum";

/// Shard indices `[primary, backup]` for the test deployment in a
/// two-shard fleet — fixed by the placement function, computed up front so
/// the chaos proxy can be wired in front of the primary.
fn replica_order() -> [usize; 2] {
    let ranked = Placement::Rendezvous.ranked_shards(DEPLOYMENT, 2, 2);
    [ranked[0], ranked[1]]
}

/// Builds a two-replica fleet with `primary_addr` in the primary slot and
/// `backup_addr` in the backup slot.
fn build_fleet(primary_addr: SocketAddr, backup_addr: SocketAddr) -> FleetRouter {
    let [primary, _backup] = replica_order();
    let mut addrs = [backup_addr, backup_addr];
    addrs[primary] = primary_addr;
    FleetRouter::new(&addrs, fleet_config())
}

/// The acceptance bound: a logical fleet request may spend at most one
/// full deadline budget per replica, retries and backoff included.
fn fleet_budget() -> Duration {
    fast_shard_config().deadline_budget() * 2
}

/// The reference decisions: an in-process server over the same artifact
/// bytes.
fn direct_decisions(bytes: &[u8], states: &[Vec<f64>]) -> Vec<(Vec<u64>, bool)> {
    let direct = ShieldServer::with_workers(1);
    direct
        .deploy(DEPLOYMENT, ShieldArtifact::from_bytes(bytes).unwrap())
        .unwrap();
    direct
        .decide_batch(DEPLOYMENT, states)
        .unwrap()
        .into_iter()
        .map(|d| (d.action.iter().map(|v| v.to_bits()).collect(), d.intervened))
        .collect()
}

/// Runs one fault scenario: deploy through the fleet (the proxy passes the
/// deploy), script `fault` for every decide attempt at the primary, and
/// assert the 100-state batch still comes back bit-identical to in-process
/// serving, within the deadline budget.
fn assert_fault_survived(fault: Fault) {
    let primary_shard = start_shard();
    let backup_shard = start_shard();
    // Connection 0 is the fleet deploy; every later connection (the decide
    // attempts) gets the scripted fault.
    let plan = FaultPlan::new(vec![Fault::Pass]).with_default(fault);
    let proxy = ChaosProxy::launch(primary_shard.local_addr(), plan).expect("proxy binds");
    let fleet = build_fleet(proxy.addr(), backup_shard.local_addr());

    let artifact = pendulum_artifact(17);
    let bytes = artifact.to_bytes();
    fleet
        .deploy(DEPLOYMENT, artifact)
        .expect("deploy reaches both replicas");

    let states = sample_states(100, 23);
    let start = Instant::now();
    let decisions = fleet
        .decide_batch(DEPLOYMENT, &states)
        .expect("the backup replica serves the batch");
    let elapsed = start.elapsed();
    assert!(
        elapsed <= fleet_budget(),
        "fault {fault:?}: request took {elapsed:?}, budget {:?}",
        fleet_budget()
    );

    let wire: Vec<(Vec<u64>, bool)> = decisions
        .into_iter()
        .map(|d| (d.action.iter().map(|v| v.to_bits()).collect(), d.intervened))
        .collect();
    assert_eq!(
        wire,
        direct_decisions(&bytes, &states),
        "fault {fault:?}: wire decisions diverged from in-process serving"
    );

    fleet.shutdown();
    proxy.shutdown();
    primary_shard.shutdown();
    backup_shard.shutdown();
}

#[test]
fn mid_body_disconnect_fails_over_bit_identically() {
    assert_fault_survived(Fault::DisconnectMidBody);
}

#[test]
fn immediate_disconnect_fails_over_bit_identically() {
    assert_fault_survived(Fault::Disconnect);
}

#[test]
fn delayed_response_past_deadline_fails_over_bit_identically() {
    // Delay comfortably past the 300ms read deadline; the client must time
    // out rather than wait the delay
    assert_fault_survived(Fault::Delay(Duration::from_millis(800)));
}

#[test]
fn scripted_500_fails_over_bit_identically() {
    assert_fault_survived(Fault::Status500);
}

#[test]
fn corrupt_frame_fails_over_bit_identically() {
    assert_fault_survived(Fault::Garbage);
}

#[test]
fn shard_kill_fails_over_bit_identically() {
    assert_fault_survived(Fault::Kill);
}

#[test]
fn refused_connect_fails_over_bit_identically() {
    // No proxy at all: the primary address refuses every connect, like a
    // process that is simply not there.
    let backup_shard = start_shard();
    let fleet = build_fleet(dead_addr(), backup_shard.local_addr());

    let artifact = pendulum_artifact(17);
    let bytes = artifact.to_bytes();
    // The primary rejects the deploy at the transport level; one accepting
    // replica is enough.
    fleet
        .deploy(DEPLOYMENT, artifact)
        .expect("backup accepts the deploy");

    let states = sample_states(100, 29);
    let start = Instant::now();
    let decisions = fleet
        .decide_batch(DEPLOYMENT, &states)
        .expect("backup serves");
    assert!(start.elapsed() <= fleet_budget());

    let wire: Vec<(Vec<u64>, bool)> = decisions
        .into_iter()
        .map(|d| (d.action.iter().map(|v| v.to_bits()).collect(), d.intervened))
        .collect();
    assert_eq!(wire, direct_decisions(&bytes, &states));

    fleet.shutdown();
    backup_shard.shutdown();
}

/// Reads the (label-summed) value of a counter family from a Prometheus
/// text exposition.
fn metric_total(text: &str, family: &str) -> f64 {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter(|line| line.split(['{', ' ']).next() == Some(family))
        .filter_map(|line| line.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

#[test]
fn kill_primary_telemetry_survives_and_breaker_shows_on_metrics() {
    // The full story over one fleet: traffic lands on the primary, the
    // primary dies, traffic fails over — and afterwards the fleet's
    // telemetry still counts the primary's pre-kill requests (the handoff
    // ledger) while /metrics shows the failover and breaker-open counters.
    let primary_shard = start_shard();
    let backup_shard = start_shard();
    // Connection 0: deploy.  Connections 1-3: three passed decides plus a
    // telemetry fetch... — script generously with Pass, then Kill at the
    // chosen request count, then (post-kill) connects are refused.
    let plan = FaultPlan::new(vec![
        Fault::Pass, // deploy
        Fault::Pass, // decide #1
        Fault::Pass, // decide #2
        Fault::Pass, // telemetry fetch (populates the handoff ledger)
        Fault::Kill, // decide #3, first attempt: the shard dies here
    ]);
    let proxy = ChaosProxy::launch(primary_shard.local_addr(), plan).expect("proxy binds");
    let fleet = build_fleet(proxy.addr(), backup_shard.local_addr());

    fleet
        .deploy(DEPLOYMENT, pendulum_artifact(17))
        .expect("deploy reaches both replicas");

    // Pre-kill traffic: two batches of 10 decided by the primary.
    let states = sample_states(10, 31);
    for _ in 0..2 {
        fleet
            .decide_batch(DEPLOYMENT, &states)
            .expect("primary serves");
    }
    // Fetching telemetry now caches the primary's snapshot in the ledger.
    let before = fleet.backend_telemetry(DEPLOYMENT).expect("telemetry");
    assert_eq!(before.requests, 2, "both batches metered on the primary");

    // The kill: the next decide's first attempt draws Fault::Kill, the
    // retries are refused, and the batch lands on the backup.
    let survivors = fleet.decide_batch(DEPLOYMENT, &states).expect("failover");
    assert_eq!(survivors.len(), 10);

    // Two more batches on the backup; with breaker threshold 2 the second
    // one opens the primary's breaker (first failed request counted 1).
    for _ in 0..2 {
        fleet
            .decide_batch(DEPLOYMENT, &states)
            .expect("backup serves");
    }

    // Telemetry handoff: the primary is dead, but its 2 pre-kill requests
    // still count (ledger) alongside the backup's 3 — nothing dropped to
    // zero because a process died.
    let after = fleet.backend_telemetry(DEPLOYMENT).expect("telemetry");
    assert_eq!(
        after.requests, 5,
        "2 primary requests from the ledger + 3 live backup requests"
    );
    assert_eq!(after.decisions, 50);

    // The kill left the primary marked down (live traffic skips it), so
    // its breaker sits at one failure.  Probe cycles keep knocking on the
    // dead shard — with threshold 2 the first failing probe opens the
    // breaker, which is exactly how an operator sees a dead shard on
    // /metrics between requests.
    let [primary_index, _] = replica_order();
    fleet.probe_now();
    fleet.probe_now();
    assert!(
        !fleet.shard_liveness()[primary_index],
        "dead primary stays marked down"
    );

    // The observable counters on a real /metrics scrape through a frontend
    // over this fleet.  The registry is process-global and shared with the
    // other tests in this binary, so assert floors, not exact values.
    let front = HttpFrontend::bind("127.0.0.1:0", Arc::new(fleet), HttpConfig::default())
        .expect("front binds");
    let mut client = MiniClient::connect(front.local_addr()).unwrap();
    let scrape = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(scrape.status, 200);
    let text = scrape.text().into_owned();
    assert!(
        metric_total(&text, "vrl_fleet_failovers_total") >= 1.0,
        "failover counter missing from scrape"
    );
    assert!(
        metric_total(&text, "vrl_remote_retries_total") >= 2.0,
        "retry counter missing from scrape"
    );
    let breaker_opens: f64 = text
        .lines()
        .filter(|line| {
            line.contains("vrl_remote_breaker_transitions_total") && line.contains("to=\"open\"")
        })
        .filter_map(|line| line.rsplit(' ').next()?.parse::<f64>().ok())
        .sum();
    assert!(breaker_opens >= 1.0, "breaker open transition missing");

    front.shutdown();
    proxy.shutdown();
    primary_shard.shutdown();
    backup_shard.shutdown();
}

#[test]
fn both_replicas_down_yields_structured_503_with_retry_after() {
    // Deploy against two live shards, then kill both and serve the fleet
    // over HTTP: the front-end must answer a structured 503 with a
    // Retry-After header, within the deadline budget — not hang, not panic.
    let shard_a = start_shard();
    let shard_b = start_shard();
    let fleet = build_fleet(shard_a.local_addr(), shard_b.local_addr());
    fleet
        .deploy(DEPLOYMENT, pendulum_artifact(17))
        .expect("both replicas accept");

    shard_a.shutdown();
    shard_b.shutdown();

    let front = HttpFrontend::bind("127.0.0.1:0", Arc::new(fleet), HttpConfig::default())
        .expect("front binds");
    let mut client = MiniClient::connect(front.local_addr()).unwrap();
    let body = br#"{"states":[[0.1,0.0]]}"#;
    let start = Instant::now();
    let response = client
        .request("POST", "/v1/deployments/pendulum/decide", body)
        .unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed <= fleet_budget() + Duration::from_secs(1),
        "503 took {elapsed:?}"
    );
    assert_eq!(response.status, 503, "{}", response.text());
    let retry_after = response
        .header("retry-after")
        .expect("503 carries Retry-After");
    assert!(retry_after.parse::<u64>().expect("integer seconds") >= 1);
    assert!(
        response.text().contains("\"unavailable\""),
        "structured code missing: {}",
        response.text()
    );

    front.shutdown();
}

#[test]
fn probe_rehydrates_a_shard_that_lost_its_deployments() {
    // A shard that comes back empty (restarted process, wiped state) is
    // refilled by the prober from canonical bytes — and only with what it
    // is missing, so healthy shards see no generation churn.
    let backup_shard = start_shard();
    let [primary_index, _] = replica_order();

    // Keep a handle on the primary's ShieldServer so the test can wipe it,
    // simulating a restart without rebinding the port.
    let primary_server = Arc::new(ShieldServer::with_workers(2));
    let primary_front = HttpFrontend::bind(
        "127.0.0.1:0",
        Arc::clone(&primary_server) as Arc<dyn ShieldBackend>,
        HttpConfig::default(),
    )
    .expect("primary binds");
    let primary_addr = primary_front.local_addr();

    let fleet = build_fleet(primary_addr, backup_shard.local_addr());
    fleet
        .deploy(DEPLOYMENT, pendulum_artifact(17))
        .expect("both replicas accept");

    // The "restart": the primary forgets everything it served.
    assert!(primary_server.undeploy(DEPLOYMENT));

    // One probe cycle: the shard reports no deployments, so the fleet
    // pushes the canonical bytes back.
    let liveness = fleet.probe_now();
    assert!(liveness[primary_index], "wiped primary still probes up");
    let remote = RemoteShard::with_config(primary_addr, fast_shard_config());
    let (_uptime, deployments) = remote.probe().expect("healthz");
    assert_eq!(
        deployments
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        vec![DEPLOYMENT],
        "rehydration restored the deployment"
    );

    // A second probe cycle must push nothing (no generation churn): the
    // shard already reports the deployment.
    let generation_before = remote.probe().unwrap().1[0].1;
    fleet.probe_now();
    let generation_after = remote.probe().unwrap().1[0].1;
    assert_eq!(generation_before, generation_after, "no redeploy churn");

    fleet.shutdown();
    primary_front.shutdown();
    backup_shard.shutdown();
}
