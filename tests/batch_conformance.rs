//! End-to-end batch-serving conformance sweep over every Table 1 benchmark:
//! for each of the 15 environments, build a deployable shield, check its
//! certificate's batched membership against the scalar path, and assert
//! that `decide_batch` agrees state-by-state with sequential `decide` on
//! 100 states sampled from the safe region.
//!
//! The shields here are the fixtures' ellipsoidal demo shields (sized from
//! each benchmark's safe box), not CEGIS-verified certificates: this sweep
//! proves the *batched serving plumbing* is decision-for-decision identical
//! to the scalar path on every benchmark geometry (state dimensions 2–8,
//! mixed action dimensions, obstacles), not that the invariants are
//! inductive.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::poly::BatchPoints;
use vrl_benchmarks::all_benchmarks;
use vrl_runtime::{fixtures, ShieldServer};

/// Per-benchmark shield geometry: an ellipsoid at half the safe-box
/// half-widths, and mildly stabilizing linear gains (every action pulls
/// against every state coordinate).  Parity does not depend on the gains
/// being good — only on both paths seeing the same shield.
fn shield_parameters(env: &vrl::dynamics::EnvironmentContext) -> (Vec<Vec<f64>>, Vec<f64>) {
    let safe = env.safety().safe_box();
    let radii: Vec<f64> = safe
        .lows()
        .iter()
        .zip(safe.highs().iter())
        .map(|(lo, hi)| 0.25 * (hi - lo))
        .collect();
    let gains = vec![vec![-0.5; env.state_dim()]; env.action_dim()];
    (gains, radii)
}

#[test]
fn decide_batch_agrees_with_decide_on_all_table1_benchmarks() {
    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 15, "Table 1 lists 15 benchmarks");
    for (index, spec) in benchmarks.into_iter().enumerate() {
        let name = spec.name();
        let env = spec.into_env();
        let (gains, radii) = shield_parameters(&env);
        assert!(
            radii.iter().all(|r| r.is_finite() && *r > 0.0),
            "{name}: safe box must yield positive finite radii"
        );
        // Built by hand rather than through `fixtures::demo_artifact` so
        // multi-action benchmarks get one program row per action dimension.
        let program = vrl::synth::PolicyProgram::linear(&gains, &vec![0.0; env.action_dim()]);
        let shield = vrl::shield::Shield::new(
            env.clone(),
            vec![vrl::shield::ShieldPiece::new(
                program,
                fixtures::ellipsoid_certificate(&env, &radii),
            )],
        );
        let oracle = fixtures::demo_oracle(&env, &[32, 32], 41 + index as u64);
        let artifact = vrl_runtime::ShieldArtifact::new(shield, oracle).expect("dimensions agree");

        // Certificate check: batched membership is lane-for-lane the scalar
        // membership over a spread of sampled states, and the ellipsoid
        // center is inside.
        let mut rng = SmallRng::seed_from_u64(1000 + index as u64);
        let safe = env.safety().safe_box().clone();
        let states: Vec<Vec<f64>> = (0..100).map(|_| safe.sample(&mut rng)).collect();
        let cert = artifact.shield().pieces()[0].invariant();
        assert!(cert.contains(&vec![0.0; env.state_dim()]), "{name}: center");
        let batch = BatchPoints::from_states(env.state_dim(), &states);
        let mut inside = Vec::new();
        cert.contains_batch(&batch, &mut inside);
        for (state, &flag) in states.iter().zip(inside.iter()) {
            assert_eq!(flag, cert.contains(state), "{name}: membership parity");
        }

        // Serving conformance: the batched path must agree state-by-state
        // with sequential scalar decides on the same deployment.
        let server = ShieldServer::with_workers(1);
        server.deploy(name, artifact).unwrap();
        let batched = server.decide_batch(name, &states).unwrap();
        assert_eq!(batched.len(), states.len());
        for (i, state) in states.iter().enumerate() {
            let scalar = server.decide(name, state).unwrap();
            assert_eq!(
                scalar, batched[i],
                "{name}: decide/decide_batch diverged at state {i} ({state:?})"
            );
        }
    }
}
