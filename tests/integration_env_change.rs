//! Integration tests for the Table 3 environment-change scenarios: the
//! already-trained controller is kept, and only the shield is re-synthesized
//! for the modified environment.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::ClosurePolicy;
use vrl::shield::{evaluate_shielded_system, synthesize_shield, CegisConfig};
use vrl::verify::VerificationConfig;
use vrl_benchmarks::environment_change_benchmarks;
use vrl_benchmarks::pendulum::{degrees, pendulum_env};

#[test]
fn table3_registry_lists_four_changes() {
    let variants = environment_change_benchmarks();
    assert_eq!(variants.len(), 4);
    assert!(variants.iter().all(|v| v.hidden_layers() == [1200, 900]));
}

#[test]
#[ignore = "pendulum CEGIS needs the larger distillation budget of the table3 harness; run with --ignored or use `cargo run -p vrl-bench --bin table3`"]
fn heavier_pendulum_gets_a_new_shield_without_retraining() {
    // The controller was tuned for the 1.0 kg pendulum (original 90° bounds;
    // the tighter 23° case-study specification needs the full CEGIS budget of
    // the table3 harness rather than this smoke-test budget).
    let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-12.05 * s[0] - 5.87 * s[1]]);
    let original = pendulum_env(1.0, 1.0, degrees(90.0), degrees(90.0));
    let heavier =
        pendulum_env(1.3, 1.0, degrees(90.0), degrees(90.0)).with_name("pendulum-heavier");
    let config = CegisConfig {
        verification: VerificationConfig::with_degree(4),
        // Gravity demands angle gains beyond −9.8, which the tiny smoke
        // budget of Algorithm 1 does not reliably reach: use the default one.
        distill: vrl::synth::DistillConfig::default(),
        ..CegisConfig::smoke_test()
    };
    let mut rng = SmallRng::seed_from_u64(21);
    let (original_shield, _) = synthesize_shield(&original, &oracle, &config, &mut rng)
        .expect("original pendulum is shieldable");
    let (new_shield, report) = synthesize_shield(&heavier, &oracle, &config, &mut rng)
        .expect("heavier pendulum is shieldable without retraining the oracle");
    assert!(report.pieces >= 1);
    assert!(original_shield.num_pieces() >= 1);
    // The re-synthesized shield keeps the changed system safe.
    let eval = evaluate_shielded_system(&heavier, &oracle, &new_shield, 10, 1500, &mut rng);
    assert_eq!(eval.shielded_failures, 0);
}

#[test]
fn obstacle_variant_excludes_the_blocked_lane_from_the_invariant() {
    use vrl::dynamics::BoxRegion;
    use vrl::poly::Polynomial;
    use vrl::verify::verify_program;
    let variant = vrl_benchmarks::driving::self_driving_with_obstacle()
        .into_env()
        .with_init(BoxRegion::symmetric(&[0.15, 0.05, 0.05, 0.05]));
    let program = vec![Polynomial::linear(&[-2.0, -2.5, -3.0, -1.5], 0.0)];
    let cert = verify_program(
        &variant,
        &program,
        variant.init(),
        &VerificationConfig::with_degree(2),
    )
    .expect("the steering program is certifiable around the obstacle");
    // The obstacle occupies lateral offsets in [1.2, 2.0]: excluded.
    assert!(!cert.contains(&[1.5, 0.0, 0.0, 0.0]));
    assert!(cert.contains(&[0.0, 0.0, 0.0, 0.0]));
}
