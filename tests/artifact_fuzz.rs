//! Fuzz-style robustness corpus for the artifact wire format: every
//! truncation length and a dense sweep of single-bit flips must produce a
//! clean [`ArtifactError`] — never a panic, never a silently-accepted
//! corrupt artifact — and an intact round trip must serve `decide_batch`
//! bit-identically to the original.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vrl_benchmarks::benchmark_by_name;
use vrl_runtime::{fixtures, ArtifactError, ShieldArtifact};

fn pendulum_artifact() -> ShieldArtifact {
    let env = benchmark_by_name("pendulum").expect("pendulum").into_env();
    fixtures::demo_artifact(
        &env,
        &fixtures::PENDULUM_GAINS,
        &fixtures::PENDULUM_RADII,
        &[16, 16],
        29,
    )
    .expect("dimensions agree")
}

#[test]
fn every_truncation_length_is_rejected_cleanly() {
    let bytes = pendulum_artifact().to_bytes();
    for len in 0..bytes.len() {
        let result = ShieldArtifact::from_bytes(&bytes[..len]);
        assert!(
            result.is_err(),
            "truncation to {len}/{} bytes must be rejected",
            bytes.len()
        );
    }
    // The untruncated input still parses.
    assert!(ShieldArtifact::from_bytes(&bytes).is_ok());
}

#[test]
fn single_bit_flips_are_rejected_cleanly_everywhere() {
    let bytes = pendulum_artifact().to_bytes();
    // Every byte offset, one (rotating) bit per offset: covers magic,
    // version, length, payload, and checksum regions without an 8× blowup.
    for offset in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= 1 << (offset % 8);
        let result = ShieldArtifact::from_bytes(&corrupted);
        assert!(
            result.is_err(),
            "flipping bit {} of byte {offset} must be rejected",
            offset % 8
        );
    }
}

#[test]
fn random_mutation_corpus_never_panics() {
    let bytes = pendulum_artifact().to_bytes();
    let mut rng = SmallRng::seed_from_u64(97);
    for _ in 0..500 {
        let mut corrupted = bytes.clone();
        // 1–8 random byte mutations, occasionally also a random truncation
        // or garbage extension.
        for _ in 0..rng.gen_range(1..=8usize) {
            let offset = rng.gen_range(0..corrupted.len());
            corrupted[offset] = rng.gen_range(0..=255u32) as u8;
        }
        match rng.gen_range(0..4u32) {
            0 => {
                let keep = rng.gen_range(0..=corrupted.len());
                corrupted.truncate(keep);
            }
            1 => {
                let extra = rng.gen_range(1..64usize);
                corrupted.extend((0..extra).map(|_| rng.gen_range(0..=255u32) as u8));
            }
            _ => {}
        }
        // Decoding must return (any) error or a fully valid artifact —
        // reaching this point without a panic is the property under test;
        // exercising a decision on the rare survivor proves it is usable.
        if let Ok(artifact) = ShieldArtifact::from_bytes(&corrupted) {
            let state_dim = artifact.shield().env().state_dim();
            let action_dim = artifact.shield().env().action_dim();
            let _ = artifact
                .shield()
                .decide(&vec![0.0; state_dim], &vec![0.0; action_dim]);
        }
    }
}

#[test]
fn error_variants_cover_the_corruption_classes() {
    let bytes = pendulum_artifact().to_bytes();
    // Magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ShieldArtifact::from_bytes(&bad_magic),
        Err(ArtifactError::BadMagic)
    ));
    // Version.
    let mut bad_version = bytes.clone();
    bad_version[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        ShieldArtifact::from_bytes(&bad_version),
        Err(ArtifactError::UnsupportedVersion { .. })
    ));
    // Length field.
    let mut bad_length = bytes.clone();
    bad_length[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        ShieldArtifact::from_bytes(&bad_length),
        Err(ArtifactError::Truncated { .. })
    ));
    // Payload.
    let mut bad_payload = bytes.clone();
    let mid = bytes.len() / 2;
    bad_payload[mid] ^= 0x10;
    assert!(matches!(
        ShieldArtifact::from_bytes(&bad_payload),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn round_trip_preserves_batched_decisions_bit_exactly() {
    let artifact = pendulum_artifact();
    let restored = ShieldArtifact::from_bytes(&artifact.to_bytes()).expect("round trip");
    let env = artifact.shield().env().clone();
    let mut rng = SmallRng::seed_from_u64(11);
    let safe = env.safety().safe_box().clone();
    let states: Vec<Vec<f64>> = (0..100).map(|_| safe.sample(&mut rng)).collect();
    // Serve both artifacts and compare the batched decisions end to end.
    let server = vrl_runtime::ShieldServer::with_workers(1);
    server.deploy("original", artifact).unwrap();
    server.deploy("restored", restored).unwrap();
    let original = server.decide_batch("original", &states).unwrap();
    let restored = server.decide_batch("restored", &states).unwrap();
    assert_eq!(original, restored);
    for decision in &original {
        assert!(decision.action.iter().all(|a| a.is_finite()));
    }
}
