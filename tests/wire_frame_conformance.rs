//! Tri-codec decide conformance: JSON, binary frame, and in-process
//! decisions must be bit-identical, and both wire codecs must enforce the
//! identical non-finite-state policy.
//!
//! Three layers of evidence:
//!
//! 1. A sweep over every Table 1 benchmark (state dimensions 2–8, mixed
//!    action dimensions, obstacles): the same deployment answers a batch of
//!    sampled states over the JSON codec, over the binary frame codec, and
//!    directly in-process, and all three decision lists are compared
//!    bit-for-bit (`f64::to_bits` on every action coordinate).
//! 2. The single-state (non-batched) frame shape round-trips through the
//!    same deployment and matches the scalar in-process decision.
//! 3. Non-finite parity: a binary frame can smuggle NaN/inf *bit patterns*
//!    that JSON cannot even spell, so the frame decoder must reject them
//!    with the exact status and code (`422 non_finite_state`) the serving
//!    core uses, while the JSON path keeps rejecting non-finite spellings
//!    at parse time (`400 malformed_json`).  No codec may reach the shield
//!    with a non-finite state.

use std::sync::Arc;
use std::time::Duration;
use vrl::shield::ShieldDecision;
use vrl_benchmarks::all_benchmarks;
use vrl_runtime::frame;
use vrl_runtime::http::{HttpConfig, HttpFrontend, MiniClient, ShieldBackend};
use vrl_runtime::wire::{self, Json};
use vrl_runtime::{fixtures, ShieldServer};

/// Per-benchmark shield geometry (the batch-conformance idiom): an
/// ellipsoid at half the safe-box half-widths and mildly stabilizing
/// linear gains, one program row per action dimension.
fn demo_artifact(
    env: &vrl::dynamics::EnvironmentContext,
    seed: u64,
) -> vrl_runtime::ShieldArtifact {
    let safe = env.safety().safe_box();
    let radii: Vec<f64> = safe
        .lows()
        .iter()
        .zip(safe.highs().iter())
        .map(|(lo, hi)| 0.25 * (hi - lo))
        .collect();
    let gains = vec![vec![-0.5; env.state_dim()]; env.action_dim()];
    let program = vrl::synth::PolicyProgram::linear(&gains, &vec![0.0; env.action_dim()]);
    let shield = vrl::shield::Shield::new(
        env.clone(),
        vec![vrl::shield::ShieldPiece::new(
            program,
            fixtures::ellipsoid_certificate(env, &radii),
        )],
    );
    let oracle = fixtures::demo_oracle(env, &[16, 16], seed);
    vrl_runtime::ShieldArtifact::new(shield, oracle).expect("dimensions agree")
}

fn start_frontend(backend: Arc<dyn ShieldBackend>) -> HttpFrontend {
    let config = HttpConfig {
        max_connections: 32,
        idle_timeout: Duration::from_millis(500),
        ..HttpConfig::default()
    };
    HttpFrontend::bind("127.0.0.1:0", backend, config).expect("loopback bind succeeds")
}

fn assert_decisions_bit_identical(
    name: &str,
    codec: &str,
    wire: &[ShieldDecision],
    reference: &[ShieldDecision],
) {
    assert_eq!(
        wire.len(),
        reference.len(),
        "{name}/{codec}: decision count"
    );
    for (i, (w, r)) in wire.iter().zip(reference.iter()).enumerate() {
        assert_eq!(w.intervened, r.intervened, "{name}/{codec}: lane {i}");
        assert_eq!(w.action.len(), r.action.len(), "{name}/{codec}: lane {i}");
        for (a, b) in w.action.iter().zip(r.action.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}/{codec}: lane {i} action bits diverged ({a} vs {b})"
            );
        }
    }
}

#[test]
fn decisions_bit_identical_across_json_binary_and_in_process_on_all_benchmarks() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 15, "Table 1 lists 15 benchmarks");
    let server = Arc::new(ShieldServer::with_workers(2));
    let frontend = start_frontend(Arc::clone(&server) as Arc<dyn ShieldBackend>);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    for (index, spec) in benchmarks.into_iter().enumerate() {
        let name = spec.name();
        let env = spec.into_env();
        server
            .deploy(name, demo_artifact(&env, 300 + index as u64))
            .unwrap();

        let mut rng = SmallRng::seed_from_u64(9000 + index as u64);
        let safe = env.safety().safe_box().clone();
        // Straddle the certificate boundary too, not just the interior.
        let expanded = safe.scaled_about_center(1.3);
        let states: Vec<Vec<f64>> = (0..32).map(|_| expanded.sample(&mut rng)).collect();
        let reference = server.decide_batch(name, &states).unwrap();
        let path = format!("/v1/deployments/{name}/decide");

        // JSON codec.
        let json_body = wire::decide_batch_request(&states);
        let json_response = client.request("POST", &path, json_body.as_bytes()).unwrap();
        assert_eq!(json_response.status, 200, "{}", json_response.text());
        assert_eq!(
            json_response.header("content-type"),
            Some("application/json"),
            "{name}: JSON requests get JSON responses"
        );
        let json_decisions = wire::decode_decide_response(&json_response.body).unwrap();
        assert_decisions_bit_identical(name, "json", &json_decisions, &reference);

        // Binary frame codec.
        let frame_body = frame::encode_decide_request(&states, true);
        let frame_response = client
            .request_with_headers(
                "POST",
                &path,
                &frame_body,
                &[("content-type", frame::CONTENT_TYPE_FRAME)],
            )
            .unwrap();
        assert_eq!(frame_response.status, 200, "{}", frame_response.text());
        assert_eq!(
            frame_response.header("content-type"),
            Some(frame::CONTENT_TYPE_FRAME),
            "{name}: binary requests get binary responses"
        );
        assert!(frame::response_is_batched(&frame_response.body).unwrap());
        let frame_decisions = frame::decode_decide_response(&frame_response.body).unwrap();
        assert_decisions_bit_identical(name, "binary", &frame_decisions, &reference);
    }
    frontend.shutdown();
}

#[test]
fn single_state_binary_decide_matches_the_scalar_path() {
    let env = vrl_benchmarks::benchmark_by_name("pendulum")
        .expect("pendulum")
        .into_env();
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("pendulum", demo_artifact(&env, 41)).unwrap();
    let frontend = start_frontend(Arc::clone(&server) as Arc<dyn ShieldBackend>);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();

    let state = vec![0.21, -0.38];
    let reference = server.decide("pendulum", &state).unwrap();
    let body = frame::encode_decide_request(std::slice::from_ref(&state), false);
    let mut out = Vec::new();
    let (status, binary) = client
        .post_reusing(
            "/v1/deployments/pendulum/decide",
            frame::CONTENT_TYPE_FRAME,
            &body,
            &mut out,
        )
        .unwrap();
    assert_eq!(status, 200);
    assert!(binary, "the response must mirror the request codec");
    assert!(
        !frame::response_is_batched(&out).unwrap(),
        "a non-batched request gets a non-batched response"
    );
    let decisions = frame::decode_decide_response(&out).unwrap();
    assert_eq!(decisions.len(), 1);
    assert_eq!(decisions[0].intervened, reference.intervened);
    for (a, b) in decisions[0].action.iter().zip(reference.action.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    frontend.shutdown();
}

/// Asserts a structured error envelope with the given status and code.
fn assert_error_envelope(response: &vrl_runtime::MiniResponse, status: u16, code: &str) {
    assert_eq!(response.status, status, "{}", response.text());
    assert_eq!(
        response.header("content-type"),
        Some("application/json"),
        "error envelopes are JSON on both codec paths"
    );
    let json = Json::parse(&response.body).expect("error bodies are JSON");
    let error = json.get("error").expect("structured error envelope");
    assert_eq!(error.get("status"), Some(&Json::U64(status as u64)));
    assert_eq!(error.get("code"), Some(&Json::Str(code.to_string())));
}

#[test]
fn non_finite_states_are_rejected_identically_by_both_codecs() {
    let env = vrl_benchmarks::benchmark_by_name("pendulum")
        .expect("pendulum")
        .into_env();
    let server = Arc::new(ShieldServer::with_workers(1));
    server.deploy("pendulum", demo_artifact(&env, 43)).unwrap();
    let frontend = start_frontend(Arc::clone(&server) as Arc<dyn ShieldBackend>);
    let mut client = MiniClient::connect(frontend.local_addr()).unwrap();
    let path = "/v1/deployments/pendulum/decide";

    // The serving core's policy: a non-finite state is 422
    // `non_finite_state`.  The binary frame codec can carry the raw bit
    // patterns, so the decoder must enforce the identical policy for every
    // non-finite flavor, in any lane of a batch.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -f64::NAN] {
        let states = vec![vec![0.1, 0.2], vec![bad, 0.0], vec![0.3, 0.4]];
        let body = frame::encode_decide_request(&states, true);
        let response = client
            .request_with_headers(
                "POST",
                path,
                &body,
                &[("content-type", frame::CONTENT_TYPE_FRAME)],
            )
            .unwrap();
        assert_error_envelope(&response, 422, "non_finite_state");
    }

    // JSON literally cannot spell those states: the parser rejects the
    // spellings (and numbers that overflow f64) before any state exists,
    // so the JSON side of the differential is a parse-time 400 — and the
    // shield is unreachable with a non-finite state through either codec.
    for body in [
        br#"{"state": [NaN, 0.0]}"#.as_slice(),
        br#"{"state": [Infinity, 0.0]}"#.as_slice(),
        br#"{"state": [-Infinity, 0.0]}"#.as_slice(),
        br#"{"state": [1e999, 0.0]}"#.as_slice(),
    ] {
        let response = client.request("POST", path, body).unwrap();
        assert_error_envelope(&response, 400, "malformed_json");
    }

    // A `null` hole in a state array is a schema error, not a state.
    let response = client
        .request("POST", path, br#"{"state": [null, 0.0]}"#)
        .unwrap();
    assert_error_envelope(&response, 400, "invalid_request");

    // The finite control: the same batch with the bad lane repaired is
    // served identically by both codecs.
    let states = vec![vec![0.1, 0.2], vec![0.0, 0.0], vec![0.3, 0.4]];
    let reference = server.decide_batch("pendulum", &states).unwrap();
    let json = client
        .request("POST", path, wire::decide_batch_request(&states).as_bytes())
        .unwrap();
    let binary = client
        .request_with_headers(
            "POST",
            path,
            &frame::encode_decide_request(&states, true),
            &[("content-type", frame::CONTENT_TYPE_FRAME)],
        )
        .unwrap();
    assert_decisions_bit_identical(
        "pendulum",
        "json",
        &wire::decode_decide_response(&json.body).unwrap(),
        &reference,
    );
    assert_decisions_bit_identical(
        "pendulum",
        "binary",
        &frame::decode_decide_response(&binary.body).unwrap(),
        &reference,
    );
    frontend.shutdown();
}
