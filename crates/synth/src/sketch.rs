//! Program sketches `P[θ]`: families of candidate programs with unknown
//! parameters, as in Eq. (4) of the paper.

use vrl_poly::{monomial_basis, Polynomial};

/// A program sketch: one polynomial expression per action dimension, each an
/// affine combination of a fixed monomial basis over the state variables with
/// unknown coefficients `θ`.
///
/// The default sketch used throughout the paper's evaluation is the affine
/// family of Eq. (4): `P[θ](X) = θ₁x₁ + … + θₙxₙ + θₙ₊₁`.
///
/// # Examples
///
/// ```
/// use vrl_synth::ProgramSketch;
///
/// let sketch = ProgramSketch::affine(2, 1);
/// assert_eq!(sketch.num_parameters(), 3);
/// // Parameters follow the graded monomial basis: constant, x0, x1.
/// let program = sketch.instantiate(&[0.0, -12.05, -5.87]);
/// assert_eq!(program.len(), 1);
/// assert!((program[0].eval(&[0.1, 0.0]) + 1.205).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSketch {
    state_dim: usize,
    action_dim: usize,
    basis: Vec<Vec<u32>>,
}

impl ProgramSketch {
    /// The affine sketch of Eq. (4): linear terms in every state variable plus
    /// a constant, for each action dimension.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn affine(state_dim: usize, action_dim: usize) -> Self {
        Self::polynomial(state_dim, action_dim, 1)
    }

    /// A polynomial sketch containing every monomial of total degree at most
    /// `degree` for each action dimension.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn polynomial(state_dim: usize, action_dim: usize, degree: u32) -> Self {
        assert!(
            state_dim > 0 && action_dim > 0,
            "dimensions must be positive"
        );
        ProgramSketch {
            state_dim,
            action_dim,
            basis: monomial_basis(state_dim, degree),
        }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Monomial basis shared by every action expression.
    pub fn basis(&self) -> &[Vec<u32>] {
        &self.basis
    }

    /// Number of unknown parameters `θ` (basis size × action dimension).
    pub fn num_parameters(&self) -> usize {
        self.basis.len() * self.action_dim
    }

    /// Instantiates the sketch at a concrete parameter vector, producing one
    /// action polynomial per action dimension.
    ///
    /// Parameters are laid out action-major: the first `basis.len()` values
    /// parameterize action 0, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != self.num_parameters()`.
    pub fn instantiate(&self, theta: &[f64]) -> Vec<Polynomial> {
        assert_eq!(
            theta.len(),
            self.num_parameters(),
            "parameter vector has the wrong length"
        );
        let width = self.basis.len();
        (0..self.action_dim)
            .map(|k| {
                Polynomial::from_basis(
                    self.state_dim,
                    &self.basis,
                    &theta[k * width..(k + 1) * width],
                )
            })
            .collect()
    }

    /// The zero parameter vector (Algorithm 1 initializes `θ ← 0`).
    pub fn initial_parameters(&self) -> Vec<f64> {
        vec![0.0; self.num_parameters()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn affine_sketch_matches_equation_4() {
        let sketch = ProgramSketch::affine(3, 2);
        assert_eq!(sketch.state_dim(), 3);
        assert_eq!(sketch.action_dim(), 2);
        // Basis: 1, x0, x1, x2.
        assert_eq!(sketch.basis().len(), 4);
        assert_eq!(sketch.num_parameters(), 8);
        assert_eq!(sketch.initial_parameters(), vec![0.0; 8]);
        let theta = vec![
            1.0, 2.0, 3.0, 4.0, // action 0: 1 + 2 x0 + 3 x1 + 4 x2
            0.0, -1.0, 0.0, 0.0, // action 1: -x0
        ];
        let polys = sketch.instantiate(&theta);
        assert_eq!(polys.len(), 2);
        assert!((polys[0].eval(&[1.0, 1.0, 1.0]) - 10.0).abs() < 1e-12);
        assert!((polys[1].eval(&[2.0, 0.0, 0.0]) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn polynomial_sketch_grows_with_degree() {
        let quad = ProgramSketch::polynomial(2, 1, 2);
        assert_eq!(quad.basis().len(), 6);
        assert_eq!(quad.num_parameters(), 6);
        let cubic = ProgramSketch::polynomial(2, 1, 3);
        assert!(cubic.num_parameters() > quad.num_parameters());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn instantiate_rejects_wrong_length() {
        let _ = ProgramSketch::affine(2, 1).instantiate(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_rejected() {
        let _ = ProgramSketch::affine(0, 1);
    }

    proptest! {
        #[test]
        fn prop_instantiate_is_linear_in_theta(
            t1 in proptest::collection::vec(-3.0..3.0f64, 3),
            t2 in proptest::collection::vec(-3.0..3.0f64, 3),
            x in -2.0..2.0f64, y in -2.0..2.0f64,
        ) {
            let sketch = ProgramSketch::affine(2, 1);
            let sum: Vec<f64> = t1.iter().zip(t2.iter()).map(|(a, b)| a + b).collect();
            let p1 = sketch.instantiate(&t1)[0].eval(&[x, y]);
            let p2 = sketch.instantiate(&t2)[0].eval(&[x, y]);
            let ps = sketch.instantiate(&sum)[0].eval(&[x, y]);
            prop_assert!((ps - (p1 + p2)).abs() < 1e-9);
        }
    }
}
