//! Synthesis metrics: oracle traffic and distillation runs, registered
//! in the process-wide [`vrl_obs`] registry.
//!
//! [`crate::oracle_distance`] queries the black-box oracle once per
//! scorable trajectory state — the dominant cost of Algorithm 1 — so
//! the query counter is accumulated in a local and flushed with one
//! relaxed atomic `add` per objective evaluation, never per state.
//! Instrumentation only observes values the synthesizer already
//! computed; the synthesized programs are bit-identical with the
//! registry enabled.

use std::sync::LazyLock;
use vrl_obs::{registry, Counter};

macro_rules! synth_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Lazily registered handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: LazyLock<&'static Counter> =
                LazyLock::new(|| registry().counter($metric, $help));
            *HANDLE
        }
    };
}

synth_counter!(
    oracle_queries,
    "vrl_synth_oracle_queries_total",
    "Black-box oracle actions requested by the distillation objective."
);
synth_counter!(
    distill_runs,
    "vrl_synth_distill_runs_total",
    "Algorithm 1 distillation searches started."
);

/// Forces registration of every synthesis metric so a scrape shows the
/// full series set (at zero) before any distillation has run.
pub fn install_metrics() {
    let _ = oracle_queries();
    let _ = distill_runs();
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_registers_all_series() {
        super::install_metrics();
        let text = vrl_obs::registry().render_prometheus();
        assert!(text.contains("vrl_synth_oracle_queries_total"));
        assert!(text.contains("vrl_synth_distill_runs_total"));
    }
}
