//! Deterministic policy-program synthesis (Sec. 4.1 of the paper).
//!
//! This crate provides:
//!
//! * [`PolicyProgram`] / [`GuardedPolicy`] — the guarded-branch policy
//!   program language of Fig. 5;
//! * [`ProgramSketch`] — program sketches `P[θ]` (Eq. 4) whose unknown
//!   coefficients the synthesizer fills in;
//! * [`synthesize_program`] — Algorithm 1, the random-search distillation of
//!   a black-box neural oracle into a sketch instance, with unsafe states
//!   heavily penalized.
//!
//! # Examples
//!
//! ```
//! use vrl_synth::{PolicyProgram, ProgramSketch};
//!
//! // The paper's running example program for the inverted pendulum.
//! let program = PolicyProgram::linear(&[vec![-12.05, -5.87]], &[0.0]);
//! println!("{}", program.pretty(&["eta", "omega"]));
//! let sketch = ProgramSketch::affine(2, 1);
//! assert_eq!(sketch.num_parameters(), 3);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod distill;
mod obs;
mod program;
mod sketch;

pub use distill::{
    oracle_distance, synthesize_program, DistillConfig, DistillReport, SynthesizedProgram,
};
pub use obs::install_metrics;
pub use program::{GuardedPolicy, PolicyProgram, PortableGuardedPolicy, PortableProgram};
pub use sketch::ProgramSketch;
