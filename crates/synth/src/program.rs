//! The deterministic policy-program language of Fig. 5.
//!
//! A program is a cascade of guarded branches
//! `if φ₁(X) ≤ 0: return E₁(X) else if φ₂(X) ≤ 0: return E₂(X) … else abort`,
//! where the guards `φᵢ` and branch expressions `Eᵢ` are polynomials over the
//! state variables.  Algorithm 2 produces exactly this shape: one branch per
//! `(program, invariant)` pair, with the learned inductive invariant serving
//! as the branch guard (Theorem 4.2).

use std::cell::RefCell;
use vrl_dynamics::Policy;
use vrl_poly::{BatchPoints, CompiledPolySet, CompiledPolynomial, Polynomial, PortablePolynomial};

thread_local! {
    /// Reusable guard-value buffer for the batched guard checks, so a
    /// serving-path cascade sweep allocates nothing in steady state.
    static GUARD_VALUES: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// One guarded branch of a policy program.
///
/// Branches cache compiled forms of their guard and action polynomials at
/// construction: the shield's override path (guard test + action
/// evaluation on every intervention) runs entirely on the flat kernels,
/// never touching the sparse `BTreeMap` representation.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedPolicy {
    /// Branch guard `φ(X) ≤ 0`; `None` means the branch is unconditional.
    guard: Option<Polynomial>,
    /// One action expression per action dimension.
    actions: Vec<Polynomial>,
    /// Compiled snapshot of `guard` (rebuilt by every constructor).
    compiled_guard: Option<CompiledPolynomial>,
    /// Compiled snapshot of `actions` (rebuilt by every constructor).
    compiled_actions: CompiledPolySet,
}

impl GuardedPolicy {
    /// Creates an unconditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty or the action polynomials disagree on the
    /// number of state variables.
    pub fn unconditional(actions: Vec<Polynomial>) -> Self {
        Self::new(None, actions)
    }

    /// Creates a branch taken when `guard(X) ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty or any polynomial variable counts disagree.
    pub fn guarded(guard: Polynomial, actions: Vec<Polynomial>) -> Self {
        Self::new(Some(guard), actions)
    }

    fn new(guard: Option<Polynomial>, actions: Vec<Polynomial>) -> Self {
        assert!(
            !actions.is_empty(),
            "a branch needs at least one action expression"
        );
        let nvars = actions[0].nvars();
        assert!(
            actions.iter().all(|a| a.nvars() == nvars),
            "all action expressions must share the same state variables"
        );
        if let Some(g) = &guard {
            assert_eq!(
                g.nvars(),
                nvars,
                "guard must range over the state variables"
            );
        }
        let compiled_guard = guard.as_ref().map(Polynomial::compile);
        let compiled_actions = CompiledPolySet::compile(&actions);
        GuardedPolicy {
            guard,
            actions,
            compiled_guard,
            compiled_actions,
        }
    }

    /// The branch guard, if any.
    pub fn guard(&self) -> Option<&Polynomial> {
        self.guard.as_ref()
    }

    /// The action expressions.
    pub fn actions(&self) -> &[Polynomial] {
        &self.actions
    }

    /// Returns true when this branch applies to `state`.
    pub fn applies(&self, state: &[f64]) -> bool {
        match &self.compiled_guard {
            None => true,
            Some(g) => g.eval(state) <= 0.0,
        }
    }

    /// Evaluates the branch actions at `state`.
    pub fn evaluate(&self, state: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.actions.len());
        self.evaluate_into(state, &mut out);
        out
    }

    /// Evaluates the branch actions into a caller-provided buffer,
    /// allocation-free in steady state.
    pub fn evaluate_into(&self, state: &[f64], out: &mut Vec<f64>) {
        out.resize(self.actions.len(), 0.0);
        self.compiled_actions.eval_into(state, out);
    }

    /// Batched guard check: `out[i] = self.applies(points[i])`, evaluated
    /// through the lane-parallel compiled kernels (one power-table fill per
    /// variable per lane sweep), lane-for-lane identical to the scalar
    /// [`GuardedPolicy::applies`].
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars()` differs from the branch's state dimension.
    pub fn applies_batch(&self, points: &BatchPoints, out: &mut Vec<bool>) {
        assert_eq!(
            points.nvars(),
            self.actions[0].nvars(),
            "evaluation batch has wrong dimension"
        );
        out.clear();
        match &self.compiled_guard {
            None => out.resize(points.len(), true),
            Some(g) => GUARD_VALUES.with(|cell| {
                let values = &mut *cell.borrow_mut();
                g.evaluate_batch(points, values);
                out.extend(values.iter().map(|&v| v <= 0.0));
            }),
        }
    }
}

/// A deterministic policy program: an ordered cascade of guarded branches.
///
/// # Examples
///
/// ```
/// use vrl_poly::Polynomial;
/// use vrl_synth::PolicyProgram;
///
/// // The paper's running example: P(η, ω) = −12.05·η − 5.87·ω.
/// let program = PolicyProgram::linear(&[vec![-12.05, -5.87]], &[0.0]);
/// assert_eq!(program.evaluate(&[0.1, 0.0]).unwrap().len(), 1);
/// assert_eq!(program.num_branches(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyProgram {
    state_dim: usize,
    action_dim: usize,
    branches: Vec<GuardedPolicy>,
}

impl PolicyProgram {
    /// Creates a program from an ordered list of branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty or the branches disagree on dimensions.
    pub fn from_branches(branches: Vec<GuardedPolicy>) -> Self {
        assert!(!branches.is_empty(), "a program needs at least one branch");
        let state_dim = branches[0].actions()[0].nvars();
        let action_dim = branches[0].actions().len();
        assert!(
            branches
                .iter()
                .all(|b| b.actions().len() == action_dim && b.actions()[0].nvars() == state_dim),
            "all branches must share the same state and action dimensions"
        );
        PolicyProgram {
            state_dim,
            action_dim,
            branches,
        }
    }

    /// Creates a single-branch affine program `a_k = Σ gains[k][i]·x_i + offsets[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `gains` is empty, rows have differing lengths, or
    /// `offsets.len() != gains.len()`.
    pub fn linear(gains: &[Vec<f64>], offsets: &[f64]) -> Self {
        assert!(!gains.is_empty(), "at least one gain row is required");
        assert_eq!(
            gains.len(),
            offsets.len(),
            "one offset per gain row is required"
        );
        let state_dim = gains[0].len();
        assert!(
            gains.iter().all(|g| g.len() == state_dim),
            "all gain rows must have the same length"
        );
        let actions = gains
            .iter()
            .zip(offsets.iter())
            .map(|(g, o)| Polynomial::linear(g, *o))
            .collect();
        PolicyProgram::from_branches(vec![GuardedPolicy::unconditional(actions)])
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Number of branches (the "Size" column of Table 1).
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// The branches in evaluation order.
    pub fn branches(&self) -> &[GuardedPolicy] {
        &self.branches
    }

    /// Appends a branch at the end of the cascade.
    ///
    /// # Panics
    ///
    /// Panics if the branch dimensions disagree with the program.
    pub fn push_branch(&mut self, branch: GuardedPolicy) {
        assert_eq!(
            branch.actions().len(),
            self.action_dim,
            "action dimension mismatch"
        );
        assert_eq!(
            branch.actions()[0].nvars(),
            self.state_dim,
            "state dimension mismatch"
        );
        self.branches.push(branch);
    }

    /// Evaluates the program: the first branch whose guard holds produces the
    /// action; `None` corresponds to the `abort` case of Fig. 5 (no branch
    /// applies).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.state_dim()`.
    pub fn evaluate(&self, state: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(state.len(), self.state_dim, "state dimension mismatch");
        self.branches
            .iter()
            .find(|b| b.applies(state))
            .map(|b| b.evaluate(state))
    }

    /// The action polynomials of the branch that applies at `state`, if any.
    pub fn branch_for(&self, state: &[f64]) -> Option<&GuardedPolicy> {
        self.branches.iter().find(|b| b.applies(state))
    }

    /// Batched cascade evaluation: for every lane, the action of the first
    /// branch whose guard holds (`None` is the `abort` case), with all
    /// guard checks running through the lane-parallel compiled kernels.
    ///
    /// Lane-for-lane identical to calling [`PolicyProgram::evaluate`] per
    /// state: guard values are bit-exact, so branch selection — and
    /// therefore every returned action — matches the scalar cascade.
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.state_dim()`.
    pub fn evaluate_batch(&self, points: &BatchPoints) -> Vec<Option<Vec<f64>>> {
        assert_eq!(points.nvars(), self.state_dim, "state dimension mismatch");
        let n = points.len();
        let mut chosen: Vec<Option<usize>> = vec![None; n];
        let mut undecided = n;
        let mut applies = Vec::new();
        for (b, branch) in self.branches.iter().enumerate() {
            branch.applies_batch(points, &mut applies);
            for (lane, slot) in chosen.iter_mut().enumerate() {
                if slot.is_none() && applies[lane] {
                    *slot = Some(b);
                    undecided -= 1;
                }
            }
            if undecided == 0 {
                break;
            }
        }
        let mut state = Vec::with_capacity(self.state_dim);
        chosen
            .into_iter()
            .enumerate()
            .map(|(lane, slot)| {
                slot.map(|b| {
                    points.state_into(lane, &mut state);
                    self.branches[b].evaluate(&state)
                })
            })
            .collect()
    }

    /// Pretty-prints the program in the paper's `def P(...)` style using the
    /// given state-variable names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.state_dim()`.
    pub fn pretty(&self, names: &[&str]) -> String {
        assert_eq!(
            names.len(),
            self.state_dim,
            "one name per state variable is required"
        );
        let mut out = format!("def P({}):\n", names.join(", "));
        for (i, branch) in self.branches.iter().enumerate() {
            match branch.guard() {
                None => {
                    out.push_str("    return ");
                }
                Some(g) => {
                    let keyword = if i == 0 { "if" } else { "else if" };
                    out.push_str(&format!(
                        "    {keyword} {} <= 0:\n        return ",
                        g.to_string_with_names(names)
                    ));
                }
            }
            let exprs: Vec<String> = branch
                .actions()
                .iter()
                .map(|a| a.to_string_with_names(names))
                .collect();
            out.push_str(&exprs.join(", "));
            out.push('\n');
        }
        if self.branches.iter().all(|b| b.guard().is_some()) {
            out.push_str("    else: abort\n");
        }
        out
    }
}

/// Plain-data form of a [`GuardedPolicy`] used by artifact persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableGuardedPolicy {
    /// The branch guard `φ(X) ≤ 0`, if any.
    pub guard: Option<PortablePolynomial>,
    /// One action expression per action dimension.
    pub actions: Vec<PortablePolynomial>,
}

/// Plain-data form of a [`PolicyProgram`] used by artifact persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableProgram {
    /// The branches in evaluation order.
    pub branches: Vec<PortableGuardedPolicy>,
}

impl PolicyProgram {
    /// Extracts the plain-data form of this program.
    pub fn to_portable(&self) -> PortableProgram {
        PortableProgram {
            branches: self
                .branches
                .iter()
                .map(|b| PortableGuardedPolicy {
                    guard: b.guard().map(Polynomial::to_portable),
                    actions: b.actions().iter().map(Polynomial::to_portable).collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a program from its plain-data form.
    ///
    /// # Errors
    ///
    /// Returns a message when the branch structure is inconsistent (no
    /// branches, empty actions, or mismatched dimensions).
    pub fn from_portable(portable: &PortableProgram) -> Result<PolicyProgram, String> {
        if portable.branches.is_empty() {
            return Err("a program needs at least one branch".to_string());
        }
        let mut branches = Vec::with_capacity(portable.branches.len());
        let mut dims: Option<(usize, usize)> = None;
        for branch in &portable.branches {
            if branch.actions.is_empty() {
                return Err("a branch needs at least one action expression".to_string());
            }
            let actions = branch
                .actions
                .iter()
                .map(Polynomial::from_portable)
                .collect::<Result<Vec<_>, _>>()?;
            let state_dim = actions[0].nvars();
            if actions.iter().any(|a| a.nvars() != state_dim) {
                return Err("action expressions disagree on the state dimension".to_string());
            }
            let guard = branch
                .guard
                .as_ref()
                .map(Polynomial::from_portable)
                .transpose()?;
            if let Some(g) = &guard {
                if g.nvars() != state_dim {
                    return Err(format!(
                        "guard ranges over {} variables but the actions over {}",
                        g.nvars(),
                        state_dim
                    ));
                }
            }
            match dims {
                None => dims = Some((state_dim, actions.len())),
                Some(expected) => {
                    if expected != (state_dim, actions.len()) {
                        return Err("branches disagree on state or action dimensions".to_string());
                    }
                }
            }
            branches.push(match guard {
                Some(g) => GuardedPolicy::guarded(g, actions),
                None => GuardedPolicy::unconditional(actions),
            });
        }
        Ok(PolicyProgram::from_branches(branches))
    }
}

impl Policy for PolicyProgram {
    fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Evaluates the program, returning the zero action when no branch
    /// applies (the shield layer is responsible for never reaching that case
    /// on states covered by its invariants).
    fn action(&self, state: &[f64]) -> Vec<f64> {
        self.evaluate(state)
            .unwrap_or_else(|| vec![0.0; self.action_dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle_guard(radius2: f64) -> Polynomial {
        // x² + y² − r² ≤ 0
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        &(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(radius2, 2)
    }

    #[test]
    fn linear_program_matches_paper_running_example() {
        let program = PolicyProgram::linear(&[vec![-12.05, -5.87]], &[0.0]);
        let a = program.evaluate(&[0.2, -0.1]).unwrap();
        assert!((a[0] - (-12.05 * 0.2 + 5.87 * 0.1)).abs() < 1e-12);
        assert_eq!(program.state_dim(), 2);
        assert_eq!(program.action_dim(), 1);
        assert_eq!(program.num_branches(), 1);
        assert_eq!(program.action(&[0.2, -0.1]), a);
    }

    #[test]
    fn guarded_cascade_selects_first_applicable_branch() {
        // Inside the unit circle use a weak controller, inside radius 2 a
        // strong one, otherwise abort.
        let weak = GuardedPolicy::guarded(
            circle_guard(1.0),
            vec![Polynomial::linear(&[-1.0, 0.0], 0.0)],
        );
        let strong = GuardedPolicy::guarded(
            circle_guard(4.0),
            vec![Polynomial::linear(&[-5.0, 0.0], 0.0)],
        );
        let program = PolicyProgram::from_branches(vec![weak, strong]);
        assert_eq!(program.evaluate(&[0.5, 0.0]).unwrap(), vec![-0.5]);
        assert_eq!(program.evaluate(&[1.5, 0.0]).unwrap(), vec![-7.5]);
        assert_eq!(program.evaluate(&[5.0, 0.0]), None);
        // The Policy impl falls back to zero on abort.
        assert_eq!(program.action(&[5.0, 0.0]), vec![0.0]);
        assert!(program.branch_for(&[0.5, 0.0]).unwrap().guard().is_some());
        assert!(program.branch_for(&[5.0, 0.0]).is_none());
    }

    #[test]
    fn batched_cascade_matches_scalar_evaluation() {
        let weak = GuardedPolicy::guarded(
            circle_guard(1.0),
            vec![Polynomial::linear(&[-1.0, 0.0], 0.0)],
        );
        let strong = GuardedPolicy::guarded(
            circle_guard(4.0),
            vec![Polynomial::linear(&[-5.0, 0.0], 0.0)],
        );
        let program = PolicyProgram::from_branches(vec![weak, strong]);
        // 13 states spanning both branches and the abort region: one full
        // 8-lane sweep plus a ragged tail.
        let states: Vec<Vec<f64>> = (0..13)
            .map(|i| vec![i as f64 * 0.4, (i as f64 * 0.3) - 1.5])
            .collect();
        let batch = BatchPoints::from_states(2, &states);
        let batched = program.evaluate_batch(&batch);
        assert_eq!(batched.len(), states.len());
        for (state, result) in states.iter().zip(batched.iter()) {
            assert_eq!(result, &program.evaluate(state));
        }
        // Per-branch batched guard checks agree with the scalar predicate.
        let mut applies = Vec::new();
        for branch in program.branches() {
            branch.applies_batch(&batch, &mut applies);
            for (state, &a) in states.iter().zip(applies.iter()) {
                assert_eq!(a, branch.applies(state));
            }
        }
        // Unconditional branches apply everywhere.
        let unconditional = GuardedPolicy::unconditional(vec![Polynomial::zero(2)]);
        unconditional.applies_batch(&batch, &mut applies);
        assert!(applies.iter().all(|&a| a));
        assert_eq!(applies.len(), states.len());
    }

    #[test]
    fn push_branch_extends_the_cascade() {
        let mut program = PolicyProgram::from_branches(vec![GuardedPolicy::guarded(
            circle_guard(1.0),
            vec![Polynomial::linear(&[0.39, -1.41], 0.0)],
        )]);
        assert_eq!(program.evaluate(&[3.0, 0.0]), None);
        program.push_branch(GuardedPolicy::guarded(
            circle_guard(25.0),
            vec![Polynomial::linear(&[0.88, -2.34], 0.0)],
        ));
        assert_eq!(program.num_branches(), 2);
        assert!(program.evaluate(&[3.0, 0.0]).is_some());
    }

    #[test]
    fn pretty_printer_mirrors_the_paper_style() {
        let program = PolicyProgram::from_branches(vec![
            GuardedPolicy::guarded(
                circle_guard(1.0),
                vec![Polynomial::linear(&[0.39, -1.41], 0.0)],
            ),
            GuardedPolicy::guarded(
                circle_guard(4.0),
                vec![Polynomial::linear(&[0.88, -2.34], 0.0)],
            ),
        ]);
        let text = program.pretty(&["x", "y"]);
        assert!(text.contains("def P(x, y):"));
        assert!(text.contains("if"));
        assert!(text.contains("else if"));
        assert!(text.contains("else: abort"));
        assert!(text.contains("0.39"));
        let unconditional = PolicyProgram::linear(&[vec![1.0, 2.0]], &[0.5]);
        let text2 = unconditional.pretty(&["a", "b"]);
        assert!(text2.contains("return"));
        assert!(!text2.contains("abort"));
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn evaluate_rejects_wrong_dimension() {
        let program = PolicyProgram::linear(&[vec![1.0, 2.0]], &[0.0]);
        let _ = program.evaluate(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_program_rejected() {
        let _ = PolicyProgram::from_branches(vec![]);
    }
}
