//! Algorithm 1: synthesizing a deterministic program from a neural oracle by
//! derivative-free random search.
//!
//! The synthesizer treats the neural policy `π_w` purely as a black box: it
//! rolls the *candidate program* `P_θ` out in the environment, measures how
//! closely the program's actions track the oracle's along the visited states
//! (with a large penalty on unsafe states), and performs the two-point
//! random-search update of Eq. (6):
//!
//! ```text
//! θ ← θ + α · [ d(π_w, P_{θ+νδ}, C₁) − d(π_w, P_{θ−νδ}, C₂) ] / ν · δ
//! ```

use crate::{GuardedPolicy, PolicyProgram, ProgramSketch};
use rand::Rng;
use vrl_dynamics::{BoxRegion, EnvironmentContext, Policy};
use vrl_poly::{BatchPoints, Polynomial};

/// Configuration of the Algorithm 1 random search.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillConfig {
    /// Maximum number of θ updates.
    pub iterations: usize,
    /// Number of perturbation directions averaged per update (Algorithm 1
    /// uses a single direction; more directions reduce variance).
    pub directions: usize,
    /// Exploration radius ν of the parameter perturbations.
    pub noise: f64,
    /// Learning rate α.
    pub step_size: f64,
    /// Trajectories sampled per objective evaluation.
    pub trajectories: usize,
    /// Length of each sampled trajectory.
    pub horizon: usize,
    /// The `MAX` penalty charged for every unsafe state encountered.
    pub unsafe_penalty: f64,
    /// Convergence threshold on the parameter update norm.
    pub tolerance: f64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            iterations: 150,
            directions: 4,
            noise: 0.2,
            step_size: 0.3,
            trajectories: 3,
            horizon: 300,
            unsafe_penalty: 1e4,
            tolerance: 1e-4,
        }
    }
}

impl DistillConfig {
    /// A deliberately tiny budget for unit tests and smoke runs.
    pub fn smoke_test() -> Self {
        DistillConfig {
            iterations: 40,
            directions: 3,
            noise: 0.3,
            step_size: 0.4,
            trajectories: 2,
            horizon: 150,
            ..DistillConfig::default()
        }
    }
}

/// Result of a program-synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillReport {
    /// Objective value (oracle proximity, higher is better) per iteration.
    pub history: Vec<f64>,
    /// Final objective value of the returned parameters.
    pub final_objective: f64,
    /// Iterations actually performed (may stop early on convergence).
    pub iterations_run: usize,
}

/// A synthesized candidate: the parameters, the induced action polynomials
/// and the report of the search that found them.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedProgram {
    /// The synthesized parameter vector θ.
    pub theta: Vec<f64>,
    /// One action polynomial per action dimension, `P_θ` instantiated.
    pub action_polynomials: Vec<Polynomial>,
    /// Search diagnostics.
    pub report: DistillReport,
}

impl SynthesizedProgram {
    /// Wraps the synthesized expressions into a single-branch [`PolicyProgram`].
    pub fn to_program(&self) -> PolicyProgram {
        PolicyProgram::from_branches(vec![GuardedPolicy::unconditional(
            self.action_polynomials.clone(),
        )])
    }
}

/// The oracle-proximity objective `d(π_w, P_θ, C)` of Sec. 4.1, estimated on
/// trajectories of the environment driven by the candidate program.
///
/// Larger is better; every unsafe state charges `-unsafe_penalty`.
#[allow(clippy::too_many_arguments)]
pub fn oracle_distance<O, R>(
    env: &EnvironmentContext,
    oracle: &O,
    program: &PolicyProgram,
    init_region: &BoxRegion,
    trajectories: usize,
    horizon: usize,
    unsafe_penalty: f64,
    rng: &mut R,
) -> f64
where
    O: Policy + ?Sized,
    R: Rng + ?Sized,
{
    let mut total = 0.0;
    let mut queries = 0u64;
    let mut batch = BatchPoints::new(env.state_dim());
    for _ in 0..trajectories {
        let start = init_region.sample(rng);
        let trajectory = env.rollout(program, &start, horizon, rng);
        let states = trajectory.states();
        // Evaluate the candidate program on every scorable state in one
        // lane-batched cascade sweep (bit-identical to per-state
        // `program.action`), then walk the trajectory in order so the
        // penalty/gap accumulation — and therefore the synthesized programs
        // — are unchanged.
        batch.clear();
        let scorable: Vec<bool> = states
            .iter()
            .map(|state| {
                let ok = !env.is_unsafe(state) && state.iter().all(|x| x.is_finite());
                if ok {
                    batch.push(state);
                }
                ok
            })
            .collect();
        let mut program_actions = program.evaluate_batch(&batch).into_iter();
        for (state, ok) in states.iter().zip(scorable) {
            if !ok {
                total -= unsafe_penalty;
                continue;
            }
            let action = program_actions
                .next()
                .expect("one batched action per scorable state")
                .unwrap_or_else(|| vec![0.0; program.action_dim()]);
            let program_action = env.clamp_action(&action);
            queries += 1;
            let oracle_action = env.clamp_action(&oracle.action(state));
            let gap: f64 = program_action
                .iter()
                .zip(oracle_action.iter())
                .map(|(p, o)| (p - o) * (p - o))
                .sum::<f64>()
                .sqrt();
            total -= gap;
        }
    }
    // One flush for the whole objective evaluation, not one per state.
    crate::obs::oracle_queries().add(queries);
    total
}

/// Algorithm 1: synthesizes a program from `sketch` that imitates `oracle` in
/// `env`, restricted to trajectories starting in `init_region`.
///
/// `warm_start` optionally seeds the search (Algorithm 1 starts from θ = 0).
///
/// # Panics
///
/// Panics if the sketch dimensions do not match the environment, or if the
/// configuration is degenerate (zero iterations/directions/trajectories).
pub fn synthesize_program<O, R>(
    env: &EnvironmentContext,
    oracle: &O,
    sketch: &ProgramSketch,
    init_region: &BoxRegion,
    warm_start: Option<&[f64]>,
    config: &DistillConfig,
    rng: &mut R,
) -> SynthesizedProgram
where
    O: Policy + ?Sized,
    R: Rng + ?Sized,
{
    assert_eq!(
        sketch.state_dim(),
        env.state_dim(),
        "sketch state dimension mismatch"
    );
    assert_eq!(
        sketch.action_dim(),
        env.action_dim(),
        "sketch action dimension mismatch"
    );
    assert!(
        config.iterations > 0 && config.directions > 0 && config.trajectories > 0,
        "the distillation budget must be positive"
    );
    crate::obs::distill_runs().inc();
    let _span = vrl_obs::span("synth.distill");
    let dim = sketch.num_parameters();
    let mut theta = match warm_start {
        Some(t) => {
            assert_eq!(t.len(), dim, "warm start has the wrong length");
            t.to_vec()
        }
        None => sketch.initial_parameters(),
    };
    let objective = |theta: &[f64], rng: &mut R| -> f64 {
        let program = PolicyProgram::from_branches(vec![GuardedPolicy::unconditional(
            sketch.instantiate(theta),
        )]);
        oracle_distance(
            env,
            oracle,
            &program,
            init_region,
            config.trajectories,
            config.horizon,
            config.unsafe_penalty,
            rng,
        )
    };
    let mut history = Vec::with_capacity(config.iterations);
    let mut iterations_run = 0;
    let mut best_theta = theta.clone();
    let mut best_objective = objective(&theta, rng);
    for _ in 0..config.iterations {
        iterations_run += 1;
        let mut update = vec![0.0; dim];
        for _ in 0..config.directions {
            let delta: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
            let plus: Vec<f64> = theta
                .iter()
                .zip(delta.iter())
                .map(|(t, d)| t + config.noise * d)
                .collect();
            let minus: Vec<f64> = theta
                .iter()
                .zip(delta.iter())
                .map(|(t, d)| t - config.noise * d)
                .collect();
            let d_plus = objective(&plus, rng);
            let d_minus = objective(&minus, rng);
            let advantage = (d_plus - d_minus) / config.noise;
            for (u, d) in update.iter_mut().zip(delta.iter()) {
                *u += advantage * d;
            }
        }
        // Normalize the aggregated direction so the step size is meaningful
        // regardless of the objective's scale.
        let norm: f64 = update.iter().map(|x| x * x).sum::<f64>().sqrt();
        let step_norm = if norm > 1e-12 {
            for (t, u) in theta.iter_mut().zip(update.iter()) {
                *t += config.step_size * u / norm;
            }
            config.step_size
        } else {
            0.0
        };
        let current_objective = objective(&theta, rng);
        history.push(current_objective);
        if current_objective > best_objective {
            best_objective = current_objective;
            best_theta = theta.clone();
        }
        if step_norm < config.tolerance {
            break;
        }
    }
    // Return the best parameters seen: the search is stochastic and the last
    // iterate may have wandered away from a good region.
    let theta = best_theta;
    let final_objective = objective(&theta, rng);
    let action_polynomials = sketch.instantiate(&theta);
    SynthesizedProgram {
        theta,
        action_polynomials,
        report: DistillReport {
            history,
            final_objective,
            iterations_run,
        },
    }
}

/// Samples a standard normal value via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{ClosurePolicy, LinearPolicy, PolyDynamics, SafetySpec};

    fn double_integrator_env() -> EnvironmentContext {
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap();
        EnvironmentContext::new(
            "double-integrator",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.4, 0.4]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0])),
        )
        .with_action_bounds(vec![-6.0], vec![6.0])
    }

    #[test]
    fn distillation_recovers_a_linear_oracle() {
        // The oracle is itself linear, so the affine sketch can match it and
        // the search should drive the distance close to zero.
        let env = double_integrator_env();
        let oracle = LinearPolicy::new(vec![vec![-2.0, -3.0]]);
        let sketch = ProgramSketch::affine(2, 1);
        let mut rng = SmallRng::seed_from_u64(17);
        let config = DistillConfig {
            iterations: 120,
            directions: 4,
            noise: 0.2,
            step_size: 0.3,
            trajectories: 2,
            horizon: 200,
            ..DistillConfig::default()
        };
        let result =
            synthesize_program(&env, &oracle, &sketch, env.init(), None, &config, &mut rng);
        // The synthesized program should behave like the oracle: stabilizing
        // (negative feedback gains) and safe when rolled out from S0.  Exact
        // gain recovery is not required — the objective only measures
        // behavioural proximity along visited trajectories.
        let g0 = result.action_polynomials[0].coefficient(&[1, 0]);
        let g1 = result.action_polynomials[0].coefficient(&[0, 1]);
        assert!(g0 < 0.0, "gain on position {g0} should be stabilizing");
        assert!(g1 < 0.0, "gain on velocity {g1} should be stabilizing");
        let synthesized = result.to_program();
        for _ in 0..5 {
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&synthesized, &s0, 1500, &mut rng);
            assert!(
                !t.violates(env.safety()),
                "synthesized program must stay safe from {s0:?}"
            );
        }
        // And the objective must have improved substantially over θ = 0.
        let zero_program = PolicyProgram::linear(&[vec![0.0, 0.0]], &[0.0]);
        let mut rng2 = SmallRng::seed_from_u64(18);
        let zero_distance = oracle_distance(
            &env,
            &oracle,
            &zero_program,
            env.init(),
            3,
            200,
            1e4,
            &mut rng2,
        );
        assert!(result.report.final_objective > zero_distance);
        assert!(result.report.iterations_run > 0);
        assert!(!result.report.history.is_empty());
        // The program wrapper reproduces the polynomial actions.
        let program = result.to_program();
        let s = [0.2, -0.1];
        assert!((program.action(&s)[0] - result.action_polynomials[0].eval(&s)).abs() < 1e-12);
    }

    #[test]
    fn unsafe_penalty_dominates_the_objective() {
        let env = double_integrator_env();
        let oracle = LinearPolicy::new(vec![vec![-2.0, -3.0]]);
        // A destabilizing program quickly leaves the safe box and pays MAX.
        let runaway = PolicyProgram::linear(&[vec![5.0, 5.0]], &[0.0]);
        let stabilizing = PolicyProgram::linear(&[vec![-2.0, -3.0]], &[0.0]);
        let mut rng = SmallRng::seed_from_u64(19);
        let bad = oracle_distance(&env, &oracle, &runaway, env.init(), 2, 400, 1e4, &mut rng);
        let good = oracle_distance(
            &env,
            &oracle,
            &stabilizing,
            env.init(),
            2,
            400,
            1e4,
            &mut rng,
        );
        assert!(good > bad);
        assert!(
            bad < -1e3,
            "unsafe rollouts must be heavily penalized, got {bad}"
        );
    }

    #[test]
    fn warm_start_and_restricted_region_are_honored() {
        let env = double_integrator_env();
        let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-1.5 * s[0] - 2.0 * s[1]]);
        let sketch = ProgramSketch::affine(2, 1);
        let mut rng = SmallRng::seed_from_u64(20);
        let warm = vec![-1.5, -2.0, 0.0];
        let small_region = BoxRegion::ball(&[0.1, 0.1], 0.05);
        let config = DistillConfig {
            iterations: 5,
            ..DistillConfig::smoke_test()
        };
        let result = synthesize_program(
            &env,
            &oracle,
            &sketch,
            &small_region,
            Some(&warm),
            &config,
            &mut rng,
        );
        assert_eq!(result.theta.len(), 3);
        // Starting at the oracle's own gains, the best-seen parameters must
        // remain behaviourally close to the oracle on the restricted region.
        let program = result.to_program();
        let probe = [0.1, 0.1];
        let gap = (program.action(&probe)[0] - oracle.action(&probe)[0]).abs();
        assert!(
            gap < 0.5,
            "program drifted too far from the oracle: gap {gap}"
        );
    }

    #[test]
    #[should_panic(expected = "sketch state dimension mismatch")]
    fn dimension_mismatch_is_rejected() {
        let env = double_integrator_env();
        let oracle = LinearPolicy::new(vec![vec![-1.0, -1.0]]);
        let sketch = ProgramSketch::affine(3, 1);
        let mut rng = SmallRng::seed_from_u64(21);
        let _ = synthesize_program(
            &env,
            &oracle,
            &sketch,
            env.init(),
            None,
            &DistillConfig::smoke_test(),
            &mut rng,
        );
    }
}
