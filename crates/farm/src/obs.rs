//! Farm metrics: scenario-generation and job-outcome counters plus the
//! per-job latency histogram, registered in the process-wide [`vrl_obs`]
//! registry.  Instrumentation observes, never decides — the scheduler's
//! outcomes are determined solely by the deterministic CEGIS budgets.

use std::sync::LazyLock;
use vrl_obs::{registry, Counter, CounterVec, Histogram};

/// Scenarios generated, labeled by family
/// (`pendulum`/`platoon`/`quadcopter`/`oscillator`/`duffing`/`product`).
pub(crate) fn scenarios_generated(family: &str) -> &'static Counter {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_farm_scenarios_generated",
            "family",
            "Scenarios produced by farm generation, by environment family.",
        )
    });
    HANDLE.with(family)
}

/// Completed synthesis jobs, labeled by outcome (`synthesized`,
/// `budget_exhausted`, `infeasible`, or `timed_out`).
pub(crate) fn jobs_total(outcome: &str) -> &'static Counter {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_farm_jobs_total",
            "outcome",
            "Farm synthesis jobs completed, by outcome.",
        )
    });
    HANDLE.with(outcome)
}

/// Wall-clock duration of individual farm synthesis jobs.
pub(crate) fn job_seconds() -> &'static Histogram {
    static HANDLE: LazyLock<&'static Histogram> = LazyLock::new(|| {
        registry().histogram(
            "vrl_farm_job_seconds",
            "Wall-clock duration of farm synthesis jobs.",
        )
    });
    *HANDLE
}

/// Artifacts mass-deployed to a router after a farm run.
pub(crate) fn deployments() -> &'static Counter {
    static HANDLE: LazyLock<&'static Counter> = LazyLock::new(|| {
        registry().counter(
            "vrl_farm_deployments_total",
            "Farm artifacts deployed through a shard or fleet router.",
        )
    });
    *HANDLE
}

/// Total farm jobs completed so far across every outcome — a convenience
/// for tests and serving health checks.
pub fn jobs_completed() -> u64 {
    ["synthesized", "budget_exhausted", "infeasible", "timed_out"]
        .iter()
        .map(|o| jobs_total(o).get())
        .sum()
}

/// Forces registration of every farm metric so a scrape shows the full
/// series set (at zero) before any farm has run.
pub fn install_metrics() {
    for family in [
        "pendulum",
        "platoon",
        "quadcopter",
        "oscillator",
        "duffing",
        "product",
    ] {
        let _ = scenarios_generated(family);
    }
    for outcome in ["synthesized", "budget_exhausted", "infeasible", "timed_out"] {
        let _ = jobs_total(outcome);
    }
    let _ = job_seconds();
    let _ = deployments();
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_registers_all_series() {
        super::install_metrics();
        let text = vrl_obs::registry().render_prometheus();
        for series in [
            "vrl_farm_scenarios_generated{family=\"pendulum\"}",
            "vrl_farm_scenarios_generated{family=\"product\"}",
            "vrl_farm_jobs_total{outcome=\"synthesized\"}",
            "vrl_farm_jobs_total{outcome=\"budget_exhausted\"}",
            "vrl_farm_jobs_total{outcome=\"infeasible\"}",
            "vrl_farm_jobs_total{outcome=\"timed_out\"}",
            "vrl_farm_job_seconds",
            "vrl_farm_deployments_total",
        ] {
            assert!(text.contains(series), "missing series {series}");
        }
    }
}
