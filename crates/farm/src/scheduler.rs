//! The multi-threaded CEGIS job scheduler.
//!
//! [`run_farm`] drains a scenario list through a fixed worker pool.  Each
//! job is fully deterministic: its RNG is seeded from the scenario's own
//! ID-derived seed, its budget is the deterministic CEGIS budget
//! (pieces / shrink steps / coverage samples / distillation iterations),
//! and its outcome depends only on the scenario — never on which worker
//! ran it or what ran beside it.  The report lists jobs in input order,
//! so a 1-thread run and an N-thread run of the same scenario set produce
//! byte-identical artifacts in the same order (pinned by
//! `tests/farm_scheduler.rs`).
//!
//! The only escape hatch that trades determinism for liveness is
//! [`JobConfig::timeout`]: a *wall-clock* deadline checked between jobs
//! (before start) and after a job finishes.  It defaults to `None`; when
//! set, a run under load may classify a job [`JobOutcome::TimedOut`] that
//! an idle run synthesizes.

use crate::scenario::{fnv1a64, Scenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vrl::dynamics::LinearPolicy;
use vrl::shield::{synthesize_shield, CegisConfig, CegisError, TableConfig};
use vrl_runtime::fixtures::demo_oracle;
use vrl_runtime::{FleetRouter, ServeError, ShardRouter, ShieldArtifact};

/// Per-job settings shared by every job of a farm run.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// CEGIS budgets — the deterministic limit on how hard a job tries.
    pub cegis: CegisConfig,
    /// Hidden-layer sizes of the deterministic per-scenario neural oracle
    /// packaged into each artifact.
    pub oracle_hidden: Vec<usize>,
    /// Decision-table configuration attached to successful artifacts.  The
    /// build degrades gracefully on scenarios whose dimensionality defeats
    /// a dense grid: the artifact ships without a table config and the
    /// shield serves on the exact path.
    pub table: Option<TableConfig>,
    /// Optional wall-clock deadline per job.  `None` (the default) keeps
    /// the run fully deterministic; see the module docs.
    pub timeout: Option<Duration>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            cegis: CegisConfig::smoke_test(),
            oracle_hidden: vec![16],
            table: Some(TableConfig::default()),
            timeout: None,
        }
    }
}

/// How a synthesis job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// CEGIS covered every initial state; the artifact is checkpointed.
    Synthesized {
        /// Pieces in the synthesized shield.
        pieces: usize,
        /// FNV-1a checksum of the artifact's canonical bytes.
        artifact_checksum: u64,
    },
    /// The budget ran out after at least one verified piece.
    BudgetExhausted {
        /// Pieces synthesized before giving up.
        pieces_synthesized: usize,
    },
    /// The budget ran out with no verified piece at all.
    Infeasible,
    /// The wall-clock deadline expired ([`JobConfig::timeout`] only).
    TimedOut,
}

impl JobOutcome {
    /// The metrics label for this outcome
    /// (`vrl_farm_jobs_total{outcome=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Synthesized { .. } => "synthesized",
            JobOutcome::BudgetExhausted { .. } => "budget_exhausted",
            JobOutcome::Infeasible => "infeasible",
            JobOutcome::TimedOut => "timed_out",
        }
    }
}

/// One job's result: the outcome plus the checkpointed artifact when
/// synthesis succeeded.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The scenario's canonical ID.
    pub scenario_id: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// The checkpointed artifact (present iff the outcome is
    /// [`JobOutcome::Synthesized`]).
    pub artifact: Option<ShieldArtifact>,
    /// Wall-clock duration of this job (informational; excluded from
    /// determinism comparisons).
    pub duration: Duration,
}

/// The farm run's report: per-job records in input-scenario order.
#[derive(Debug)]
pub struct FarmReport {
    /// One record per input scenario, in input order regardless of which
    /// worker finished first.
    pub records: Vec<JobRecord>,
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl FarmReport {
    /// Number of jobs that synthesized an artifact.
    pub fn synthesized(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Synthesized { .. }))
            .count()
    }

    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.records.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Mass-deploys every checkpointed artifact to a shard router under
    /// its scenario ID and returns how many were deployed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeError`]; earlier deployments stay live.
    pub fn deploy_to_router(&self, router: &ShardRouter) -> Result<usize, ServeError> {
        let mut deployed = 0;
        for record in &self.records {
            if let Some(artifact) = &record.artifact {
                router.deploy(&record.scenario_id, artifact.clone())?;
                crate::obs::deployments().inc();
                deployed += 1;
            }
        }
        Ok(deployed)
    }

    /// Mass-deploys every checkpointed artifact to a replicated fleet
    /// under its scenario ID and returns how many were deployed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeError`]; earlier deployments stay live.
    pub fn deploy_to_fleet(&self, fleet: &FleetRouter) -> Result<usize, ServeError> {
        let mut deployed = 0;
        for record in &self.records {
            if let Some(artifact) = &record.artifact {
                fleet.deploy(&record.scenario_id, artifact.clone())?;
                crate::obs::deployments().inc();
                deployed += 1;
            }
        }
        Ok(deployed)
    }
}

/// Runs one scenario's synthesis job to completion.  Deterministic in the
/// scenario alone: the RNG is seeded from the scenario seed and the
/// deadline (if any) is only consulted *after* the job finishes.
fn run_job(scenario: &Scenario, config: &JobConfig, deadline: Option<Instant>) -> JobRecord {
    let _span = vrl_obs::span("farm.job");
    let started = Instant::now();
    let mut rng = SmallRng::seed_from_u64(scenario.seed());
    let oracle = LinearPolicy::new(scenario.oracle_gains().to_vec());
    let cegis = config
        .cegis
        .clone()
        .with_invariant_degree(scenario.invariant_degree());
    let result = synthesize_shield(scenario.env(), &oracle, &cegis, &mut rng);
    let (outcome, artifact) = match result {
        Ok((shield, report)) => {
            // Package the shield with a deterministic per-scenario neural
            // oracle; attach the decision table only when it actually
            // builds, keeping the exact path otherwise (the
            // vrl_shield_decide_table_build_fallbacks_total counter
            // records each fallback).
            let oracle_nn = demo_oracle(scenario.env(), &config.oracle_hidden, scenario.seed());
            let base = ShieldArtifact::new(shield.clone(), oracle_nn)
                .expect("farm oracle is sized for the scenario environment")
                .with_label(scenario.id());
            let artifact = match &config.table {
                None => base,
                Some(tc) => match base.clone().with_table_config(tc.clone()) {
                    Ok(tabled) => tabled,
                    Err(_) => {
                        let _ = shield.with_table_or_fallback(tc);
                        base
                    }
                },
            };
            let checksum = fnv1a64(&artifact.to_bytes());
            (
                JobOutcome::Synthesized {
                    pieces: report.pieces,
                    artifact_checksum: checksum,
                },
                Some(artifact),
            )
        }
        Err(CegisError::CouldNotCoverInitialStates {
            pieces_synthesized, ..
        }) => {
            if pieces_synthesized > 0 {
                (JobOutcome::BudgetExhausted { pieces_synthesized }, None)
            } else {
                (JobOutcome::Infeasible, None)
            }
        }
    };
    let (outcome, artifact) = match deadline {
        Some(d) if Instant::now() > d => (JobOutcome::TimedOut, None),
        _ => (outcome, artifact),
    };
    crate::obs::jobs_total(outcome.label()).inc();
    let duration = started.elapsed();
    crate::obs::job_seconds().observe(duration);
    JobRecord {
        scenario_id: scenario.id().to_string(),
        outcome,
        artifact,
        duration,
    }
}

/// Runs every scenario through a pool of `threads` workers and reports
/// per-job outcomes in input order.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_farm(scenarios: &[Scenario], config: &JobConfig, threads: usize) -> FarmReport {
    assert!(threads > 0, "the farm needs at least one worker");
    let _span = vrl_obs::span("farm.run");
    let started = Instant::now();
    let deadline = config.timeout.map(|t| started + t);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobRecord>>> = scenarios.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(scenarios.len().max(1)) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(scenario) = scenarios.get(index) else {
                    break;
                };
                let record = match deadline {
                    Some(d) if Instant::now() > d => {
                        crate::obs::jobs_total("timed_out").inc();
                        JobRecord {
                            scenario_id: scenario.id().to_string(),
                            outcome: JobOutcome::TimedOut,
                            artifact: None,
                            duration: Duration::ZERO,
                        }
                    }
                    _ => run_job(scenario, config, deadline),
                };
                *slots[index].lock().expect("farm slot never poisoned") = Some(record);
            });
        }
    });
    let records = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("farm slot never poisoned")
                .expect("every scenario index was claimed by exactly one worker")
        })
        .collect();
    FarmReport {
        records,
        threads,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family;

    fn fast_config() -> JobConfig {
        let mut cegis = CegisConfig::smoke_test();
        cegis.distill.iterations = 30;
        cegis.distill.trajectories = 2;
        cegis.distill.horizon = 150;
        JobConfig {
            cegis,
            oracle_hidden: vec![8],
            table: Some(TableConfig::uniform(8)),
            timeout: None,
        }
    }

    #[test]
    fn a_quadcopter_job_synthesizes_and_checkpoints() {
        let scenario = family::quadcopter_scenario(0.3).unwrap();
        let report = run_farm(std::slice::from_ref(&scenario), &fast_config(), 1);
        assert_eq!(report.records.len(), 1);
        let record = &report.records[0];
        match &record.outcome {
            JobOutcome::Synthesized {
                pieces,
                artifact_checksum,
            } => {
                assert!(*pieces >= 1);
                let artifact = record.artifact.as_ref().expect("checkpointed");
                assert_eq!(fnv1a64(&artifact.to_bytes()), *artifact_checksum);
                assert_eq!(artifact.label(), scenario.id());
            }
            other => panic!("expected synthesis, got {other:?}"),
        }
    }

    #[test]
    fn an_expired_deadline_marks_jobs_timed_out() {
        let scenario = family::quadcopter_scenario(0.3).unwrap();
        let scenarios = vec![scenario.clone(), scenario];
        let config = JobConfig {
            timeout: Some(Duration::ZERO),
            ..fast_config()
        };
        let report = run_farm(&scenarios, &config, 2);
        // The deadline is already expired before the first job starts, so
        // every job is classified timed-out without running CEGIS.
        for record in &report.records {
            assert_eq!(record.outcome, JobOutcome::TimedOut);
            assert!(record.artifact.is_none());
        }
    }

    #[test]
    fn outcome_labels_cover_every_variant() {
        assert_eq!(
            JobOutcome::Synthesized {
                pieces: 1,
                artifact_checksum: 0
            }
            .label(),
            "synthesized"
        );
        assert_eq!(
            JobOutcome::BudgetExhausted {
                pieces_synthesized: 2
            }
            .label(),
            "budget_exhausted"
        );
        assert_eq!(JobOutcome::Infeasible.label(), "infeasible");
        assert_eq!(JobOutcome::TimedOut.label(), "timed_out");
    }
}
