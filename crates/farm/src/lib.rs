//! Scenario farm: procedural environment families, compositional product
//! systems, and a multi-threaded CEGIS job scheduler.
//!
//! The paper validates on 15 hand-written benchmarks; the farm scales the
//! workload to *hundreds* of distinct, well-formed scenarios:
//!
//! - [`family`] — parameterized families (pendulum mass × length grids,
//!   size-N platoons, quadcopter drag variants, oscillator filter-order
//!   lattices, Duffing damping variants), each lattice containing its
//!   hand-written benchmark as a point.
//! - [`mod@compose`] — product systems that combine scenarios into
//!   higher-dimensional instances: independent dynamics blocks,
//!   concatenated state/action spaces, conjoined safety sets.
//! - [`scenario`] — deterministic identity: every scenario has a
//!   canonical string ID that regenerates it bit-for-bit
//!   ([`scenario_by_id`]) and an ID-derived seed driving its synthesis
//!   job.
//! - [`scheduler`] — a worker pool that runs CEGIS over a scenario list
//!   with deterministic budgets, checkpoints successful shields as
//!   [`vrl_runtime::ShieldArtifact`]s, and mass-deploys them through
//!   [`vrl_runtime::ShardRouter`] / [`vrl_runtime::FleetRouter`].
//!
//! # Quickstart
//!
//! ```
//! use vrl_farm::{generate, run_farm, FarmConfig, JobConfig};
//! use vrl_runtime::{Placement, ShardRouter};
//!
//! let scenarios = generate(&FarmConfig::smoke());
//! assert!(scenarios.len() >= 20);
//! // Synthesize shields for the two cheapest scenarios.
//! let picked: Vec<_> = scenarios
//!     .iter()
//!     .filter(|s| s.family() == "quadcopter")
//!     .take(2)
//!     .cloned()
//!     .collect();
//! let report = run_farm(&picked, &JobConfig::default(), 2);
//! let router = ShardRouter::new(2, 1, Placement::Jump);
//! let deployed = report.deploy_to_router(&router).unwrap();
//! assert_eq!(deployed, report.synthesized());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod compose;
pub mod family;
pub mod obs;
pub mod scenario;
pub mod scheduler;

pub use compose::compose;
pub use obs::{install_metrics, jobs_completed};
pub use scenario::{fnv1a64, generate, scenario_by_id, FarmConfig, Scenario};
pub use scheduler::{run_farm, FarmReport, JobConfig, JobOutcome, JobRecord};
