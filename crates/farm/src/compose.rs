//! Compositional product systems: combine two scenarios into one whose
//! dynamics are the independent block product.
//!
//! For atoms `A` (states `nA`, actions `mA`) and `B` (`nB`, `mB`), the
//! product has state space `[s_A, s_B]` and action space `[a_A, a_B]`:
//! each block evolves under its own dynamics, initial regions and action
//! bounds concatenate, and the safety sets conjoin — the product safe box
//! is `safe_A × safe_B`, and every obstacle of `A` lifts to
//! `obstacle_A × safe_B` (and symmetrically for `B`).  The lifted unsafe
//! set is *exactly* the union of the atoms' unsafe sets: a state with
//! `s_A` inside an obstacle but `s_B` outside its safe box is already
//! unsafe via the product safe box, so restricting the lifted obstacle to
//! `safe_B` loses nothing.

use crate::scenario::Scenario;
use vrl::dynamics::{BoxRegion, Disturbance, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl::poly::Polynomial;

/// Rewrites `p` over a larger variable set: old variable `i` becomes
/// `map[i]`.  Exact — exponent vectors are permuted, coefficients are
/// untouched.
fn remap_poly(p: &Polynomial, map: &[usize], new_nvars: usize) -> Polynomial {
    Polynomial::from_terms(
        new_nvars,
        p.terms().map(|(exps, c)| {
            let mut new_exps = vec![0u32; new_nvars];
            for (i, &e) in exps.iter().enumerate() {
                if e > 0 {
                    new_exps[map[i]] = e;
                }
            }
            (new_exps, c)
        }),
    )
}

fn concat(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().chain(b.iter()).copied().collect()
}

/// Lifts a box over one atom's state space into the product space by
/// crossing it with the other atom's box on the remaining coordinates.
fn lift_box(own: &BoxRegion, other: &BoxRegion, own_first: bool) -> BoxRegion {
    let own_lows: Vec<f64> = (0..own.dim()).map(|d| own.low(d)).collect();
    let own_highs: Vec<f64> = (0..own.dim()).map(|d| own.high(d)).collect();
    let other_lows: Vec<f64> = (0..other.dim()).map(|d| other.low(d)).collect();
    let other_highs: Vec<f64> = (0..other.dim()).map(|d| other.high(d)).collect();
    if own_first {
        BoxRegion::new(
            concat(&own_lows, &other_lows),
            concat(&own_highs, &other_highs),
        )
    } else {
        BoxRegion::new(
            concat(&other_lows, &own_lows),
            concat(&other_highs, &own_highs),
        )
    }
}

/// Composes two scenarios into their product system.  The product's ID is
/// `product/<id_A>+<id_B>` and its invariant degree is the larger of the
/// two atoms'.
///
/// # Errors
///
/// Returns an error if the atoms disagree on time step or integrator, or
/// if the product fails [`Scenario::new`] validation.
pub fn compose(a: &Scenario, b: &Scenario) -> Result<Scenario, String> {
    let (ea, eb) = (a.env(), b.env());
    if ea.dt() != eb.dt() {
        return Err(format!(
            "compose({}, {}): time steps differ ({} vs {})",
            a.id(),
            b.id(),
            ea.dt(),
            eb.dt()
        ));
    }
    if ea.integrator() != eb.integrator() {
        return Err(format!(
            "compose({}, {}): integrators differ",
            a.id(),
            b.id()
        ));
    }
    let (na, ma) = (ea.state_dim(), ea.action_dim());
    let (nb, mb) = (eb.state_dim(), eb.action_dim());
    let (n, m) = (na + nb, ma + mb);

    // Atom A: state i → i, action j → n + j.
    let map_a: Vec<usize> = (0..na).chain(n..n + ma).collect();
    // Atom B: state i → na + i, action j → n + ma + j.
    let map_b: Vec<usize> = (na..n).chain(n + ma..n + m).collect();
    let derivatives: Vec<Polynomial> = ea
        .dynamics()
        .derivatives()
        .iter()
        .map(|p| remap_poly(p, &map_a, n + m))
        .chain(
            eb.dynamics()
                .derivatives()
                .iter()
                .map(|p| remap_poly(p, &map_b, n + m)),
        )
        .collect();
    let dynamics = PolyDynamics::new(n, m, derivatives)
        .map_err(|e| format!("compose({}, {}): {e}", a.id(), b.id()))?;

    let init = lift_box(ea.init(), eb.init(), true);
    let safe_a = ea.safety().safe_box();
    let safe_b = eb.safety().safe_box();
    let mut safety = SafetySpec::inside(lift_box(safe_a, safe_b, true));
    for obstacle in ea.safety().obstacles() {
        safety = safety.with_obstacle(lift_box(obstacle, safe_b, true));
    }
    for obstacle in eb.safety().obstacles() {
        safety = safety.with_obstacle(lift_box(obstacle, safe_a, false));
    }

    let id = format!(
        "product/{}+{}",
        a.id().trim_start_matches("product/"),
        b.id().trim_start_matches("product/")
    );
    let names_a = ea.variable_names();
    let names_b = eb.variable_names();
    let names: Vec<String> = names_a
        .iter()
        .map(|x| format!("l.{x}"))
        .chain(names_b.iter().map(|x| format!("r.{x}")))
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut env = EnvironmentContext::new(id.clone(), dynamics, ea.dt(), init, safety)
        .with_integrator(ea.integrator())
        .with_action_bounds(
            concat(ea.action_low(), eb.action_low()),
            concat(ea.action_high(), eb.action_high()),
        )
        .with_variable_names(&name_refs)
        .with_horizon(ea.horizon().min(eb.horizon()));
    if !ea.disturbance().is_zero() || !eb.disturbance().is_zero() {
        env = env.with_disturbance(Disturbance::new(
            concat(ea.disturbance().lower(), eb.disturbance().lower()),
            concat(ea.disturbance().upper(), eb.disturbance().upper()),
        ));
    }

    // Block-diagonal oracle: each atom's expert acts on its own block.
    let mut gains = vec![vec![0.0; n]; m];
    for (r, row) in a.oracle_gains().iter().enumerate() {
        gains[r][..na].copy_from_slice(row);
    }
    for (r, row) in b.oracle_gains().iter().enumerate() {
        gains[ma + r][na..].copy_from_slice(row);
    }

    Scenario::new(
        id,
        "product",
        env,
        gains,
        a.invariant_degree().max(b.invariant_degree()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family;
    use vrl::dynamics::{Dynamics, LinearPolicy, Policy};

    #[test]
    fn product_dynamics_are_blockwise_identical_to_the_atoms() {
        let a = family::pendulum_scenario(1.0, 1.0).unwrap();
        let b = family::duffing_scenario(0.6).unwrap();
        let p = compose(&a, &b).unwrap();
        assert_eq!(p.env().state_dim(), 4);
        assert_eq!(p.env().action_dim(), 2);

        let sa = [0.2, -0.1];
        let sb = [1.5, -0.5];
        let ua = [3.0];
        let ub = [0.25];
        let da = a.env().dynamics().derivative(&sa, &ua);
        let db = b.env().dynamics().derivative(&sb, &ub);
        let dp = p
            .env()
            .dynamics()
            .derivative(&[0.2, -0.1, 1.5, -0.5], &[3.0, 0.25]);
        // Bit-identical, not just close: remapping only permutes exponents.
        assert_eq!(&dp[..2], &da[..]);
        assert_eq!(&dp[2..], &db[..]);
    }

    #[test]
    fn product_safety_is_the_conjunction() {
        let a = family::pendulum_scenario(1.0, 1.0).unwrap();
        let b = family::duffing_scenario(0.6).unwrap();
        let p = compose(&a, &b).unwrap();
        // Safe in both atoms → safe in the product.
        assert!(p.env().safety().is_safe(&[0.1, 0.1, 1.0, 1.0]));
        // Unsafe pendulum angle → unsafe product, regardless of the B block.
        assert!(!p.env().safety().is_safe(&[0.5, 0.0, 0.0, 0.0]));
        // Unsafe duffing block → unsafe product.
        assert!(!p.env().safety().is_safe(&[0.0, 0.0, 5.5, 0.0]));
    }

    #[test]
    fn block_oracle_matches_the_atom_oracles() {
        let a = family::platoon_scenario(2).unwrap();
        let b = family::quadcopter_scenario(0.3).unwrap();
        let p = compose(&a, &b).unwrap();
        let oracle = LinearPolicy::new(p.oracle_gains().to_vec());
        let state = [0.1, -0.2, 0.3, -0.4, 0.25, -0.5];
        let action = oracle.action(&state);
        let oa = LinearPolicy::new(a.oracle_gains().to_vec()).action(&state[..4]);
        let ob = LinearPolicy::new(b.oracle_gains().to_vec()).action(&state[4..]);
        assert_eq!(&action[..2], &oa[..]);
        assert_eq!(&action[2..], &ob[..]);
    }

    #[test]
    fn nested_products_flatten_their_ids() {
        let a = family::pendulum_scenario(1.0, 1.0).unwrap();
        let b = family::quadcopter_scenario(0.3).unwrap();
        let c = family::duffing_scenario(0.6).unwrap();
        let p = compose(&compose(&a, &b).unwrap(), &c).unwrap();
        assert_eq!(
            p.id(),
            "product/pendulum/m1.000-l1.000+quadcopter/d0.300+duffing/c0.600"
        );
        assert_eq!(p.env().state_dim(), 6);
        // The flattened ID regenerates the same product.
        let again = crate::scenario_by_id(p.id()).unwrap();
        assert_eq!(
            again.env().dynamics().derivatives(),
            p.env().dynamics().derivatives()
        );
    }

    #[test]
    fn disturbance_lifts_into_the_product() {
        let a = family::quadcopter_scenario(0.3).unwrap(); // has disturbance
        let b = family::duffing_scenario(0.6).unwrap(); // none
        let p = compose(&a, &b).unwrap();
        assert!(!p.env().disturbance().is_zero());
        assert_eq!(p.env().disturbance().upper(), &[0.0, 0.05, 0.0, 0.0]);
    }
}
