//! Parameterized environment families.
//!
//! Each family is a constructor from a small parameter vector to a
//! [`Scenario`], plus a grid generator.  Every float parameter is rounded
//! to three decimals *before* the environment is built, and the canonical
//! ID prints exactly those three decimals — so parsing an ID back
//! ([`crate::scenario_by_id`]) recovers the identical `f64` and therefore
//! the bit-identical environment.

use crate::scenario::Scenario;
use vrl::dynamics::{BoxRegion, Disturbance, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl::poly::Polynomial;
use vrl_benchmarks::pendulum::{degrees, pendulum_env};
use vrl_benchmarks::platoon::platoon_env;

/// `n` grid points from `lo` to `hi` inclusive, each rounded to three
/// decimals (the rounding that the canonical scenario IDs print).
pub fn linspace3(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let round3 = |v: f64| (v * 1000.0).round() / 1000.0;
    match n {
        0 => Vec::new(),
        1 => vec![round3(lo)],
        _ => (0..n)
            .map(|i| round3(lo + (hi - lo) * i as f64 / (n - 1) as f64))
            .collect(),
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Pendulum with the Sec. 5 safety bounds at an arbitrary mass/length grid
/// point.  The oracle is an inertia-scaled PD law: `a = m·l²·(−(g/l + 2.5)·η
/// − 3.5·ω)` cancels the gravity torque and leaves uniformly damped
/// closed-loop dynamics across the whole grid.
///
/// # Errors
///
/// Returns the well-formedness violation if the parameters produce a
/// degenerate scenario (e.g. non-positive mass or length after rounding).
pub fn pendulum_scenario(mass: f64, length: f64) -> Result<Scenario, String> {
    let (mass, length) = (round3(mass), round3(length));
    if mass <= 0.0 || length <= 0.0 {
        return Err(format!(
            "pendulum: non-positive mass/length {mass}/{length}"
        ));
    }
    let id = format!("pendulum/m{mass:.3}-l{length:.3}");
    let env = pendulum_env(mass, length, degrees(23.0), degrees(90.0)).with_name(id.clone());
    let inertia = mass * length * length;
    let g_over_l = 9.8 / length;
    let gains = vec![vec![-(g_over_l + 2.5) * inertia, -3.5 * inertia]];
    Scenario::new(id, "pendulum", env, gains, 4)
}

/// Size-`n` vehicle platoon (2n states, n actions) with the per-car PD
/// oracle `a_i = −2·e_i − 2.5·v_i`.
///
/// # Errors
///
/// Returns an error for `n == 0`.
pub fn platoon_scenario(n: usize) -> Result<Scenario, String> {
    if n == 0 {
        return Err("platoon: need at least one car".to_string());
    }
    let id = format!("platoon/n{n}");
    let env = platoon_env(n).with_name(id.clone());
    let mut gains = vec![vec![0.0; 2 * n]; n];
    for (i, row) in gains.iter_mut().enumerate() {
        row[2 * i] = -2.0;
        row[2 * i + 1] = -2.5;
    }
    Scenario::new(id, "platoon", env, gains, 2)
}

/// Quadcopter altitude hold with a variable drag coefficient:
/// `ḣ = v`, `v̇ = −drag·v + a`, disturbance `[0, 0.05]` on the velocity,
/// safe box `h ∈ ±1.0`, `v ∈ ±1.5`.  Oracle: PD gains `[−3.0, −2.5]`.
///
/// # Errors
///
/// Returns an error for a non-positive drag coefficient after rounding.
pub fn quadcopter_scenario(drag: f64) -> Result<Scenario, String> {
    let drag = round3(drag);
    if drag <= 0.0 {
        return Err(format!("quadcopter: non-positive drag {drag}"));
    }
    let id = format!("quadcopter/d{drag:.3}");
    let h_dot = Polynomial::variable(1, 3);
    let v_dot = &Polynomial::variable(1, 3).scaled(-drag) + &Polynomial::variable(2, 3);
    let dynamics =
        PolyDynamics::new(2, 1, vec![h_dot, v_dot]).map_err(|e| format!("quadcopter: {e}"))?;
    let env = EnvironmentContext::new(
        id.clone(),
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.4, 0.4]),
        SafetySpec::inside(BoxRegion::symmetric(&[1.0, 1.5])),
    )
    .with_action_bounds(vec![-8.0], vec![8.0])
    .with_disturbance(Disturbance::new(vec![0.0, 0.0], vec![0.0, 0.05]))
    .with_variable_names(&["h", "v"]);
    Scenario::new(id, "quadcopter", env, vec![vec![-3.0, -2.5]], 2)
}

/// Oscillator driving a `k`-stage low-pass filter chain (`2 + k` states):
/// the benchmark's 18-D system is the `k = 16` lattice point.  The filter
/// output (last stage) is bounded by ±0.9, all other states by ±3.  Oracle:
/// the damping gains `[−1.0, −1.5, 0, …]`.
///
/// # Errors
///
/// Returns an error for `order == 0`.
pub fn oscillator_scenario(order: usize) -> Result<Scenario, String> {
    if order == 0 {
        return Err("oscillator: need at least one filter stage".to_string());
    }
    let id = format!("oscillator/k{order}");
    let n = 2 + order;
    let kappa = 5.0;
    let mut a = vec![vec![0.0; n]; n];
    a[0][1] = 1.0;
    a[1][0] = -1.0;
    a[1][1] = -0.1;
    a[2][0] = kappa;
    a[2][2] = -kappa;
    for i in 3..n {
        a[i][i - 1] = kappa;
        a[i][i] = -kappa;
    }
    let mut b = vec![vec![0.0]; n];
    b[1][0] = 1.0;
    let dynamics = PolyDynamics::linear(&a, &b, None);
    let mut init = vec![0.1; n];
    init[0] = 1.0;
    init[1] = 1.0;
    let mut safe = vec![3.0; n];
    safe[n - 1] = 0.9;
    let names: Vec<String> = ["x1", "x2"]
        .into_iter()
        .map(str::to_string)
        .chain((1..=order).map(|i| format!("f{i}")))
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let env = EnvironmentContext::new(
        id.clone(),
        dynamics,
        0.01,
        BoxRegion::symmetric(&init),
        SafetySpec::inside(BoxRegion::symmetric(&safe)),
    )
    .with_action_bounds(vec![-10.0], vec![10.0])
    .with_variable_names(&name_refs)
    .with_steady(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.1));
    let mut gains = vec![0.0; n];
    gains[0] = -1.0;
    gains[1] = -1.5;
    Scenario::new(id, "oscillator", env, vec![gains], 2)
}

/// Duffing oscillator with a variable damping coefficient:
/// `ẋ = y`, `ẏ = −c·y − x − x³ + a`; the Example 4.3 system is `c = 0.6`.
/// Oracle: the Fig. 6 CEGIS expert `a = 0.6·x − 2.2·y`.
///
/// # Errors
///
/// Returns an error for a non-positive damping coefficient after rounding.
pub fn duffing_scenario(damping: f64) -> Result<Scenario, String> {
    let damping = round3(damping);
    if damping <= 0.0 {
        return Err(format!("duffing: non-positive damping {damping}"));
    }
    let id = format!("duffing/c{damping:.3}");
    let x = Polynomial::variable(0, 3);
    let y = Polynomial::variable(1, 3);
    let a = Polynomial::variable(2, 3);
    let y_dot = &(&(&y.scaled(-damping) - &x) - &x.pow(3)) + &a;
    let dynamics =
        PolyDynamics::new(2, 1, vec![y.clone(), y_dot]).map_err(|e| format!("duffing: {e}"))?;
    let env = EnvironmentContext::new(
        id.clone(),
        dynamics,
        0.01,
        BoxRegion::new(vec![-2.5, -2.0], vec![2.5, 2.0]),
        SafetySpec::inside(BoxRegion::symmetric(&[5.0, 5.0])),
    )
    .with_action_bounds(vec![-25.0], vec![25.0])
    .with_variable_names(&["x", "y"]);
    Scenario::new(id, "duffing", env, vec![vec![0.6, -2.2]], 4)
}

/// The full pendulum mass × length grid.
pub fn pendulum_grid(masses: &[f64], lengths: &[f64]) -> Vec<Scenario> {
    masses
        .iter()
        .flat_map(|&m| lengths.iter().map(move |&l| (m, l)))
        .map(|(m, l)| pendulum_scenario(m, l).expect("pendulum grid point is well formed"))
        .collect()
}

/// Platoons of every size `1..=max_n`.
pub fn platoon_sizes(max_n: usize) -> Vec<Scenario> {
    (1..=max_n)
        .map(|n| platoon_scenario(n).expect("platoon size is well formed"))
        .collect()
}

/// Quadcopters over a drag-coefficient grid.
pub fn quadcopter_drags(drags: &[f64]) -> Vec<Scenario> {
    drags
        .iter()
        .map(|&d| quadcopter_scenario(d).expect("quadcopter drag point is well formed"))
        .collect()
}

/// Oscillator lattices of every filter order `1..=max_order`.
pub fn oscillator_orders(max_order: usize) -> Vec<Scenario> {
    (1..=max_order)
        .map(|k| oscillator_scenario(k).expect("oscillator order is well formed"))
        .collect()
}

/// Duffing oscillators over a damping grid.
pub fn duffing_dampings(dampings: &[f64]) -> Vec<Scenario> {
    dampings
        .iter()
        .map(|&c| duffing_scenario(c).expect("duffing damping point is well formed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_lattice_points_match_the_hand_written_envs() {
        // pendulum/m1.000-l1.000 must be the Sec. 5 case-study pendulum.
        let s = pendulum_scenario(1.0, 1.0).unwrap();
        let reference = pendulum_env(1.0, 1.0, degrees(23.0), degrees(90.0));
        assert_eq!(
            s.env().dynamics().derivatives(),
            reference.dynamics().derivatives()
        );
        // oscillator/k16 must be the 18-D Table 1 benchmark.
        let s = oscillator_scenario(16).unwrap();
        let reference = vrl_benchmarks::oscillator::oscillator_env();
        assert_eq!(s.env().state_dim(), 18);
        assert_eq!(
            s.env().dynamics().derivatives(),
            reference.dynamics().derivatives()
        );
        // duffing/c0.600 must be the Example 4.3 system.
        let s = duffing_scenario(0.6).unwrap();
        let reference = vrl_benchmarks::duffing::duffing_env();
        assert_eq!(
            s.env().dynamics().derivatives(),
            reference.dynamics().derivatives()
        );
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(pendulum_scenario(0.0, 1.0).is_err());
        assert!(pendulum_scenario(1.0, -0.5).is_err());
        assert!(platoon_scenario(0).is_err());
        assert!(quadcopter_scenario(0.0001).is_err()); // rounds to 0.000
        assert!(oscillator_scenario(0).is_err());
        assert!(duffing_scenario(-1.0).is_err());
    }

    #[test]
    fn linspace3_is_inclusive_and_rounded() {
        let g = linspace3(0.6, 1.6, 6);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], 0.6);
        assert_eq!(g[5], 1.6);
        for v in &g {
            assert_eq!(*v, (*v * 1000.0).round() / 1000.0);
        }
        assert_eq!(linspace3(2.0, 9.0, 1), vec![2.0]);
        assert!(linspace3(0.0, 1.0, 0).is_empty());
    }
}
