//! Scenario identity and deterministic farm generation.
//!
//! A [`Scenario`] is a complete synthesis job description: an environment,
//! a linear expert oracle to distill from, and an invariant degree.  Every
//! scenario carries a canonical string ID from which the *entire* scenario
//! can be regenerated bit-for-bit ([`scenario_by_id`]), plus a
//! deterministic per-scenario seed (FNV-1a over the ID) that drives every
//! random choice its synthesis job makes.  The farm seed only selects
//! *which* scenarios are generated (the sampled compositional products);
//! it never changes the content of any scenario.

use crate::compose::compose;
use crate::family;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use vrl::dynamics::EnvironmentContext;

/// FNV-1a over `bytes`: the farm's canonical deterministic hash, used for
/// per-scenario seeds and artifact checksums.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A generated synthesis scenario: an environment plus everything a CEGIS
/// job needs to run on it deterministically.
#[derive(Debug, Clone)]
pub struct Scenario {
    id: String,
    family: String,
    env: EnvironmentContext,
    oracle_gains: Vec<Vec<f64>>,
    invariant_degree: u32,
    seed: u64,
}

impl Scenario {
    /// Builds and validates a scenario.  The seed is derived from the ID
    /// (FNV-1a), so equal IDs always mean equal seeds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first well-formedness violation:
    /// inconsistent dimensions between dynamics, oracle gains, initial
    /// region, and safety specification; non-finite dynamics coefficients
    /// or gains; or an empty/degenerate safe box.
    pub fn new(
        id: impl Into<String>,
        family: impl Into<String>,
        env: EnvironmentContext,
        oracle_gains: Vec<Vec<f64>>,
        invariant_degree: u32,
    ) -> Result<Self, String> {
        let id = id.into();
        let family = family.into();
        let n = env.state_dim();
        let m = env.action_dim();
        if oracle_gains.len() != m {
            return Err(format!(
                "{id}: oracle has {} gain rows but the action space has {m} dimensions",
                oracle_gains.len()
            ));
        }
        for (r, row) in oracle_gains.iter().enumerate() {
            if row.len() != n {
                return Err(format!(
                    "{id}: oracle gain row {r} has {} entries but the state space has {n}",
                    row.len()
                ));
            }
            if row.iter().any(|g| !g.is_finite()) {
                return Err(format!("{id}: oracle gain row {r} has a non-finite entry"));
            }
        }
        for (i, p) in env.dynamics().derivatives().iter().enumerate() {
            if p.terms().any(|(_, c)| !c.is_finite()) {
                return Err(format!(
                    "{id}: dynamics component {i} has a non-finite coefficient"
                ));
            }
        }
        if env.init().dim() != n || env.safety().dim() != n {
            return Err(format!(
                "{id}: region dimensions disagree with the dynamics"
            ));
        }
        let safe = env.safety().safe_box();
        for d in 0..n {
            let (lo, hi) = (safe.low(d), safe.high(d));
            if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                return Err(format!(
                    "{id}: safe box is empty or unbounded in dimension {d} ([{lo}, {hi}])"
                ));
            }
        }
        // Initial region ⊆ safe region, checked per dimension rather than by
        // corner enumeration (2^n corners is prohibitive for products).
        let init = env.init();
        for d in 0..n {
            if init.low(d) < safe.low(d) || init.high(d) > safe.high(d) {
                return Err(format!(
                    "{id}: initial region leaves the safe box in dimension {d}"
                ));
            }
        }
        for (k, obstacle) in env.safety().obstacles().iter().enumerate() {
            let intersects =
                (0..n).all(|d| init.low(d) <= obstacle.high(d) && obstacle.low(d) <= init.high(d));
            if intersects {
                return Err(format!("{id}: initial region intersects obstacle {k}"));
            }
        }
        if invariant_degree < 2 {
            return Err(format!("{id}: invariant degree must be at least 2"));
        }
        let seed = fnv1a64(id.as_bytes());
        Ok(Scenario {
            id,
            family,
            env,
            oracle_gains,
            invariant_degree,
            seed,
        })
    }

    /// Canonical scenario ID; [`scenario_by_id`] regenerates the identical
    /// scenario from it.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Family key (`pendulum`, `platoon`, `quadcopter`, `oscillator`,
    /// `duffing`, or `product`).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The environment the job synthesizes a shield for.
    pub fn env(&self) -> &EnvironmentContext {
        &self.env
    }

    /// Linear expert-oracle gains (one row per action dimension) the CEGIS
    /// job distills from.
    pub fn oracle_gains(&self) -> &[Vec<f64>] {
        &self.oracle_gains
    }

    /// Invariant degree for verification (Eq. 7 of the paper).
    pub fn invariant_degree(&self) -> u32 {
        self.invariant_degree
    }

    /// Deterministic per-scenario seed (FNV-1a of the ID): every random
    /// choice the scenario's synthesis job makes derives from this, which
    /// is what makes farm runs reproducible across thread counts.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// How many scenarios each family contributes, and how the compositional
/// products are sampled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmConfig {
    /// Seed selecting the sampled products (never the content of any
    /// individual scenario).
    pub seed: u64,
    /// Pendulum mass grid points.
    pub pendulum_masses: usize,
    /// Pendulum length grid points.
    pub pendulum_lengths: usize,
    /// Platoon sizes `1..=platoon_max` (each size `n` is a `2n`-state
    /// environment).
    pub platoon_max: usize,
    /// Quadcopter drag-coefficient grid points.
    pub quadcopter_drags: usize,
    /// Oscillator filter orders `1..=oscillator_orders` (each order `k` is
    /// a `2+k`-state environment).
    pub oscillator_orders: usize,
    /// Duffing damping grid points.
    pub duffing_dampings: usize,
    /// Number of distinct compositional product scenarios to sample.
    pub products: usize,
    /// Maximum composition depth (2 = pairs, 3 = triples, ...).
    pub product_depth_max: usize,
    /// Skip sampled products whose state dimension would exceed this.
    pub product_dim_max: usize,
}

impl Default for FarmConfig {
    /// The acceptance-scale farm: ≥ 200 distinct scenarios across all five
    /// families plus 100 sampled products.
    fn default() -> Self {
        FarmConfig {
            seed: 2019,
            pendulum_masses: 8,
            pendulum_lengths: 8,
            platoon_max: 8,
            quadcopter_drags: 16,
            oscillator_orders: 12,
            duffing_dampings: 16,
            products: 100,
            product_depth_max: 3,
            product_dim_max: 26,
        }
    }
}

impl FarmConfig {
    /// A deliberately small farm for unit tests and smoke runs.
    pub fn smoke() -> Self {
        FarmConfig {
            seed: 7,
            pendulum_masses: 2,
            pendulum_lengths: 2,
            platoon_max: 3,
            quadcopter_drags: 3,
            oscillator_orders: 3,
            duffing_dampings: 3,
            products: 6,
            product_depth_max: 2,
            product_dim_max: 12,
        }
    }
}

/// Generates the farm's scenario set for `config`: every family grid point
/// plus `config.products` sampled compositional products, deduplicated by
/// ID.  The output order is deterministic (families in declaration order,
/// products in sampling order).
pub fn generate(config: &FarmConfig) -> Vec<Scenario> {
    let _span = vrl_obs::span("farm.generate");
    let mut scenarios: Vec<Scenario> = Vec::new();
    scenarios.extend(family::pendulum_grid(
        &family::linspace3(0.6, 1.6, config.pendulum_masses),
        &family::linspace3(0.7, 1.4, config.pendulum_lengths),
    ));
    scenarios.extend(family::platoon_sizes(config.platoon_max));
    scenarios.extend(family::quadcopter_drags(&family::linspace3(
        0.1,
        0.9,
        config.quadcopter_drags,
    )));
    scenarios.extend(family::oscillator_orders(config.oscillator_orders));
    scenarios.extend(family::duffing_dampings(&family::linspace3(
        0.3,
        1.2,
        config.duffing_dampings,
    )));

    let mut ids: HashSet<String> = scenarios.iter().map(|s| s.id().to_string()).collect();
    scenarios.retain({
        // Defensive: a degenerate grid could round two points onto the same
        // ID; keep the first occurrence only.
        let mut seen = HashSet::new();
        move |s| seen.insert(s.id().to_string())
    });

    let atoms: Vec<Scenario> = scenarios.clone();
    if !atoms.is_empty() && config.products > 0 {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let depth_max = config.product_depth_max.max(2);
        let mut added = 0usize;
        let mut attempts = 0usize;
        let attempt_cap = config.products.saturating_mul(50).max(64);
        while added < config.products && attempts < attempt_cap {
            attempts += 1;
            let depth = rng.gen_range(2..=depth_max);
            let mut product = atoms[rng.gen_range(0..atoms.len())].clone();
            let mut ok = true;
            for _ in 1..depth {
                let next = &atoms[rng.gen_range(0..atoms.len())];
                if product.env().state_dim() + next.env().state_dim() > config.product_dim_max {
                    ok = false;
                    break;
                }
                match compose(&product, next) {
                    Ok(p) => product = p,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && ids.insert(product.id().to_string()) {
                scenarios.push(product);
                added += 1;
            }
        }
    }
    for s in &scenarios {
        crate::obs::scenarios_generated(s.family()).inc();
    }
    scenarios
}

/// Regenerates the scenario a canonical ID denotes, bit-for-bit: family
/// scenarios parse their parameters back out of the ID, and product IDs
/// (`product/a+b+...`) re-compose their atoms left to right.
///
/// Returns `None` for IDs no farm generator produces.
pub fn scenario_by_id(id: &str) -> Option<Scenario> {
    if let Some(atoms) = id.strip_prefix("product/") {
        let mut parts = atoms.split('+');
        let mut product = scenario_by_id(parts.next()?)?;
        let mut any = false;
        for part in parts {
            any = true;
            product = compose(&product, &scenario_by_id(part)?).ok()?;
        }
        return any.then_some(product);
    }
    let (family, params) = id.split_once('/')?;
    match family {
        "pendulum" => {
            let (m, l) = params.strip_prefix('m')?.split_once("-l")?;
            family::pendulum_scenario(m.parse().ok()?, l.parse().ok()?).ok()
        }
        "platoon" => family::platoon_scenario(params.strip_prefix('n')?.parse().ok()?).ok(),
        "quadcopter" => family::quadcopter_scenario(params.strip_prefix('d')?.parse().ok()?).ok(),
        "oscillator" => family::oscillator_scenario(params.strip_prefix('k')?.parse().ok()?).ok(),
        "duffing" => family::duffing_scenario(params.strip_prefix('c')?.parse().ok()?).ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reaches_acceptance_scale() {
        let scenarios = generate(&FarmConfig::default());
        assert!(
            scenarios.len() >= 200,
            "expected at least 200 scenarios, got {}",
            scenarios.len()
        );
        let families: HashSet<&str> = scenarios.iter().map(|s| s.family()).collect();
        assert!(families.len() >= 5, "families: {families:?}");
        assert!(families.contains("product"));
        let ids: HashSet<&str> = scenarios.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), scenarios.len(), "IDs must be distinct");
    }

    #[test]
    fn generation_is_deterministic_in_the_config() {
        let a = generate(&FarmConfig::smoke());
        let b = generate(&FarmConfig::smoke());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.seed(), y.seed());
        }
        let c = generate(&FarmConfig {
            seed: 8,
            ..FarmConfig::smoke()
        });
        // A different farm seed may sample different products but never
        // changes the family grids.
        assert_eq!(
            a.iter().filter(|s| s.family() != "product").count(),
            c.iter().filter(|s| s.family() != "product").count()
        );
    }

    #[test]
    fn every_generated_id_round_trips() {
        for s in generate(&FarmConfig::smoke()) {
            let again =
                scenario_by_id(s.id()).unwrap_or_else(|| panic!("{} must be regenerable", s.id()));
            assert_eq!(again.id(), s.id());
            assert_eq!(again.seed(), s.seed());
            assert_eq!(again.env().state_dim(), s.env().state_dim());
            assert_eq!(again.oracle_gains(), s.oracle_gains());
            // The dynamics must be coefficient-identical, not just shaped
            // alike.
            for (p, q) in again
                .env()
                .dynamics()
                .derivatives()
                .iter()
                .zip(s.env().dynamics().derivatives().iter())
            {
                assert_eq!(p, q, "{}: dynamics differ", s.id());
            }
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(scenario_by_id("nope/x1").is_none());
        assert!(scenario_by_id("pendulum/bogus").is_none());
        assert!(scenario_by_id("product/pendulum/m1.000-l1.000").is_none());
        assert!(scenario_by_id("").is_none());
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        let good = family::quadcopter_scenario(0.3).unwrap();
        let err = Scenario::new(
            "bad",
            "test",
            good.env().clone(),
            vec![vec![1.0, f64::NAN]],
            2,
        );
        assert!(err.is_err());
        let err = Scenario::new("bad", "test", good.env().clone(), vec![], 2);
        assert!(err.is_err());
        let err = Scenario::new(
            "bad",
            "test",
            good.env().clone(),
            good.oracle_gains().to_vec(),
            1,
        );
        assert!(err.is_err());
    }
}
