//! Serving metrics: decide-path latency and counters, HTTP traffic, and
//! shard-router placement, registered in the process-wide [`vrl_obs`]
//! registry.
//!
//! The decide path is the latency-critical surface of this crate, so its
//! instrumentation (one histogram observation plus three counter bumps
//! per request) is gated on [`vrl_obs::enabled`] at the recording site
//! in `telemetry.rs` — the `serve_throughput` bench measures both sides
//! of that gate and the acceptance bar is < 2 % overhead with it on.
//! Everything else (HTTP status counts, router placement, redeploys) is
//! cold enough to record unconditionally.
//!
//! [`install_metrics`] forces registration of the full series set across
//! *all* instrumented crates (solver, synthesis, CEGIS, runtime), so a
//! freshly started server scrapes a complete, zeroed catalog instead of
//! series appearing as traffic trickles in.

use std::sync::LazyLock;
use vrl_obs::{registry, Counter, CounterVec, Gauge, Histogram, HistogramVec};

macro_rules! runtime_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Lazily registered handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: LazyLock<&'static Counter> =
                LazyLock::new(|| registry().counter($metric, $help));
            *HANDLE
        }
    };
}

runtime_counter!(
    requests,
    "vrl_runtime_requests_total",
    "Decide requests served (a batch counts once)."
);
runtime_counter!(
    decisions,
    "vrl_runtime_decisions_total",
    "Shield decisions taken across all deployments."
);
runtime_counter!(
    interventions,
    "vrl_runtime_interventions_total",
    "Decisions where the shield overrode the oracle."
);
runtime_counter!(
    redeploys,
    "vrl_runtime_redeploys_total",
    "Hot redeploys accepted across all deployments."
);
runtime_counter!(
    http_overload,
    "vrl_http_overload_total",
    "Connections shed with 503 at the accept loop's concurrency cap."
);
runtime_counter!(
    router_rehydrations,
    "vrl_router_rehydrations_total",
    "Deployments rehydrated from canonical bytes onto a new shard."
);
runtime_counter!(
    remote_retries,
    "vrl_remote_retries_total",
    "Remote-shard request attempts retried after a transport error or 5xx."
);
runtime_counter!(
    remote_timeouts,
    "vrl_remote_timeouts_total",
    "Remote-shard attempts that tripped a connect/read/write deadline."
);
runtime_counter!(
    breaker_rejections,
    "vrl_remote_breaker_rejections_total",
    "Requests rejected without touching the network because a shard's circuit breaker was open."
);
runtime_counter!(
    fleet_failovers,
    "vrl_fleet_failovers_total",
    "Requests that failed over from the primary replica to a backup."
);
runtime_counter!(
    fleet_rehydrations,
    "vrl_fleet_rehydrations_total",
    "Deployments re-pushed to a recovered shard by the health prober."
);
runtime_counter!(
    fleet_unavailable,
    "vrl_fleet_unavailable_total",
    "Requests refused with 503 because every replica of the deployment was down."
);

/// Per-decision serving latency; the same samples feed the windowed
/// p50/p99 estimator in `telemetry.rs`.
pub(crate) fn decide_latency() -> &'static Histogram {
    static HANDLE: LazyLock<&'static Histogram> = LazyLock::new(|| {
        registry().histogram(
            "vrl_runtime_decide_latency_seconds",
            "Per-decision serving latency (same samples as the windowed p50/p99 estimator).",
        )
    });
    *HANDLE
}

/// HTTP responses by status code.
pub(crate) fn http_requests() -> &'static CounterVec {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_http_requests_total",
            "status",
            "HTTP responses written, labeled by status code.",
        )
    });
    *HANDLE
}

/// Decide requests by negotiated wire codec (`json` / `binary`).
pub(crate) fn http_decide_codec() -> &'static CounterVec {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_http_decide_requests_total",
            "codec",
            "Decide requests served, labeled by the negotiated wire codec (json/binary).",
        )
    });
    *HANDLE
}

/// Wire-codec latency on the decide path, labeled by phase
/// (`decode` = request body to state matrix, `encode` = decisions to
/// response body).  Observations are gated on [`vrl_obs::enabled`] at the
/// call site like the decide-latency histogram, so the kill switch removes
/// both clock reads from the hot path.
pub(crate) fn codec_phase_latency() -> &'static HistogramVec {
    static HANDLE: LazyLock<&'static HistogramVec> = LazyLock::new(|| {
        registry().histogram_vec(
            "vrl_http_codec_phase_seconds",
            "phase",
            "Decide wire-codec latency, labeled by phase (decode/encode).",
        )
    });
    *HANDLE
}

/// Connections currently being served by the HTTP front-end.
pub(crate) fn http_active_connections() -> &'static Gauge {
    static HANDLE: LazyLock<&'static Gauge> = LazyLock::new(|| {
        registry().gauge(
            "vrl_http_active_connections",
            "Connections currently being served by the HTTP front-end.",
        )
    });
    *HANDLE
}

/// Circuit-breaker state transitions, labeled by the state entered
/// (`open`, `half_open`, `closed`).
pub(crate) fn breaker_transitions(to: &str) -> &'static Counter {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_remote_breaker_transitions_total",
            "to",
            "Circuit-breaker state transitions, labeled by the state entered.",
        )
    });
    HANDLE.with(to)
}

/// Health-probe outcomes, labeled `up` / `down`.
pub(crate) fn fleet_probes(result: &str) -> &'static Counter {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_fleet_probes_total",
            "result",
            "Health-probe outcomes per shard probe, labeled up/down.",
        )
    });
    HANDLE.with(result)
}

/// Requests routed per shard by the consistent-hash router.
pub(crate) fn router_shard_requests() -> &'static CounterVec {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_router_shard_requests_total",
            "shard",
            "Requests placed per shard by the consistent-hash router.",
        )
    });
    *HANDLE
}

/// Forces registration of the complete metric catalog — runtime series
/// plus the solver, synthesis, and CEGIS series — so `GET /metrics`
/// serves every family (at zero) from the first scrape.
pub fn install_metrics() {
    let _ = requests();
    let _ = decisions();
    let _ = interventions();
    let _ = redeploys();
    let _ = http_overload();
    let _ = router_rehydrations();
    let _ = remote_retries();
    let _ = remote_timeouts();
    let _ = breaker_rejections();
    let _ = fleet_failovers();
    let _ = fleet_rehydrations();
    let _ = fleet_unavailable();
    for state in ["open", "half_open", "closed"] {
        let _ = breaker_transitions(state);
    }
    for result in ["up", "down"] {
        let _ = fleet_probes(result);
    }
    let _ = decide_latency();
    let _ = http_requests();
    for codec in ["json", "binary"] {
        let _ = http_decide_codec().with(codec);
    }
    for phase in ["decode", "encode"] {
        let _ = codec_phase_latency().with(phase);
    }
    let _ = http_active_connections();
    let _ = router_shard_requests();
    vrl::solver::install_metrics();
    vrl::synth::install_metrics();
    vrl::shield::install_metrics();
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_registers_the_cross_layer_catalog() {
        super::install_metrics();
        let text = vrl_obs::registry().render_prometheus();
        // One representative series per layer plus the runtime set; the
        // loopback scrape test asserts the ≥ 15-series catalog end to end.
        for series in [
            "vrl_runtime_requests_total",
            "vrl_runtime_decide_latency_seconds",
            "vrl_http_requests_total",
            "vrl_http_decide_requests_total",
            "vrl_http_codec_phase_seconds",
            "vrl_http_overload_total",
            "vrl_http_active_connections",
            "vrl_router_shard_requests_total",
            "vrl_router_rehydrations_total",
            "vrl_solver_bb_queries_total",
            "vrl_synth_oracle_queries_total",
            "vrl_synth_cegis_runs_total",
        ] {
            assert!(text.contains(series), "missing series {series}");
        }
    }
}
