//! The binary wire codec of the decide hot path.
//!
//! JSON is kept for debuggability (`curl` a shield and read the answer),
//! but parsing and rendering decimal floats dominates the cost of a wire
//! decide — ROADMAP item 4 measured ~90 µs per single-state HTTP request
//! against ~12 µs in-process.  This module is the negotiated fast path: a
//! length-prefixed binary frame that reuses the `crate::codec`
//! conventions of the artifact format (little-endian fixed-width integers,
//! `f64`s as raw IEEE-754 bit patterns), so states and actions cross the
//! wire bit-exactly with zero number formatting.
//!
//! # Negotiation
//!
//! A client opts in per request by sending
//! `Content-Type: application/x-vrl-frame` ([`CONTENT_TYPE_FRAME`]) on
//! `POST …/decide`; the response body mirrors the request codec.  Every
//! other request content type (including none) gets the JSON codec, and
//! **error responses are always the structured JSON envelope** regardless
//! of the request codec — status and `code` semantics are identical on
//! both paths, and a client debugging a failure wants text.
//! [`RemoteShard`](crate::remote::RemoteShard) negotiates the binary codec
//! automatically for shard-to-shard traffic and falls back to decoding a
//! JSON response if a peer answers with one.
//!
//! # Frame layout
//!
//! All integers little-endian; `f64`s travel as raw bit patterns.
//!
//! ```text
//! magic      4 bytes   b"VRLW"
//! version    u32       1
//! kind       u8        1 = decide request, 2 = decide response
//! len        u32       payload byte length (exactly the bytes that follow)
//! payload    len bytes
//! ```
//!
//! Request payload (`kind = 1`):
//!
//! ```text
//! flags      u8        bit 0: batched (response framing mirrors this)
//! dim        u32       state dimension
//! count      u32       number of states (must be 1 when not batched)
//! states     count * dim * 8 bytes of f64 bits, row-major
//! ```
//!
//! Response payload (`kind = 2`):
//!
//! ```text
//! flags      u8        bit 0: batched (mirrors the request)
//! dim        u32       action dimension
//! count      u32       number of decisions
//! decisions  count * (dim * 8 bytes of f64 bits + 1 intervened byte)
//! ```
//!
//! # Validation
//!
//! Decoding is total: truncations, bit flips, oversize length prefixes,
//! and trailing garbage all produce a clean [`WireError`], never a panic
//! and never an oversized allocation (counts are validated against the
//! body length *before* any reservation).  Non-finite state bits — which
//! the JSON parser can never produce because `NaN`/`Infinity` are not
//! JSON — are rejected at decode time with
//! [`WireError::NonFiniteState`], keeping the binary path on the identical
//! 422 policy the server applies to states
//! ([`ServeError::NonFiniteState`](crate::server::ServeError)).

use crate::arena::StateArena;
use crate::wire::{DecideRequest, WireError};
use vrl::shield::ShieldDecision;

/// Content type that selects this codec on `POST …/decide`.
pub const CONTENT_TYPE_FRAME: &str = "application/x-vrl-frame";

/// Frame magic: `VRLW` ("VRL wire"), distinct from the artifact codec's
/// `VRLA` so the two binary formats can never be confused.
pub const FRAME_MAGIC: [u8; 4] = *b"VRLW";

/// Version of the frame layout documented in the module docs.
pub const FRAME_VERSION: u32 = 1;

/// `kind` byte of a decide request frame.
pub const KIND_DECIDE_REQUEST: u8 = 1;

/// `kind` byte of a decide response frame.
pub const KIND_DECIDE_RESPONSE: u8 = 2;

/// Bytes before the payload: magic + version + kind + payload length.
const HEADER_BYTES: usize = 4 + 4 + 1 + 4;

/// Bytes of the fixed payload prelude: flags + dim + count.
const PRELUDE_BYTES: usize = 1 + 4 + 4;

fn frame_error(at: usize, detail: &'static str) -> WireError {
    WireError::Frame { at, detail }
}

/// Writes the frame header for `kind` with `payload_len` payload bytes.
fn put_header(out: &mut Vec<u8>, kind: u8, payload_len: usize) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(
        &u32::try_from(payload_len)
            .expect("payload fits u32")
            .to_le_bytes(),
    );
}

/// Checks magic, version, kind, and the payload length prefix, returning
/// the payload slice.
fn payload(body: &[u8], kind: u8) -> Result<&[u8], WireError> {
    if body.len() < HEADER_BYTES {
        return Err(frame_error(body.len(), "truncated frame header"));
    }
    if body[..4] != FRAME_MAGIC {
        return Err(frame_error(0, "bad frame magic (expected \"VRLW\")"));
    }
    let version = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    if version != FRAME_VERSION {
        return Err(frame_error(4, "unsupported frame version"));
    }
    if body[8] != kind {
        return Err(frame_error(8, "unexpected frame kind"));
    }
    let declared = u32::from_le_bytes(body[9..13].try_into().expect("4 bytes")) as usize;
    let actual = body.len() - HEADER_BYTES;
    if declared > actual {
        return Err(frame_error(9, "payload length prefix exceeds the body"));
    }
    if declared < actual {
        return Err(frame_error(9, "trailing bytes after the declared payload"));
    }
    Ok(&body[HEADER_BYTES..])
}

/// Reads the `flags`/`dim`/`count` prelude and validates that the payload
/// holds exactly `count` records of `record_bytes(dim)` bytes.
fn prelude(payload: &[u8], record_extra: usize) -> Result<(bool, usize, usize), WireError> {
    if payload.len() < PRELUDE_BYTES {
        return Err(frame_error(HEADER_BYTES, "truncated frame payload"));
    }
    let flags = payload[0];
    if flags & !1 != 0 {
        return Err(frame_error(HEADER_BYTES, "unknown flag bits set"));
    }
    let batched = flags & 1 != 0;
    let dim = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
    let count = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
    // Validate the geometry against the actual byte count before touching
    // any element, so a crafted count can neither over-read nor trigger a
    // large allocation (u128 arithmetic rules out overflow games).
    let expected = (count as u128) * (dim as u128 * 8 + record_extra as u128);
    if expected != (payload.len() - PRELUDE_BYTES) as u128 {
        return Err(frame_error(
            HEADER_BYTES + 1,
            "dim/count disagree with the payload size",
        ));
    }
    Ok((batched, dim, count))
}

/// Encodes a decide request frame into `out` (cleared first).
///
/// `batched` controls the response framing exactly as the JSON shapes
/// `"states"` vs `"state"` do; a non-batched frame must carry exactly one
/// state.
pub fn encode_decide_request_into(states: &[Vec<f64>], batched: bool, out: &mut Vec<u8>) {
    debug_assert!(
        batched || states.len() == 1,
        "single-state frames carry one state"
    );
    let dim = states.first().map_or(0, Vec::len);
    out.clear();
    put_header(
        out,
        KIND_DECIDE_REQUEST,
        PRELUDE_BYTES + states.len() * dim * 8,
    );
    out.push(u8::from(batched));
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(states.len() as u32).to_le_bytes());
    for state in states {
        debug_assert_eq!(state.len(), dim, "ragged state matrix");
        for &v in state {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Encodes a decide request frame (allocating convenience wrapper around
/// [`encode_decide_request_into`]).
#[must_use]
pub fn encode_decide_request(states: &[Vec<f64>], batched: bool) -> Vec<u8> {
    let mut out = Vec::new();
    encode_decide_request_into(states, batched, &mut out);
    out
}

/// Decodes a decide request frame into `arena` (reset first), returning
/// whether the request was batched.
///
/// # Errors
///
/// [`WireError::Frame`] on any structural defect (HTTP 400),
/// [`WireError::BatchTooLarge`] when `count` exceeds `max_batch` (413),
/// and [`WireError::NonFiniteState`] when any state coordinate carries
/// non-finite bits (422 — the identical policy the server applies, which
/// a binary frame could otherwise smuggle past).
pub fn decode_decide_request_into(
    body: &[u8],
    max_batch: usize,
    arena: &mut StateArena,
) -> Result<bool, WireError> {
    arena.reset();
    let payload = payload(body, KIND_DECIDE_REQUEST)?;
    let (batched, dim, count) = prelude(payload, 0)?;
    if !batched && count != 1 {
        return Err(frame_error(
            HEADER_BYTES + 5,
            "a single-state frame must carry exactly one state",
        ));
    }
    if count > max_batch {
        return Err(WireError::BatchTooLarge {
            len: count,
            max: max_batch,
        });
    }
    let mut bytes = payload[PRELUDE_BYTES..].chunks_exact(8);
    for state in 0..count {
        let row = arena.push_row();
        row.reserve(dim);
        for coordinate in 0..dim {
            let bits = bytes.next().expect("geometry validated");
            let v = f64::from_bits(u64::from_le_bytes(bits.try_into().expect("8 bytes")));
            if !v.is_finite() {
                return Err(WireError::NonFiniteState { state, coordinate });
            }
            row.push(v);
        }
    }
    Ok(batched)
}

/// Decodes a decide request frame into an owned [`DecideRequest`]
/// (allocating convenience wrapper around [`decode_decide_request_into`]
/// for tests and clients).
///
/// # Errors
///
/// As [`decode_decide_request_into`].
pub fn decode_decide_request(body: &[u8], max_batch: usize) -> Result<DecideRequest, WireError> {
    let mut arena = StateArena::new();
    let batched = decode_decide_request_into(body, max_batch, &mut arena)?;
    Ok(DecideRequest {
        states: arena.rows().to_vec(),
        batched,
    })
}

/// Encodes a decide response frame into `out` (cleared first).  `batched`
/// mirrors the request flag, so a client can assert the server honored its
/// framing.
pub fn encode_decide_response_into(decisions: &[ShieldDecision], batched: bool, out: &mut Vec<u8>) {
    let dim = decisions.first().map_or(0, |d| d.action.len());
    out.clear();
    put_header(
        out,
        KIND_DECIDE_RESPONSE,
        PRELUDE_BYTES + decisions.len() * (dim * 8 + 1),
    );
    out.push(u8::from(batched));
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(decisions.len() as u32).to_le_bytes());
    for decision in decisions {
        debug_assert_eq!(decision.action.len(), dim, "ragged action matrix");
        for &v in &decision.action {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.push(u8::from(decision.intervened));
    }
}

/// Encodes a decide response frame (allocating convenience wrapper around
/// [`encode_decide_response_into`]).
#[must_use]
pub fn encode_decide_response(decisions: &[ShieldDecision], batched: bool) -> Vec<u8> {
    let mut out = Vec::new();
    encode_decide_response_into(decisions, batched, &mut out);
    out
}

/// Decodes a decide response frame back into shield decisions — the
/// client half of [`encode_decide_response_into`].  Action bits pass
/// through untouched, so a decision that crosses the wire (even twice,
/// shard → router → client) is bit-identical to the in-process call.
///
/// # Errors
///
/// [`WireError::Frame`] on any structural defect.
pub fn decode_decide_response(body: &[u8]) -> Result<Vec<ShieldDecision>, WireError> {
    let payload = payload(body, KIND_DECIDE_RESPONSE)?;
    let (_batched, dim, count) = prelude(payload, 1)?;
    let record = dim * 8 + 1;
    let mut decisions = Vec::with_capacity(count);
    for chunk in payload[PRELUDE_BYTES..].chunks_exact(record.max(1)) {
        if decisions.len() == count {
            break;
        }
        let mut action = Vec::with_capacity(dim);
        for bits in chunk[..dim * 8].chunks_exact(8) {
            action.push(f64::from_bits(u64::from_le_bytes(
                bits.try_into().expect("8 bytes"),
            )));
        }
        let intervened = match chunk[dim * 8] {
            0 => false,
            1 => true,
            _ => return Err(frame_error(HEADER_BYTES, "intervened byte is not 0 or 1")),
        };
        decisions.push(ShieldDecision { action, intervened });
    }
    if decisions.len() != count {
        return Err(frame_error(HEADER_BYTES + 5, "record count mismatch"));
    }
    Ok(decisions)
}

/// Whether a response frame declared itself batched (bit 0 of the flags
/// byte), for clients asserting the server mirrored their framing.
///
/// # Errors
///
/// [`WireError::Frame`] when `body` is not a well-formed response frame.
pub fn response_is_batched(body: &[u8]) -> Result<bool, WireError> {
    let payload = payload(body, KIND_DECIDE_RESPONSE)?;
    let (batched, _, _) = prelude(payload, 1)?;
    Ok(batched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awkward_states() -> Vec<Vec<f64>> {
        vec![
            vec![0.1, -1.0 / 3.0],
            vec![-0.0, f64::MIN_POSITIVE],
            vec![1.7976931348623157e308, 123456.78901234567],
        ]
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        let states = awkward_states();
        let frame = encode_decide_request(&states, true);
        let decoded = decode_decide_request(&frame, 16).unwrap();
        assert!(decoded.batched);
        assert_eq!(decoded.states.len(), states.len());
        for (a, b) in decoded.states.iter().zip(states.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Single-state framing round-trips the flag.
        let single = encode_decide_request(&states[..1], false);
        let decoded = decode_decide_request(&single, 16).unwrap();
        assert!(!decoded.batched);
        assert_eq!(decoded.states, states[..1]);
    }

    #[test]
    fn response_round_trips_bit_exactly() {
        let decisions = vec![
            ShieldDecision {
                action: vec![0.1, -0.0],
                intervened: true,
            },
            ShieldDecision {
                action: vec![f64::MIN_POSITIVE, -1.0 / 3.0],
                intervened: false,
            },
        ];
        let frame = encode_decide_response(&decisions, true);
        assert!(response_is_batched(&frame).unwrap());
        let decoded = decode_decide_response(&frame).unwrap();
        assert_eq!(decoded.len(), decisions.len());
        for (a, b) in decoded.iter().zip(decisions.iter()) {
            assert_eq!(a.intervened, b.intervened);
            for (x, y) in a.action.iter().zip(b.action.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Actions may legitimately carry any finite bits; empty batches
        // and zero-dim actions are representable.
        let empty = encode_decide_response(&[], true);
        assert_eq!(decode_decide_response(&empty).unwrap(), vec![]);
    }

    #[test]
    fn non_finite_states_are_rejected_with_the_422_policy() {
        for (bad, state, coordinate) in [
            (f64::NAN, 0usize, 1usize),
            (f64::INFINITY, 1, 0),
            (f64::NEG_INFINITY, 1, 1),
        ] {
            let mut states = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
            states[state][coordinate] = bad;
            let frame = encode_decide_request(&states, true);
            assert_eq!(
                decode_decide_request(&frame, 16),
                Err(WireError::NonFiniteState { state, coordinate }),
            );
        }
    }

    #[test]
    fn batch_limit_is_enforced() {
        let states: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        let frame = encode_decide_request(&states, true);
        assert_eq!(
            decode_decide_request(&frame, 8),
            Err(WireError::BatchTooLarge { len: 9, max: 8 })
        );
        assert!(decode_decide_request(&frame, 9).is_ok());
    }

    #[test]
    fn structural_defects_are_clean_frame_errors() {
        let frame = encode_decide_request(&awkward_states(), true);
        // Magic, version, kind.
        for (offset, patch) in [(0usize, 0xFFu8), (4, 0x77), (8, 9)] {
            let mut bad = frame.clone();
            bad[offset] ^= patch;
            assert!(matches!(
                decode_decide_request(&bad, 16),
                Err(WireError::Frame { .. })
            ));
        }
        // Oversize length prefix (declares more payload than the body has).
        let mut oversize = frame.clone();
        oversize[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_decide_request(&oversize, 16),
            Err(WireError::Frame { .. })
        ));
        // Trailing garbage.
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(matches!(
            decode_decide_request(&trailing, 16),
            Err(WireError::Frame { .. })
        ));
        // A count that disagrees with the payload size cannot allocate.
        let mut huge_count = frame.clone();
        huge_count[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_decide_request(&huge_count, usize::MAX),
            Err(WireError::Frame { .. })
        ));
        // Unknown flags and single-state frames with the wrong count.
        let mut flags = frame.clone();
        flags[13] = 0x80;
        assert!(matches!(
            decode_decide_request(&flags, 16),
            Err(WireError::Frame { .. })
        ));
        let mut unbatched = frame;
        unbatched[13] = 0;
        assert!(matches!(
            decode_decide_request(&unbatched, 16),
            Err(WireError::Frame { .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected_cleanly() {
        let frame = encode_decide_request(&awkward_states(), true);
        for len in 0..frame.len() {
            assert!(
                decode_decide_request(&frame[..len], 16).is_err(),
                "truncation to {len}/{} bytes must be rejected",
                frame.len()
            );
        }
        assert!(decode_decide_request(&frame, 16).is_ok());
    }
}
