//! A fault-aware HTTP client for one remote shield shard.
//!
//! [`RemoteShard`] implements [`ShieldBackend`](crate::http::ShieldBackend)
//! over the wire protocol served by
//! [`HttpFrontend`](crate::http::HttpFrontend), so a process holding a
//! [`FleetRouter`](crate::fleet::FleetRouter) can treat a shard in another
//! process (or on another machine) exactly like an in-process
//! [`ShieldServer`](crate::server::ShieldServer).  Unlike the test-oriented
//! [`MiniClient`](crate::http::MiniClient) it is built for an unreliable
//! network:
//!
//! - **Deadlines everywhere.**  Connect, write, and read each carry their
//!   own timeout; a dead or black-holed peer surfaces as
//!   [`RemoteError::Timeout`] instead of a hang.  The total worst-case wall
//!   clock for one logical request — retries and backoff included — is
//!   [`RemoteShardConfig::deadline_budget`], which tests assert against.
//! - **Bounded retries with jittered exponential backoff.**  Transport
//!   errors and `5xx` responses are retried up to
//!   [`RemoteShardConfig::max_retries`] times; each attempt `i` sleeps
//!   `min(backoff_cap, backoff_base * 2^i) * U[0,1)` first (full jitter,
//!   drawn from the in-tree [`rand`] stand-in, deterministically seeded).
//!   `4xx` responses are *not* retried: the shard is alive and has given a
//!   definitive answer.
//! - **A per-shard circuit breaker.**  After
//!   [`RemoteShardConfig::breaker_threshold`] consecutive failures the
//!   breaker opens and requests fail fast with [`RemoteError::BreakerOpen`]
//!   — letting the fleet fail over immediately instead of burning its
//!   deadline budget on a shard known to be down.  After
//!   [`RemoteShardConfig::breaker_cooldown`] one trial request is admitted
//!   (half-open); success closes the breaker, failure re-opens it.  Health
//!   probes ([`RemoteShard::probe`]) bypass admission but feed the same
//!   state machine, so a recovered shard is healed by the prober without
//!   sacrificing a live request.
//!
//! Each request uses a **fresh TCP connection** (no keep-alive pooling).
//! This costs one handshake per request but makes the fault-injection
//! harness ([`crate::fault`]) deterministic: the proxy scripts faults by
//! accepted-connection index, and one request is exactly one connection.

use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::artifact::ShieldArtifact;
use crate::frame;
use crate::http::{read_response_from, MiniResponse, ShieldBackend};
use crate::server::ServeError;
use crate::telemetry::DeploymentTelemetry;
use crate::wire;
use std::io::Write as _;
use vrl::shield::ShieldDecision;

/// Deadlines, retry, and breaker tuning for one [`RemoteShard`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteShardConfig {
    /// Deadline for the TCP connect.
    pub connect_timeout: Duration,
    /// Socket read deadline (covers the whole response read).
    pub read_timeout: Duration,
    /// Socket write deadline (covers the whole request write).
    pub write_timeout: Duration,
    /// Retries *after* the first attempt (so `max_retries = 2` means at
    /// most three attempts).  Only transport errors and `5xx` retry.
    pub max_retries: u32,
    /// Base backoff before retry `i`: `min(cap, base * 2^i)`, then scaled
    /// by a uniform jitter in `[0, 1)`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub backoff_cap: Duration,
    /// Consecutive failures that trip the breaker open.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before admitting a half-open trial.
    pub breaker_cooldown: Duration,
    /// Seed for the jitter generator — deterministic by default so tests
    /// and replays see identical backoff schedules.
    pub jitter_seed: u64,
}

impl Default for RemoteShardConfig {
    fn default() -> Self {
        RemoteShardConfig {
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(1000),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            jitter_seed: 0x5eed_5eed,
        }
    }
}

impl RemoteShardConfig {
    /// Worst-case wall clock for one logical request through this config:
    /// every attempt spends its full connect + write + read deadlines, and
    /// every backoff sleeps its full (pre-jitter) bound.
    ///
    /// The fault-matrix test asserts that no request — whatever the scripted
    /// fault — takes longer than this budget.
    #[must_use]
    pub fn deadline_budget(&self) -> Duration {
        let per_attempt = self.connect_timeout + self.write_timeout + self.read_timeout;
        let attempts = self.max_retries + 1;
        let mut budget = per_attempt * attempts;
        for retry in 0..self.max_retries {
            budget += self.backoff(retry);
        }
        budget
    }

    /// Pre-jitter backoff bound before retry `i`: `min(cap, base * 2^i)`.
    fn backoff(&self, retry: u32) -> Duration {
        let doubled = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        doubled.min(self.backoff_cap)
    }
}

/// Why a request to a remote shard failed at the transport level.
///
/// These are the errors that trigger retry, feed the circuit breaker, and
/// (through [`ServeError::Remote`]) drive fleet failover.  A structured
/// *application* error from a live shard is [`ServeError::Shard`] instead
/// and does none of those things.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// TCP connect failed (refused, unreachable, ...).
    Connect {
        /// The shard address.
        addr: SocketAddr,
        /// OS-level detail.
        detail: String,
    },
    /// A deadline expired.
    Timeout {
        /// The shard address.
        addr: SocketAddr,
        /// Which phase timed out: `"connect"`, `"write"`, or `"read"`.
        phase: &'static str,
    },
    /// The connection died mid-request or mid-response.
    Io {
        /// The shard address.
        addr: SocketAddr,
        /// OS-level detail.
        detail: String,
    },
    /// The shard answered bytes that do not parse as the expected protocol
    /// (garbage frame, malformed status line, undecodable body).
    Protocol {
        /// The shard address.
        addr: SocketAddr,
        /// What failed to parse.
        detail: String,
    },
    /// The shard kept answering `5xx` until the retry budget ran out.
    UpstreamStatus {
        /// The shard address.
        addr: SocketAddr,
        /// The final HTTP status observed.
        status: u16,
    },
    /// The circuit breaker is open: the shard failed
    /// [`RemoteShardConfig::breaker_threshold`] consecutive times recently
    /// and the request was rejected without touching the network.
    BreakerOpen {
        /// The shard address.
        addr: SocketAddr,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Connect { addr, detail } => {
                write!(f, "connect to shard {addr} failed: {detail}")
            }
            RemoteError::Timeout { addr, phase } => {
                write!(f, "{phase} to shard {addr} timed out")
            }
            RemoteError::Io { addr, detail } => {
                write!(f, "i/o with shard {addr} failed: {detail}")
            }
            RemoteError::Protocol { addr, detail } => {
                write!(f, "shard {addr} sent an unparseable response: {detail}")
            }
            RemoteError::UpstreamStatus { addr, status } => {
                write!(f, "shard {addr} kept failing with HTTP {status}")
            }
            RemoteError::BreakerOpen { addr } => {
                write!(f, "circuit breaker for shard {addr} is open")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

/// Observable state of a shard's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally; consecutive failures are being counted.
    Closed,
    /// Requests fail fast; the shard is presumed down.
    Open,
    /// The cooldown elapsed and one trial request is in flight.
    HalfOpen,
}

impl BreakerState {
    /// The metric label for this state (`vrl_remote_breaker_transitions_total{to=...}`).
    fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// Whether the single half-open trial slot is taken.
    trial_in_flight: bool,
}

/// Closed → Open → HalfOpen → {Closed, Open} circuit breaker.
///
/// Transport errors and `5xx` responses count as failures; any definitive
/// answer from the shard (2xx–4xx) counts as success.
#[derive(Debug)]
struct Breaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Self {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                trial_in_flight: false,
            }),
        }
    }

    fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock poisoned").state
    }

    /// Decides whether a live request may proceed.  `Err(())` means fail
    /// fast with [`RemoteError::BreakerOpen`].
    fn admit(&self) -> Result<(), ()> {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        match inner.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.trial_in_flight = true;
                    crate::obs::breaker_transitions(BreakerState::HalfOpen.label()).inc();
                    Ok(())
                } else {
                    Err(())
                }
            }
            BreakerState::HalfOpen => {
                if inner.trial_in_flight {
                    Err(())
                } else {
                    inner.trial_in_flight = true;
                    Ok(())
                }
            }
        }
    }

    /// Records a definitive answer from the shard: reset to closed.
    fn on_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        if inner.state != BreakerState::Closed {
            crate::obs::breaker_transitions(BreakerState::Closed.label()).inc();
        }
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.trial_in_flight = false;
    }

    /// Records a transport-level failure (or exhausted `5xx` retries).
    fn on_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        inner.trial_in_flight = false;
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    crate::obs::breaker_transitions(BreakerState::Open.label()).inc();
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                crate::obs::breaker_transitions(BreakerState::Open.label()).inc();
            }
            BreakerState::Open => {}
        }
    }
}

/// One remote shield shard, addressed over the HTTP wire protocol.
///
/// Implements [`ShieldBackend`], so anything that can serve from a
/// [`ShieldServer`](crate::server::ShieldServer) — including another
/// [`HttpFrontend`](crate::http::HttpFrontend) — can serve from a shard in
/// a different process.  See the module docs for the fault model.
#[derive(Debug)]
pub struct RemoteShard {
    addr: SocketAddr,
    config: RemoteShardConfig,
    breaker: Breaker,
    jitter: Mutex<SmallRng>,
    /// Reusable response read buffer; connections are per-request but the
    /// buffer's capacity survives them, so steady-state shard traffic does
    /// not reallocate the read path.
    scratch: Mutex<Vec<u8>>,
}

impl RemoteShard {
    /// Creates a client for the shard at `addr` with default tuning.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        RemoteShard::with_config(addr, RemoteShardConfig::default())
    }

    /// Creates a client for the shard at `addr` with explicit tuning.
    #[must_use]
    pub fn with_config(addr: SocketAddr, config: RemoteShardConfig) -> Self {
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_cooldown);
        let jitter = Mutex::new(SmallRng::seed_from_u64(config.jitter_seed));
        RemoteShard {
            addr,
            config,
            breaker,
            jitter,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The shard's address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The client's configuration.
    #[must_use]
    pub fn config(&self) -> &RemoteShardConfig {
        &self.config
    }

    /// Current circuit-breaker state (for tests and operators).
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// One attempt: fresh connection, write request, read response.
    fn attempt(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        content_type: &str,
    ) -> Result<MiniResponse, RemoteError> {
        let addr = self.addr;
        let timeout_err = |phase: &'static str| RemoteError::Timeout { addr, phase };
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(
            |error| match error.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                    timeout_err("connect")
                }
                _ => RemoteError::Connect {
                    addr,
                    detail: error.to_string(),
                },
            },
        )?;
        let mut stream = stream;
        let io_err = |error: std::io::Error, phase: &'static str| match error.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => timeout_err(phase),
            std::io::ErrorKind::InvalidData => RemoteError::Protocol {
                addr,
                detail: error.to_string(),
            },
            _ => RemoteError::Io {
                addr,
                detail: error.to_string(),
            },
        };
        stream.set_nodelay(true).map_err(|e| io_err(e, "write"))?;
        stream
            .set_read_timeout(Some(self.config.read_timeout))
            .map_err(|e| io_err(e, "read"))?;
        stream
            .set_write_timeout(Some(self.config.write_timeout))
            .map_err(|e| io_err(e, "write"))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: vrl\r\nconnection: close\r\ncontent-length: {}\r\ncontent-type: {content_type}\r\n\r\n",
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush())
            .map_err(|e| io_err(e, "write"))?;
        let mut scratch = self.scratch.lock().expect("scratch lock poisoned");
        read_response_from(&mut stream, &mut scratch).map_err(|e| io_err(e, "read"))
    }

    /// Full request path: breaker admission, bounded retries with jittered
    /// backoff, breaker accounting.  Returns the response for any status
    /// below 500 (the caller decodes success and application errors).
    fn request(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        content_type: &str,
    ) -> Result<MiniResponse, RemoteError> {
        if self.breaker.admit().is_err() {
            crate::obs::breaker_rejections().inc();
            return Err(RemoteError::BreakerOpen { addr: self.addr });
        }
        let mut last_error;
        let mut attempt_index = 0u32;
        loop {
            match self.attempt(method, path, body, content_type) {
                Ok(response) if response.status < 500 => {
                    self.breaker.on_success();
                    return Ok(response);
                }
                Ok(response) => {
                    last_error = RemoteError::UpstreamStatus {
                        addr: self.addr,
                        status: response.status,
                    };
                }
                Err(error) => {
                    if matches!(error, RemoteError::Timeout { .. }) {
                        crate::obs::remote_timeouts().inc();
                    }
                    last_error = error;
                }
            }
            if attempt_index >= self.config.max_retries {
                self.breaker.on_failure();
                return Err(last_error);
            }
            let bound = self.config.backoff(attempt_index);
            let jitter: f64 = self
                .jitter
                .lock()
                .expect("jitter lock poisoned")
                .gen_range(0.0..1.0);
            std::thread::sleep(bound.mul_f64(jitter));
            crate::obs::remote_retries().inc();
            attempt_index += 1;
        }
    }

    /// Maps a non-2xx response from a live shard to a [`ServeError`].
    fn shard_error(&self, deployment: &str, response: &MiniResponse) -> ServeError {
        match wire::decode_error_body(&response.body) {
            Some((status, code, message)) => {
                if status == 404 && code == "unknown_deployment" {
                    ServeError::UnknownDeployment(deployment.to_string())
                } else {
                    ServeError::Shard {
                        status,
                        code,
                        message,
                    }
                }
            }
            None => ServeError::Remote(RemoteError::Protocol {
                addr: self.addr,
                detail: format!("HTTP {} with undecodable error envelope", response.status),
            }),
        }
    }

    /// Decides a batch on the remote shard.
    ///
    /// Shard-to-shard decide traffic negotiates the binary frame codec
    /// ([`crate::frame`]) automatically: raw `f64` bit patterns cross the
    /// wire, so the decisions that come back are trivially bit-identical
    /// to calling `decide_batch` in the shard's process.  A front-end that
    /// answers with JSON anyway (which also round-trips bit-exactly) is
    /// decoded by its response `Content-Type`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] on transport failure after retries (or
    /// breaker-open), [`ServeError::UnknownDeployment`] /
    /// [`ServeError::Shard`] on structured shard answers.
    pub fn decide_batch_remote(
        &self,
        deployment: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        let body = frame::encode_decide_request(states, true);
        let path = format!("/v1/deployments/{deployment}/decide");
        let response = self
            .request("POST", &path, &body, frame::CONTENT_TYPE_FRAME)
            .map_err(ServeError::Remote)?;
        if response.status != 200 {
            // Error envelopes are JSON on both codec paths.
            return Err(self.shard_error(deployment, &response));
        }
        let binary = response
            .header("content-type")
            .is_some_and(|value| value.eq_ignore_ascii_case(frame::CONTENT_TYPE_FRAME));
        let decoded = if binary {
            frame::decode_decide_response(&response.body).map_err(|error| error.to_string())
        } else {
            wire::decode_decide_response(&response.body).map_err(|error| error.to_string())
        };
        decoded.map_err(|error| {
            ServeError::Remote(RemoteError::Protocol {
                addr: self.addr,
                detail: format!("bad decide response: {error}"),
            })
        })
    }

    /// Deploys (or hot-redeploys) already-encoded artifact bytes, returning
    /// the shard's new generation for the deployment.
    ///
    /// # Errors
    ///
    /// As [`RemoteShard::decide_batch_remote`].
    pub fn put_artifact_bytes(&self, deployment: &str, bytes: &[u8]) -> Result<u64, ServeError> {
        let path = format!("/v1/deployments/{deployment}");
        let response = self
            .request("PUT", &path, bytes, "application/octet-stream")
            .map_err(ServeError::Remote)?;
        if response.status != 200 {
            return Err(self.shard_error(deployment, &response));
        }
        wire::decode_deployed_response(&response.body).map_err(|error| {
            ServeError::Remote(RemoteError::Protocol {
                addr: self.addr,
                detail: format!("bad deploy response: {error}"),
            })
        })
    }

    /// Fetches the shard's telemetry snapshot for a deployment.
    ///
    /// # Errors
    ///
    /// As [`RemoteShard::decide_batch_remote`].
    pub fn fetch_telemetry(&self, deployment: &str) -> Result<DeploymentTelemetry, ServeError> {
        let path = format!("/v1/deployments/{deployment}/telemetry");
        let response = self
            .request("GET", &path, b"", "application/json")
            .map_err(ServeError::Remote)?;
        if response.status != 200 {
            return Err(self.shard_error(deployment, &response));
        }
        wire::decode_telemetry_response(&response.body).map_err(|error| {
            ServeError::Remote(RemoteError::Protocol {
                addr: self.addr,
                detail: format!("bad telemetry response: {error}"),
            })
        })
    }

    /// Removes a deployment on the shard; `Ok(true)` when it existed.
    ///
    /// # Errors
    ///
    /// As [`RemoteShard::decide_batch_remote`], except an
    /// unknown-deployment answer decodes to `Ok(false)`.
    pub fn undeploy_remote(&self, deployment: &str) -> Result<bool, ServeError> {
        let path = format!("/v1/deployments/{deployment}");
        let response = self
            .request("DELETE", &path, b"", "application/json")
            .map_err(ServeError::Remote)?;
        if response.status == 200 {
            return Ok(true);
        }
        match self.shard_error(deployment, &response) {
            ServeError::UnknownDeployment(_) => Ok(false),
            error => Err(error),
        }
    }

    /// One *single-attempt* health probe: `GET /healthz`, no retries, no
    /// breaker admission — but the outcome feeds the breaker, so a
    /// succeeding probe heals an open breaker without risking a live
    /// request.
    ///
    /// Returns the shard's uptime (seconds) and `(deployment, generation)`
    /// pairs on success.
    ///
    /// # Errors
    ///
    /// The transport or protocol failure observed.
    pub fn probe(&self) -> Result<(u64, Vec<(String, u64)>), RemoteError> {
        let outcome = self
            .attempt("GET", "/healthz", b"", "application/json")
            .and_then(|response| {
                if response.status != 200 {
                    return Err(RemoteError::UpstreamStatus {
                        addr: self.addr,
                        status: response.status,
                    });
                }
                wire::decode_health_response(&response.body).map_err(|error| {
                    RemoteError::Protocol {
                        addr: self.addr,
                        detail: format!("bad healthz response: {error}"),
                    }
                })
            });
        match &outcome {
            Ok(_) => self.breaker.on_success(),
            Err(_) => self.breaker.on_failure(),
        }
        outcome
    }
}

impl ShieldBackend for RemoteShard {
    fn put_artifact(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        self.put_artifact_bytes(name, &artifact.to_bytes())
    }

    fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        self.decide_batch_remote(name, states)
    }

    fn backend_telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        self.fetch_telemetry(name)
    }

    fn deployment_names(&self) -> Vec<String> {
        self.probe()
            .map(|(_, deployments)| deployments.into_iter().map(|(name, _)| name).collect())
            .unwrap_or_default()
    }

    fn deployment_generations(&self) -> Vec<(String, u64)> {
        self.probe().map(|(_, d)| d).unwrap_or_default()
    }

    fn remove_deployment(&self, name: &str) -> Result<bool, ServeError> {
        self.undeploy_remote(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn dead_addr() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        addr
    }

    fn fast_config() -> RemoteShardConfig {
        RemoteShardConfig {
            connect_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_millis(100),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(50),
            ..RemoteShardConfig::default()
        }
    }

    #[test]
    fn budget_sums_attempts_and_backoffs() {
        let config = RemoteShardConfig {
            connect_timeout: Duration::from_millis(10),
            read_timeout: Duration::from_millis(20),
            write_timeout: Duration::from_millis(5),
            max_retries: 2,
            backoff_base: Duration::from_millis(4),
            backoff_cap: Duration::from_millis(6),
            ..RemoteShardConfig::default()
        };
        // 3 attempts * 35ms + backoffs min(6,4) + min(6,8) = 105 + 10.
        assert_eq!(config.deadline_budget(), Duration::from_millis(115));
    }

    #[test]
    fn refused_connect_trips_breaker_then_fails_fast() {
        let shard = RemoteShard::with_config(dead_addr(), fast_config());
        assert_eq!(shard.breaker_state(), BreakerState::Closed);
        // Each request makes 2 attempts; threshold 2 trips after two requests.
        let first = shard.decide_batch_remote("pend", &[vec![0.0]]);
        assert!(matches!(
            first,
            Err(ServeError::Remote(RemoteError::Connect { .. }))
        ));
        let second = shard.decide_batch_remote("pend", &[vec![0.0]]);
        assert!(second.is_err());
        assert_eq!(shard.breaker_state(), BreakerState::Open);
        let third = shard.decide_batch_remote("pend", &[vec![0.0]]);
        assert!(matches!(
            third,
            Err(ServeError::Remote(RemoteError::BreakerOpen { .. }))
        ));
    }

    #[test]
    fn breaker_goes_half_open_after_cooldown_and_reopens_on_failure() {
        let shard = RemoteShard::with_config(dead_addr(), fast_config());
        for _ in 0..2 {
            let _ = shard.decide_batch_remote("pend", &[vec![0.0]]);
        }
        assert_eq!(shard.breaker_state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(60));
        // Cooldown elapsed: one trial is admitted, fails, re-opens.
        let trial = shard.decide_batch_remote("pend", &[vec![0.0]]);
        assert!(matches!(
            trial,
            Err(ServeError::Remote(RemoteError::Connect { .. }))
        ));
        assert_eq!(shard.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn probe_failure_and_success_drive_breaker() {
        let shard = RemoteShard::with_config(dead_addr(), fast_config());
        assert!(shard.probe().is_err());
        assert!(shard.probe().is_err());
        assert_eq!(shard.breaker_state(), BreakerState::Open);
    }
}
