//! Per-connection scratch arenas for allocation-free steady-state serving.
//!
//! Every keep-alive connection of the HTTP front-end owns one
//! [`ConnScratch`]: the socket read buffer, the request body buffer, the
//! response body buffer, and the decoded state matrix ([`StateArena`]) all
//! live for the whole connection and are *reused* across requests.  After
//! the first few requests warm the capacities up, the framing and codec
//! layers of a decide request perform no heap allocation at all — the
//! mempool discipline the binary wire codec was paired with (ROADMAP
//! item 4).  Clients get the same treatment:
//! [`MiniClient`](crate::http::MiniClient) and
//! [`RemoteShard`](crate::remote::RemoteShard) hold persistent read
//! buffers instead of allocating one per response.
//!
//! The arena never shrinks.  That is deliberate: request sizes on one
//! connection are strongly autocorrelated (a client that sent a 512-state
//! batch will send another), and the front-end's `max_body_bytes` /
//! `max_batch` limits already bound the worst case per connection.

/// A reusable matrix of decoded state vectors.
///
/// Both wire codecs ([`crate::wire`] JSON and [`crate::frame`] binary)
/// decode request states into one of these instead of building a fresh
/// `Vec<Vec<f64>>` per request: [`reset`](StateArena::reset) logically
/// empties the arena while keeping every row's allocation, and
/// [`push_row`](StateArena::push_row) hands back a cleared row to fill —
/// either a recycled one or, only while the arena is still growing, a new
/// one.  [`rows`](StateArena::rows) then views exactly the live rows as the
/// `&[Vec<f64>]` shape the serving backends take, so the arena drops into
/// the existing [`ShieldBackend`](crate::http::ShieldBackend) API without
/// copying.
#[derive(Debug, Default)]
pub struct StateArena {
    rows: Vec<Vec<f64>>,
    live: usize,
}

impl StateArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        StateArena::default()
    }

    /// Logically empties the arena, retaining every row allocation for
    /// reuse by the next request.
    pub fn reset(&mut self) {
        self.live = 0;
    }

    /// Number of live rows (states decoded since the last reset).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no rows are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Returns a cleared row to decode the next state into, recycling a
    /// spare row when one exists.
    pub fn push_row(&mut self) -> &mut Vec<f64> {
        if self.live == self.rows.len() {
            self.rows.push(Vec::new());
        }
        let row = &mut self.rows[self.live];
        row.clear();
        self.live += 1;
        row
    }

    /// The live rows, in decode order — the exact shape `decide_batch`
    /// takes.
    #[must_use]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows[..self.live]
    }
}

/// The per-connection scratch pool of the HTTP front-end: every buffer a
/// keep-alive request loop needs, owned once per connection.
#[derive(Debug, Default)]
pub(crate) struct ConnScratch {
    /// Socket read accumulation: request head plus any pipelined bytes.
    pub(crate) read_buf: Vec<u8>,
    /// The current request's body.
    pub(crate) body: Vec<u8>,
    /// Response body build buffer, reclaimed after each write.
    pub(crate) out: Vec<u8>,
    /// Decoded state matrix for decide requests.
    pub(crate) states: StateArena,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_recycles_row_allocations() {
        let mut arena = StateArena::new();
        arena.push_row().extend_from_slice(&[1.0, 2.0]);
        arena.push_row().extend_from_slice(&[3.0, 4.0]);
        assert_eq!(arena.rows(), &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let first_ptr = arena.rows()[0].as_ptr();
        arena.reset();
        assert!(arena.is_empty());
        arena.push_row().extend_from_slice(&[5.0]);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.rows(), &[vec![5.0]]);
        // The recycled row kept its allocation.
        assert_eq!(arena.rows()[0].as_ptr(), first_ptr);
    }
}
