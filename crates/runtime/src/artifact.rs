//! Persistent shield artifacts: a versioned, self-describing container that
//! round-trips a verified [`Shield`] together with its [`NeuralPolicy`]
//! oracle.
//!
//! # Wire format (version 2)
//!
//! ```text
//! magic   4 bytes   b"VRLA"
//! version u32       FORMAT_VERSION
//! length  u64       payload length in bytes
//! payload length    encoded portable shield + oracle + label [+ table config]
//! check   u64       FNV-1a of the payload
//! ```
//!
//! Version 2 appends an optional decision-table configuration
//! ([`TableConfig`]) after the label; version-1 artifacts (no trailing
//! config) are still accepted and deploy without a table.  The table itself
//! is **never serialized** — it is derived data, rebuilt from the config by
//! [`ShieldArtifact::from_bytes`] — so a loaded table can never disagree
//! with the shield it serves.
//!
//! The version gate is otherwise strict: an artifact written by a newer
//! format is rejected with [`ArtifactError::UnsupportedVersion`] instead of
//! being misparsed, and any payload corruption fails the checksum before the
//! decoder runs.  Decoding then re-validates every structural invariant via
//! the `from_portable` constructors, so a loaded artifact is exactly as
//! trustworthy as one just produced by the synthesis pipeline.

use crate::codec::{fnv1a64, DecodeError, Reader, Writer};
use std::fmt;
use std::path::Path;
use vrl::dynamics::PortableEnvironment;
use vrl::poly::PortablePolynomial;
use vrl::rl::{NeuralPolicy, PortableNeuralPolicy};
use vrl::shield::{PortableShield, PortableShieldPiece, Shield, TableConfig};
use vrl::synth::{PortableGuardedPolicy, PortableProgram};
use vrl::verify::PortableCertificate;

/// Current artifact format version.  Bump on any wire-format change.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest artifact format version this build still reads.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Leading magic bytes of every artifact.
pub const MAGIC: [u8; 4] = *b"VRLA";

/// Why loading or constructing an artifact failed.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the backing file failed.
    Io(std::io::Error),
    /// The input does not start with the artifact magic bytes.
    BadMagic,
    /// The artifact was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The header declares more payload than the input contains.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum did not match (corruption).
    ChecksumMismatch {
        /// Checksum stored in the artifact.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The payload bytes could not be decoded.
    Decode(DecodeError),
    /// The decoded data violates a structural invariant (e.g. mismatched
    /// dimensions between shield and oracle).
    Invalid(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ArtifactError::BadMagic => write!(f, "not a shield artifact (bad magic bytes)"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads version {supported})"
            ),
            ArtifactError::Truncated { expected, actual } => {
                write!(f, "artifact truncated: header promises {expected} payload bytes, {actual} present")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact payload corrupted: stored checksum {stored:#018x}, computed {computed:#018x}"
            ),
            ArtifactError::Decode(e) => write!(f, "artifact payload malformed: {e}"),
            ArtifactError::Invalid(msg) => write!(f, "artifact contents invalid: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<DecodeError> for ArtifactError {
    fn from(e: DecodeError) -> Self {
        ArtifactError::Decode(e)
    }
}

/// Summary of an artifact's contents, cheap to derive and display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMetadata {
    /// Name of the environment the shield was synthesized for.
    pub environment: String,
    /// State dimension of the deployment.
    pub state_dim: usize,
    /// Action dimension of the deployment.
    pub action_dim: usize,
    /// Number of verified `(program, invariant)` pieces.
    pub pieces: usize,
    /// Number of oracle network parameters.
    pub oracle_parameters: usize,
    /// Free-form operator label (empty by default).
    pub label: String,
}

impl fmt::Display for ArtifactMetadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}→{} dims, {} pieces, {} oracle params)",
            self.environment, self.state_dim, self.action_dim, self.pieces, self.oracle_parameters
        )?;
        if !self.label.is_empty() {
            write!(f, " [{}]", self.label)?;
        }
        Ok(())
    }
}

/// A deployable bundle: a verified shield, the neural oracle it monitors,
/// and an operator label — everything `vrl-runtime` needs to serve
/// decisions, persistable to bytes or a file.
#[derive(Debug, Clone)]
pub struct ShieldArtifact {
    shield: Shield,
    oracle: NeuralPolicy,
    label: String,
    table_config: Option<TableConfig>,
}

impl ShieldArtifact {
    /// Bundles a shield with the oracle it monitors.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Invalid`] when the oracle's input/output
    /// dimensions disagree with the shield's environment.
    pub fn new(shield: Shield, oracle: NeuralPolicy) -> Result<Self, ArtifactError> {
        use vrl::dynamics::Policy;
        if oracle.state_dim() != shield.env().state_dim() {
            return Err(ArtifactError::Invalid(format!(
                "oracle consumes {}-dimensional states but the environment has {}",
                oracle.state_dim(),
                shield.env().state_dim()
            )));
        }
        if oracle.action_dim() != shield.env().action_dim() {
            return Err(ArtifactError::Invalid(format!(
                "oracle produces {}-dimensional actions but the environment expects {}",
                oracle.action_dim(),
                shield.env().action_dim()
            )));
        }
        // A shield that already carries a table keeps it: capture its config
        // so serialization round-trips the deployment intent.
        let table_config = shield.table().map(|t| t.config().clone());
        Ok(ShieldArtifact {
            shield,
            oracle,
            label: String::new(),
            table_config,
        })
    }

    /// Attaches a free-form operator label (persisted with the artifact).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches a decision-table configuration and rebuilds the shield's
    /// table from it immediately, so [`ShieldArtifact::shield`] serves
    /// table-dispatched decisions.  The config is persisted with the
    /// artifact (the table itself never is — loaders rebuild it).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Invalid`] when the table cannot be built
    /// for this shield and config.
    pub fn with_table_config(mut self, config: TableConfig) -> Result<Self, ArtifactError> {
        self.shield = self
            .shield
            .with_table(&config)
            .map_err(|e| ArtifactError::Invalid(e.to_string()))?;
        self.table_config = Some(config);
        Ok(self)
    }

    /// Drops the decision-table configuration (and the shield's table):
    /// the artifact deploys on the exact compiled path only.
    pub fn without_table_config(mut self) -> Self {
        self.shield = self.shield.without_table();
        self.table_config = None;
        self
    }

    /// The persisted decision-table configuration, when one is attached.
    pub fn table_config(&self) -> Option<&TableConfig> {
        self.table_config.as_ref()
    }

    /// The verified shield.
    pub fn shield(&self) -> &Shield {
        &self.shield
    }

    /// The neural oracle the shield monitors.
    pub fn oracle(&self) -> &NeuralPolicy {
        &self.oracle
    }

    /// The operator label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Derives the display metadata of this artifact.
    pub fn metadata(&self) -> ArtifactMetadata {
        use vrl::rl::ParametricPolicy;
        ArtifactMetadata {
            environment: self.shield.env().name().to_string(),
            state_dim: self.shield.env().state_dim(),
            action_dim: self.shield.env().action_dim(),
            pieces: self.shield.num_pieces(),
            oracle_parameters: self.oracle.num_parameters(),
            label: self.label.clone(),
        }
    }

    /// Serializes the artifact to the versioned wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        encode_shield(&mut payload, &self.shield.to_portable());
        encode_neural_policy(&mut payload, &self.oracle.to_portable());
        payload.put_str(&self.label);
        encode_table_config(&mut payload, self.table_config.as_ref());
        let payload = payload.into_bytes();
        let mut out = Writer::new();
        out.put_u8(MAGIC[0]);
        out.put_u8(MAGIC[1]);
        out.put_u8(MAGIC[2]);
        out.put_u8(MAGIC[3]);
        out.put_u32(FORMAT_VERSION);
        out.put_u64(payload.len() as u64);
        let checksum = fnv1a64(&payload);
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Deserializes an artifact, verifying magic, version, length, checksum,
    /// and every structural invariant.
    ///
    /// # Errors
    ///
    /// See [`ArtifactError`]; corrupted or incompatible inputs never produce
    /// a partially constructed artifact.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut header = Reader::new(bytes);
        let magic = [
            header.get_u8()?,
            header.get_u8()?,
            header.get_u8()?,
            header.get_u8()?,
        ];
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = header.get_u32()?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let declared_len = header.get_u64()?;
        let body_start = header.position();
        // Checked arithmetic: the length field is read *before* the checksum
        // protects it, so a corrupted value must produce an error, never an
        // overflow panic or a wrapped slice bound.
        let available = (bytes.len() - body_start).saturating_sub(8) as u64;
        if declared_len > available {
            return Err(ArtifactError::Truncated {
                expected: u64::min(declared_len, usize::MAX as u64) as usize,
                actual: available as usize,
            });
        }
        let payload_len = declared_len as usize;
        let expected_total = body_start + payload_len + 8;
        if bytes.len() > expected_total {
            return Err(ArtifactError::Decode(DecodeError::TrailingBytes {
                remaining: bytes.len() - expected_total,
            }));
        }
        let payload = &bytes[body_start..body_start + payload_len];
        let stored = u64::from_le_bytes(
            bytes[body_start + payload_len..expected_total]
                .try_into()
                .expect("8 checksum bytes"),
        );
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }
        let mut reader = Reader::new(payload);
        let portable_shield = decode_shield(&mut reader)?;
        let portable_oracle = decode_neural_policy(&mut reader)?;
        let label = reader.get_str()?;
        // Version 1 payloads end at the label; version 2 appends the
        // optional table config.
        let table_config = if version >= 2 {
            decode_table_config(&mut reader)?
        } else {
            None
        };
        reader.finish()?;
        let shield = Shield::from_portable(&portable_shield).map_err(ArtifactError::Invalid)?;
        let oracle =
            NeuralPolicy::from_portable(&portable_oracle).map_err(ArtifactError::Invalid)?;
        let artifact = ShieldArtifact::new(shield, oracle)?.with_label(label);
        // The table is derived data: rebuild it from the config here (under
        // the `shield.table_build` span) rather than trusting serialized
        // cells that could go stale against the shield.
        match table_config {
            Some(config) => artifact.with_table_config(config),
            None => Ok(artifact),
        }
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an artifact from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure, otherwise the
    /// same validation errors as [`ShieldArtifact::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        ShieldArtifact::from_bytes(&bytes)
    }
}

fn encode_polynomial(w: &mut Writer, poly: &PortablePolynomial) {
    w.put_u32(poly.nvars);
    w.put_len(poly.terms.len());
    for (exps, coeff) in &poly.terms {
        w.put_u32_slice(exps);
        w.put_f64(*coeff);
    }
}

fn decode_polynomial(r: &mut Reader<'_>) -> Result<PortablePolynomial, DecodeError> {
    let nvars = r.get_u32()?;
    let nterms = r.get_len()?;
    let mut terms = Vec::with_capacity(nterms);
    for _ in 0..nterms {
        let exps = r.get_u32_vec()?;
        let coeff = r.get_f64()?;
        terms.push((exps, coeff));
    }
    Ok(PortablePolynomial { nvars, terms })
}

fn encode_environment(w: &mut Writer, env: &PortableEnvironment) {
    w.put_str(&env.name);
    w.put_len(env.variable_names.len());
    for name in &env.variable_names {
        w.put_str(name);
    }
    w.put_u32(env.state_dim);
    w.put_u32(env.action_dim);
    w.put_len(env.derivatives.len());
    for d in &env.derivatives {
        encode_polynomial(w, d);
    }
    w.put_f64(env.dt);
    w.put_u8(env.integrator);
    w.put_f64_slice(&env.init_lows);
    w.put_f64_slice(&env.init_highs);
    w.put_f64_slice(&env.safe_lows);
    w.put_f64_slice(&env.safe_highs);
    w.put_len(env.obstacles.len());
    for (lows, highs) in &env.obstacles {
        w.put_f64_slice(lows);
        w.put_f64_slice(highs);
    }
    w.put_f64_slice(&env.disturbance_lower);
    w.put_f64_slice(&env.disturbance_upper);
    w.put_f64_slice(&env.action_low);
    w.put_f64_slice(&env.action_high);
    w.put_u64(env.horizon);
}

fn decode_environment(r: &mut Reader<'_>) -> Result<PortableEnvironment, DecodeError> {
    let name = r.get_str()?;
    let n_names = r.get_len()?;
    let mut variable_names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        variable_names.push(r.get_str()?);
    }
    let state_dim = r.get_u32()?;
    let action_dim = r.get_u32()?;
    let n_derivs = r.get_len()?;
    let mut derivatives = Vec::with_capacity(n_derivs);
    for _ in 0..n_derivs {
        derivatives.push(decode_polynomial(r)?);
    }
    let dt = r.get_f64()?;
    let integrator = r.get_u8()?;
    let init_lows = r.get_f64_vec()?;
    let init_highs = r.get_f64_vec()?;
    let safe_lows = r.get_f64_vec()?;
    let safe_highs = r.get_f64_vec()?;
    let n_obstacles = r.get_len()?;
    let mut obstacles = Vec::with_capacity(n_obstacles);
    for _ in 0..n_obstacles {
        let lows = r.get_f64_vec()?;
        let highs = r.get_f64_vec()?;
        obstacles.push((lows, highs));
    }
    let disturbance_lower = r.get_f64_vec()?;
    let disturbance_upper = r.get_f64_vec()?;
    let action_low = r.get_f64_vec()?;
    let action_high = r.get_f64_vec()?;
    let horizon = r.get_u64()?;
    Ok(PortableEnvironment {
        name,
        variable_names,
        state_dim,
        action_dim,
        derivatives,
        dt,
        integrator,
        init_lows,
        init_highs,
        safe_lows,
        safe_highs,
        obstacles,
        disturbance_lower,
        disturbance_upper,
        action_low,
        action_high,
        horizon,
    })
}

fn encode_program(w: &mut Writer, program: &PortableProgram) {
    w.put_len(program.branches.len());
    for branch in &program.branches {
        match &branch.guard {
            None => w.put_u8(0),
            Some(g) => {
                w.put_u8(1);
                encode_polynomial(w, g);
            }
        }
        w.put_len(branch.actions.len());
        for a in &branch.actions {
            encode_polynomial(w, a);
        }
    }
}

fn decode_program(r: &mut Reader<'_>) -> Result<PortableProgram, DecodeError> {
    let n_branches = r.get_len()?;
    let mut branches = Vec::with_capacity(n_branches);
    for _ in 0..n_branches {
        let guard = match r.get_u8()? {
            0 => None,
            _ => Some(decode_polynomial(r)?),
        };
        let n_actions = r.get_len()?;
        let mut actions = Vec::with_capacity(n_actions);
        for _ in 0..n_actions {
            actions.push(decode_polynomial(r)?);
        }
        branches.push(PortableGuardedPolicy { guard, actions });
    }
    Ok(PortableProgram { branches })
}

fn encode_shield(w: &mut Writer, shield: &PortableShield) {
    encode_environment(w, &shield.env);
    w.put_len(shield.pieces.len());
    for piece in &shield.pieces {
        encode_program(w, &piece.program);
        encode_polynomial(w, &piece.invariant.polynomial);
    }
}

fn decode_shield(r: &mut Reader<'_>) -> Result<PortableShield, DecodeError> {
    let env = decode_environment(r)?;
    let n_pieces = r.get_len()?;
    let mut pieces = Vec::with_capacity(n_pieces);
    for _ in 0..n_pieces {
        let program = decode_program(r)?;
        let polynomial = decode_polynomial(r)?;
        pieces.push(PortableShieldPiece {
            program,
            invariant: PortableCertificate { polynomial },
        });
    }
    Ok(PortableShield { env, pieces })
}

fn encode_table_config(w: &mut Writer, config: Option<&TableConfig>) {
    match config {
        None => w.put_u8(0),
        Some(config) => {
            w.put_u8(1);
            w.put_len(config.resolution.len());
            for &r in &config.resolution {
                w.put_u64(r as u64);
            }
            w.put_u64(config.max_cells as u64);
            w.put_u64(config.build_budget as u64);
        }
    }
}

fn decode_table_config(r: &mut Reader<'_>) -> Result<Option<TableConfig>, DecodeError> {
    match r.get_u8()? {
        0 => Ok(None),
        _ => {
            let n = r.get_len()?;
            let mut resolution = Vec::with_capacity(n);
            for _ in 0..n {
                resolution.push(r.get_u64()? as usize);
            }
            let max_cells = r.get_u64()? as usize;
            let build_budget = r.get_u64()? as usize;
            Ok(Some(TableConfig {
                resolution,
                max_cells,
                build_budget,
            }))
        }
    }
}

fn encode_neural_policy(w: &mut Writer, policy: &PortableNeuralPolicy) {
    w.put_u32_slice(&policy.network.layer_sizes);
    w.put_len(policy.network.activations.len());
    for &tag in &policy.network.activations {
        w.put_u8(tag);
    }
    w.put_f64_slice(&policy.network.parameters);
    w.put_f64(policy.action_scale);
}

fn decode_neural_policy(r: &mut Reader<'_>) -> Result<PortableNeuralPolicy, DecodeError> {
    let layer_sizes = r.get_u32_vec()?;
    let n_acts = r.get_len()?;
    let mut activations = Vec::with_capacity(n_acts);
    for _ in 0..n_acts {
        activations.push(r.get_u8()?);
    }
    let parameters = r.get_f64_vec()?;
    let action_scale = r.get_f64()?;
    Ok(PortableNeuralPolicy {
        network: vrl::nn::PortableMlp {
            layer_sizes,
            activations,
            parameters,
        },
        action_scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_artifact;

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let artifact = toy_artifact(7).with_label("canary");
        let bytes = artifact.to_bytes();
        let restored = ShieldArtifact::from_bytes(&bytes).expect("round trip succeeds");
        assert_eq!(restored.label(), "canary");
        assert_eq!(restored.metadata(), artifact.metadata());
        // Serialization is deterministic.
        assert_eq!(restored.to_bytes(), bytes);
        // Identical decisions everywhere we look.
        use vrl::dynamics::Policy;
        for x in [-0.9, -0.3, 0.0, 0.4, 0.88, 1.2] {
            let state = [x];
            assert_eq!(
                restored.oracle().action(&state),
                artifact.oracle().action(&state)
            );
            let proposed = artifact.oracle().action(&state);
            assert_eq!(
                restored.shield().decide(&state, &proposed),
                artifact.shield().decide(&state, &proposed)
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let artifact = toy_artifact(3);
        let dir = std::env::temp_dir().join("vrl-runtime-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.shield");
        artifact.save(&path).unwrap();
        let loaded = ShieldArtifact::load(&path).unwrap();
        assert_eq!(loaded.metadata(), artifact.metadata());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let missing = std::env::temp_dir().join("vrl-runtime-no-such-artifact.shield");
        assert!(matches!(
            ShieldArtifact::load(&missing),
            Err(ArtifactError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = toy_artifact(1).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ShieldArtifact::from_bytes(&bytes),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = toy_artifact(1).to_bytes();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            ShieldArtifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let bytes = toy_artifact(1).to_bytes();
        for offset in [16, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x40;
            assert!(
                matches!(
                    ShieldArtifact::from_bytes(&corrupted),
                    Err(ArtifactError::ChecksumMismatch { .. })
                ),
                "flipping byte {offset} must fail the checksum"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = toy_artifact(1).to_bytes();
        assert!(matches!(
            ShieldArtifact::from_bytes(&bytes[..bytes.len() - 20]),
            Err(ArtifactError::Truncated { .. })
        ));
        assert!(ShieldArtifact::from_bytes(&bytes[..3]).is_err());
    }

    #[test]
    fn corrupted_length_field_is_rejected_without_panicking() {
        // The length field is the one header value read before the checksum
        // can protect it: a corrupted huge value must yield Err, not an
        // overflow panic or a wrapped slice bound.
        let bytes = toy_artifact(1).to_bytes();
        for bad_len in [u64::MAX, u64::MAX - 7, u64::MAX / 2, 1 << 60] {
            let mut corrupted = bytes.clone();
            corrupted[8..16].copy_from_slice(&bad_len.to_le_bytes());
            assert!(
                matches!(
                    ShieldArtifact::from_bytes(&corrupted),
                    Err(ArtifactError::Truncated { .. })
                ),
                "length {bad_len:#x} must be rejected as truncation"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = toy_artifact(1).to_bytes();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            ShieldArtifact::from_bytes(&bytes),
            Err(ArtifactError::Decode(DecodeError::TrailingBytes { .. }))
        ));
    }

    #[test]
    fn table_config_round_trips_and_rebuilds_the_table() {
        let artifact = toy_artifact(2)
            .with_table_config(TableConfig::uniform(32))
            .expect("the toy safe box grids cleanly");
        assert!(artifact.shield().table().is_some());
        let restored = ShieldArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(restored.table_config(), artifact.table_config());
        // The table is rebuilt, not deserialized — and the rebuild is
        // deterministic, so the tables are identical cell for cell.
        assert_eq!(
            restored.shield().table().unwrap(),
            artifact.shield().table().unwrap()
        );
        for x in [-0.9, -0.3, 0.0, 0.4, 0.88, 1.2] {
            assert_eq!(
                restored.shield().decide(&[x], &[0.5]),
                artifact.shield().decide(&[x], &[0.5])
            );
        }
        // Dropping the config drops the table.
        let stripped = restored.without_table_config();
        assert!(stripped.table_config().is_none());
        assert!(stripped.shield().table().is_none());
        assert!(ShieldArtifact::from_bytes(&stripped.to_bytes())
            .unwrap()
            .table_config()
            .is_none());
    }

    #[test]
    fn rejected_table_configs_do_not_build_artifacts() {
        let bad = TableConfig {
            resolution: vec![1000],
            max_cells: 10,
            ..TableConfig::default()
        };
        assert!(matches!(
            toy_artifact(2).with_table_config(bad),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn version_1_artifacts_still_load() {
        // A true version-1 stream is the version-2 stream minus the
        // trailing no-table-config flag byte: reconstruct one and check it
        // still loads (without a table).
        let artifact = toy_artifact(2);
        let bytes = artifact.to_bytes();
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let payload = &bytes[16..16 + payload_len - 1];
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v1.extend_from_slice(payload);
        v1.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        let restored = ShieldArtifact::from_bytes(&v1).expect("version 1 still loads");
        assert!(restored.table_config().is_none());
        assert_eq!(restored.metadata(), artifact.metadata());
    }

    #[test]
    fn mismatched_oracle_dimensions_are_rejected() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let artifact = toy_artifact(1);
        let mut rng = SmallRng::seed_from_u64(5);
        let wrong = NeuralPolicy::new(3, 1, &[4], 1.0, &mut rng);
        assert!(matches!(
            ShieldArtifact::new(artifact.shield().clone(), wrong),
            Err(ArtifactError::Invalid(_))
        ));
    }
}
