//! Replicated, self-healing routing across remote shield shards.
//!
//! [`FleetRouter`] is the distributed counterpart of
//! [`ShardRouter`](crate::router::ShardRouter): where the latter spreads
//! deployments over in-process [`ShieldServer`](crate::server::ShieldServer)
//! shards, the fleet spreads them over [`RemoteShard`]s — processes reached
//! over the HTTP wire — and replicates each deployment on
//! [`FleetConfig::replicas`] shards (default 2) so losing a shard loses no
//! deployment.
//!
//! # Placement and failover
//!
//! Replica sets come from [`Placement::ranked_shards`]: with rendezvous
//! hashing the primary is the rank-1 shard and the failover replica the
//! rank-2 shard, so both are stable under fleet growth.  `decide` tries the
//! replicas in rank order and **fails over** when a replica is marked down,
//! its circuit breaker is open, or the request fails at the transport level
//! after retries; a success on a non-primary replica bumps
//! `vrl_fleet_failovers_total`.  When every replica fails the caller gets
//! [`ServeError::Unavailable`] — over HTTP, a structured `503` with a
//! `Retry-After` header — and `vrl_fleet_unavailable_total` bumps.
//!
//! # Health probing and rehydration
//!
//! A background prober (enabled by [`FleetConfig::probe_interval`], or
//! driven manually with [`FleetRouter::probe_now`] in tests) hits each
//! shard's `/healthz` on a cadence:
//!
//! * a failing probe marks the shard **down**, so live traffic skips it
//!   without burning its deadline budget (transport failures on the request
//!   path mark it down too);
//! * a succeeding probe marks the shard **up** and — because probes feed
//!   the shard's circuit breaker — heals an open breaker without gambling
//!   a live request on it;
//! * the probe's deployment report is compared against what the registry
//!   says the shard should hold; anything missing (the shard restarted
//!   empty) is **rehydrated** from the canonical artifact bytes, bumping
//!   `vrl_fleet_rehydrations_total`.  Only missing deployments are pushed,
//!   so a healthy shard sees no generation churn.
//!
//! # Telemetry handoff
//!
//! Each replica meters its own traffic, so after a failover the fleet-wide
//! truth is spread across shards — and a dead shard cannot be asked for its
//! share.  The router therefore keeps a **ledger**: the last telemetry
//! snapshot successfully fetched from each `(deployment, shard)` pair.
//! [`FleetRouter`]'s telemetry sums counters across replicas, using the
//! live value when a replica answers and the ledger entry when it does not
//! — so counters survive a shard death instead of dropping to zero
//! (closing the gap noted when the telemetry estimator contract was
//! documented).  Latency percentiles are not summable; the fleet reports
//! the first reachable replica's (they meter the same decide path).

use crate::artifact::ShieldArtifact;
use crate::http::ShieldBackend;
use crate::remote::{RemoteShard, RemoteShardConfig};
use crate::router::Placement;
use crate::server::ServeError;
use crate::telemetry::DeploymentTelemetry;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use vrl::shield::ShieldDecision;

/// Tunables of a [`FleetRouter`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Replicas per deployment (clamped to the fleet size).  2 means
    /// primary + one failover.
    pub replicas: usize,
    /// Placement function for replica sets (see
    /// [`Placement::ranked_shards`]).
    pub placement: Placement,
    /// Cadence of the background health prober; `None` disables the
    /// thread (tests drive [`FleetRouter::probe_now`] directly).
    pub probe_interval: Option<Duration>,
    /// `Retry-After` advertised when every replica of a deployment is
    /// down.
    pub retry_after: Duration,
    /// Deadline/retry/breaker tuning applied to every shard client
    /// constructed by [`FleetRouter::new`].
    pub shard_config: RemoteShardConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            placement: Placement::default(),
            probe_interval: Some(Duration::from_millis(500)),
            retry_after: Duration::from_secs(1),
            shard_config: RemoteShardConfig::default(),
        }
    }
}

/// One shard plus its prober-maintained liveness flag.
#[derive(Debug)]
struct ShardState {
    shard: RemoteShard,
    /// Flipped by the prober (and pessimistically by transport failures on
    /// the request path); down shards are skipped by live traffic.
    up: AtomicBool,
}

/// What the registry knows about one deployment.
#[derive(Debug, Clone)]
struct RegistryEntry {
    /// Canonical checksummed artifact bytes — the rehydration source.
    bytes: Vec<u8>,
    /// Highest generation any replica reported for this deployment.
    generation: u64,
}

#[derive(Debug, Default)]
struct FleetInner {
    registry: HashMap<String, RegistryEntry>,
    /// Telemetry ledger: last snapshot successfully fetched per
    /// `(deployment, shard index)`.
    ledger: HashMap<(String, usize), DeploymentTelemetry>,
}

/// The shared core: everything both callers and the prober thread touch.
#[derive(Debug)]
struct FleetCore {
    shards: Vec<ShardState>,
    config: FleetConfig,
    inner: RwLock<FleetInner>,
}

/// Replicated router over remote shards — see the module docs.
///
/// Implements [`ShieldBackend`], so an
/// [`HttpFrontend`](crate::http::HttpFrontend) can serve a whole fleet
/// behind one address.
#[derive(Debug)]
pub struct FleetRouter {
    core: Arc<FleetCore>,
    stop: Arc<AtomicBool>,
    prober: Option<JoinHandle<()>>,
}

impl FleetCore {
    fn replicas_for(&self, name: &str) -> Vec<usize> {
        self.config
            .placement
            .ranked_shards(name, self.shards.len(), self.config.replicas.max(1))
    }

    fn unavailable(&self, deployment: &str, detail: String) -> ServeError {
        crate::obs::fleet_unavailable().inc();
        ServeError::Unavailable {
            deployment: deployment.to_string(),
            detail,
            retry_after: self.config.retry_after,
        }
    }

    /// Marks a shard down after a transport-level failure so later requests
    /// skip it until a probe brings it back.
    fn mark_down(&self, index: usize) {
        self.shards[index].up.store(false, Ordering::SeqCst);
    }

    fn deploy(&self, name: &str, bytes: &[u8]) -> Result<u64, ServeError> {
        let replicas = self.replicas_for(name);
        let mut best_generation: Option<u64> = None;
        let mut last_error: Option<ServeError> = None;
        for &index in &replicas {
            match self.shards[index].shard.put_artifact_bytes(name, bytes) {
                Ok(generation) => {
                    best_generation =
                        Some(best_generation.map_or(generation, |g| g.max(generation)));
                }
                Err(error) => {
                    if matches!(error, ServeError::Remote(_)) {
                        self.mark_down(index);
                    } else {
                        // The shard is alive and rejected the artifact —
                        // every replica would reject it the same way.
                        return Err(error);
                    }
                    last_error = Some(error);
                }
            }
        }
        match best_generation {
            Some(generation) => {
                let mut inner = self.inner.write().expect("fleet lock poisoned");
                inner.registry.insert(
                    name.to_string(),
                    RegistryEntry {
                        bytes: bytes.to_vec(),
                        generation,
                    },
                );
                Ok(generation)
            }
            None => {
                let detail = last_error
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "no replicas".to_string());
                Err(self.unavailable(name, detail))
            }
        }
    }

    fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        if !self
            .inner
            .read()
            .expect("fleet lock poisoned")
            .registry
            .contains_key(name)
        {
            return Err(ServeError::UnknownDeployment(name.to_string()));
        }
        let replicas = self.replicas_for(name);
        let mut last_detail = String::from("all replicas marked down");
        for (rank, &index) in replicas.iter().enumerate() {
            if !self.shards[index].up.load(Ordering::SeqCst) {
                continue;
            }
            match self.shards[index].shard.decide_batch_remote(name, states) {
                Ok(decisions) => {
                    if rank > 0 {
                        crate::obs::fleet_failovers().inc();
                    }
                    return Ok(decisions);
                }
                Err(ServeError::Remote(remote)) => {
                    self.mark_down(index);
                    last_detail = remote.to_string();
                }
                // A 404 from a shard for a registered deployment means the
                // shard lost it (restarted empty); fail over and let the
                // prober rehydrate it.
                Err(ServeError::UnknownDeployment(_)) => {
                    last_detail = format!("shard {index} lost the deployment");
                }
                // Any other structured answer is definitive: the shard is
                // healthy and the request itself is at fault.
                Err(error) => return Err(error),
            }
        }
        Err(self.unavailable(name, last_detail))
    }

    fn telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        if !self
            .inner
            .read()
            .expect("fleet lock poisoned")
            .registry
            .contains_key(name)
        {
            return Err(ServeError::UnknownDeployment(name.to_string()));
        }
        let replicas = self.replicas_for(name);
        let mut parts: Vec<DeploymentTelemetry> = Vec::new();
        for &index in &replicas {
            let live = if self.shards[index].up.load(Ordering::SeqCst) {
                self.shards[index].shard.fetch_telemetry(name).ok()
            } else {
                None
            };
            match live {
                Some(snapshot) => {
                    self.inner
                        .write()
                        .expect("fleet lock poisoned")
                        .ledger
                        .insert((name.to_string(), index), snapshot.clone());
                    parts.push(snapshot);
                }
                None => {
                    // The replica is unreachable: its traffic still counts,
                    // from the last snapshot we managed to fetch.
                    let inner = self.inner.read().expect("fleet lock poisoned");
                    if let Some(cached) = inner.ledger.get(&(name.to_string(), index)) {
                        parts.push(cached.clone());
                    }
                }
            }
        }
        if parts.is_empty() {
            return Err(self.unavailable(name, "no replica reachable or cached".to_string()));
        }
        Ok(sum_telemetry(name, &parts))
    }

    fn undeploy(&self, name: &str) -> Result<bool, ServeError> {
        let existed = {
            let mut inner = self.inner.write().expect("fleet lock poisoned");
            let existed = inner.registry.remove(name).is_some();
            inner.ledger.retain(|(n, _), _| n != name);
            existed
        };
        for &index in &self.replicas_for(name) {
            // Best-effort on each replica: a down shard loses the
            // deployment anyway when the registry entry is gone (it will
            // simply not be rehydrated).
            let _ = self.shards[index].shard.undeploy_remote(name);
        }
        Ok(existed)
    }

    /// One synchronous probe cycle over every shard: flip up/down flags,
    /// heal breakers, rehydrate missing deployments.  Returns the shards'
    /// liveness after the cycle.
    fn probe_cycle(&self) -> Vec<bool> {
        let mut liveness = Vec::with_capacity(self.shards.len());
        for (index, state) in self.shards.iter().enumerate() {
            match state.shard.probe() {
                Ok((_uptime, reported)) => {
                    crate::obs::fleet_probes("up").inc();
                    state.up.store(true, Ordering::SeqCst);
                    self.rehydrate_missing(index, &reported);
                    liveness.push(true);
                }
                Err(_) => {
                    crate::obs::fleet_probes("down").inc();
                    state.up.store(false, Ordering::SeqCst);
                    liveness.push(false);
                }
            }
        }
        liveness
    }

    /// Pushes to shard `index` every deployment the registry places there
    /// that the shard's health report does not list.  Pushing only the
    /// missing ones keeps healthy shards free of generation churn.
    fn rehydrate_missing(&self, index: usize, reported: &[(String, u64)]) {
        let expected: Vec<(String, Vec<u8>)> = {
            let inner = self.inner.read().expect("fleet lock poisoned");
            inner
                .registry
                .iter()
                .filter(|(name, _)| self.replicas_for(name).contains(&index))
                .filter(|(name, _)| !reported.iter().any(|(r, _)| r == *name))
                .map(|(name, entry)| (name.clone(), entry.bytes.clone()))
                .collect()
        };
        for (name, bytes) in expected {
            if self.shards[index]
                .shard
                .put_artifact_bytes(&name, &bytes)
                .is_ok()
            {
                crate::obs::fleet_rehydrations().inc();
            }
        }
    }
}

impl FleetRouter {
    /// Builds a fleet over `addrs`, one [`RemoteShard`] per address, all
    /// tuned by [`FleetConfig::shard_config`].  Shards start marked **up**
    /// (the first failed request or probe marks them down); when
    /// [`FleetConfig::probe_interval`] is set, the background prober starts
    /// immediately.
    #[must_use]
    pub fn new(addrs: &[SocketAddr], config: FleetConfig) -> Self {
        let shards = addrs
            .iter()
            .map(|&addr| RemoteShard::with_config(addr, config.shard_config.clone()))
            .collect();
        FleetRouter::from_shards(shards, config)
    }

    /// Builds a fleet from pre-constructed shard clients (lets tests tune
    /// each shard separately).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty.
    #[must_use]
    pub fn from_shards(shards: Vec<RemoteShard>, config: FleetConfig) -> Self {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        let core = Arc::new(FleetCore {
            shards: shards
                .into_iter()
                .map(|shard| ShardState {
                    shard,
                    up: AtomicBool::new(true),
                })
                .collect(),
            config,
            inner: RwLock::new(FleetInner::default()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let prober = core.config.probe_interval.map(|interval| {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("vrl-fleet-probe".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        core.probe_cycle();
                        // Sleep in small slices so shutdown is prompt even
                        // with a long probe interval.
                        let mut remaining = interval;
                        while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
                            let slice = remaining.min(Duration::from_millis(20));
                            std::thread::sleep(slice);
                            remaining = remaining.saturating_sub(slice);
                        }
                    }
                })
                .expect("spawn fleet prober")
        });
        FleetRouter { core, stop, prober }
    }

    /// Number of shards in the fleet.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// The replica set (shard indices, best first) serving `name`.
    #[must_use]
    pub fn replicas_for(&self, name: &str) -> Vec<usize> {
        self.core.replicas_for(name)
    }

    /// Per-shard liveness flags, in shard order.
    #[must_use]
    pub fn shard_liveness(&self) -> Vec<bool> {
        self.core
            .shards
            .iter()
            .map(|s| s.up.load(Ordering::SeqCst))
            .collect()
    }

    /// Runs one synchronous probe cycle (what the background prober does
    /// each tick): flips up/down flags, heals breakers, rehydrates missing
    /// deployments.  Returns per-shard liveness after the cycle.
    pub fn probe_now(&self) -> Vec<bool> {
        self.core.probe_cycle()
    }

    /// Deploys `artifact` to every replica of `name` and records its
    /// canonical bytes for rehydration.  Succeeds when **at least one**
    /// replica accepted (the prober brings lagging replicas up to date);
    /// returns the highest generation any replica reported.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unavailable`] when no replica accepted;
    /// artifact-validation errors from live shards are relayed as-is.
    pub fn deploy(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        self.core.deploy(name, &artifact.to_bytes())
    }

    /// Names of all fleet deployments, sorted.
    #[must_use]
    pub fn deployments(&self) -> Vec<String> {
        let inner = self.core.inner.read().expect("fleet lock poisoned");
        let mut names: Vec<String> = inner.registry.keys().cloned().collect();
        names.sort();
        names
    }

    /// Stops the background prober (if any).  Called automatically on
    /// drop; explicit shutdown makes teardown deterministic in tests.
    pub fn shutdown(mut self) {
        self.stop_prober();
    }

    fn stop_prober(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetRouter {
    fn drop(&mut self) {
        self.stop_prober();
    }
}

impl ShieldBackend for FleetRouter {
    fn put_artifact(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        self.deploy(name, artifact)
    }

    fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        self.core.decide_batch(name, states)
    }

    fn backend_telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        self.core.telemetry(name)
    }

    fn deployment_names(&self) -> Vec<String> {
        self.deployments()
    }

    fn deployment_generations(&self) -> Vec<(String, u64)> {
        let inner = self.core.inner.read().expect("fleet lock poisoned");
        let mut pairs: Vec<(String, u64)> = inner
            .registry
            .iter()
            .map(|(name, entry)| (name.clone(), entry.generation))
            .collect();
        pairs.sort();
        pairs
    }

    fn remove_deployment(&self, name: &str) -> Result<bool, ServeError> {
        self.core.undeploy(name)
    }
}

/// Sums replica telemetry into one fleet-wide snapshot: counters add,
/// generation is the max, the intervention rate is recomputed from the
/// summed counters, and latency percentiles come from the first
/// contributor (they are not summable; every replica meters the same
/// decide path).
fn sum_telemetry(name: &str, parts: &[DeploymentTelemetry]) -> DeploymentTelemetry {
    let mut total = DeploymentTelemetry {
        deployment: name.to_string(),
        generation: 0,
        requests: 0,
        decisions: 0,
        interventions: 0,
        redeploys: 0,
        intervention_rate: 0.0,
        p50_latency: parts[0].p50_latency,
        p99_latency: parts[0].p99_latency,
    };
    for part in parts {
        total.generation = total.generation.max(part.generation);
        total.requests += part.requests;
        total.decisions += part.decisions;
        total.interventions += part.interventions;
        total.redeploys += part.redeploys;
    }
    if total.decisions > 0 {
        total.intervention_rate = total.interventions as f64 / total.decisions as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(requests: u64, decisions: u64, interventions: u64) -> DeploymentTelemetry {
        DeploymentTelemetry {
            deployment: "pend".to_string(),
            generation: 1,
            requests,
            decisions,
            interventions,
            redeploys: 0,
            intervention_rate: if decisions > 0 {
                interventions as f64 / decisions as f64
            } else {
                0.0
            },
            p50_latency: Duration::from_micros(10),
            p99_latency: Duration::from_micros(50),
        }
    }

    #[test]
    fn telemetry_sums_counters_and_recomputes_rate() {
        let a = telemetry(10, 100, 5);
        let mut b = telemetry(4, 60, 11);
        b.generation = 3;
        let total = sum_telemetry("pend", &[a, b]);
        assert_eq!(total.requests, 14);
        assert_eq!(total.decisions, 160);
        assert_eq!(total.interventions, 16);
        assert_eq!(total.generation, 3);
        assert!((total.intervention_rate - 0.1).abs() < 1e-12);
        assert_eq!(total.p50_latency, Duration::from_micros(10));
    }

    #[test]
    fn replica_sets_are_rank_stable_and_distinct() {
        let placement = Placement::Rendezvous;
        for name in ["pendulum", "cartpole", "satellite", "duffing"] {
            let ranked = placement.ranked_shards(name, 4, 2);
            assert_eq!(ranked.len(), 2);
            assert_ne!(ranked[0], ranked[1]);
            assert_eq!(ranked[0], placement.shard_for(name, 4));
        }
    }
}
