//! A minimal self-describing binary codec for shield artifacts.
//!
//! The format is deliberately boring: little-endian fixed-width integers,
//! `f64`s as IEEE-754 bit patterns (so round trips are bit-exact, including
//! infinities), and length-prefixed strings and sequences.  There is no
//! external serialization dependency — the workspace builds hermetically —
//! and no reflection: every artifact component has an explicit
//! encode/decode pair in [`crate::artifact`].

use std::fmt;

/// Maximum length accepted for any single string or sequence while
/// decoding.  The checksum already rejects random corruption; this bound is
/// defense in depth so a crafted length prefix cannot trigger a huge
/// allocation before the payload is even read.
pub const MAX_SEQUENCE_LEN: usize = 1 << 28;

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a value was complete.
    UnexpectedEof {
        /// Byte offset at which more input was needed.
        at: usize,
        /// Number of bytes that were needed.
        needed: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the string.
        at: usize,
    },
    /// A length prefix exceeded the decoder's sequence-length limit.
    LengthTooLarge {
        /// Byte offset of the length prefix.
        at: usize,
        /// The declared length.
        len: u64,
    },
    /// Input remained after the final value.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { at, needed } => {
                write!(
                    f,
                    "unexpected end of input at byte {at} ({needed} more bytes needed)"
                )
            }
            DecodeError::InvalidUtf8 { at } => write!(f, "invalid UTF-8 string at byte {at}"),
            DecodeError::LengthTooLarge { at, len } => {
                write!(
                    f,
                    "length prefix {len} at byte {at} exceeds the decoder limit"
                )
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the final value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink with little-endian primitive writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length prefix for a sequence of `len` elements.
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Writes a length-prefixed sequence of `f64`s.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_len(values.len());
        for &v in values {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed sequence of `u32`s.
    pub fn put_u32_slice(&mut self, values: &[u32]) {
        self.put_len(values.len());
        for &v in values {
            self.put_u32(v);
        }
    }
}

/// Cursor over encoded bytes with little-endian primitive readers.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                at: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a sequence length prefix, enforcing [`MAX_SEQUENCE_LEN`].
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        let at = self.pos;
        let len = self.get_u64()?;
        if len > MAX_SEQUENCE_LEN as u64 {
            return Err(DecodeError::LengthTooLarge { at, len });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len()?;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8 { at })
    }

    /// Reads a length-prefixed sequence of `f64`s.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, DecodeError> {
        let len = self.get_len()?;
        let mut out = Vec::with_capacity(len.min(MAX_SEQUENCE_LEN));
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed sequence of `u32`s.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, DecodeError> {
        let len = self.get_len()?;
        let mut out = Vec::with_capacity(len.min(MAX_SEQUENCE_LEN));
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }
}

/// 64-bit FNV-1a hash, used as the artifact integrity checksum.
///
/// FNV is not cryptographic; the checksum guards against truncation and
/// accidental corruption, not against an adversary, which is the right
/// threat model for artifacts an operator stores on their own disk.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a fold from a previous [`fnv1a64`] /
/// [`fnv1a64_continue`] result, so a hash over a logical concatenation
/// (`fnv1a64_continue(fnv1a64(a), b)` ≡ `fnv1a64(a ‖ b)`) never needs the
/// concatenated buffer — the shard router's per-request placement scoring
/// relies on this to stay allocation-free.
pub fn fnv1a64_continue(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.5);
        w.put_f64(f64::INFINITY);
        w.put_str("pendulum");
        w.put_f64_slice(&[1.0, 2.5]);
        w.put_u32_slice(&[3, 4, 5]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), -0.5);
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_str().unwrap(), "pendulum");
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.0, 2.5]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![3, 4, 5]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(
            r.get_u64(),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_len(),
            Err(DecodeError::LengthTooLarge { .. })
        ));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"artifact"), fnv1a64(b"artifacu"));
    }
}
