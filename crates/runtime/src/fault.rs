//! Deterministic fault injection for the remote-shard transport.
//!
//! Distributed failure handling that is only exercised by real outages is
//! untested code.  This module provides a **chaos proxy** that sits between
//! a [`RemoteShard`](crate::remote::RemoteShard) client and a real
//! [`HttpFrontend`](crate::http::HttpFrontend) shard and misbehaves *on
//! script*: a [`FaultPlan`] assigns one [`Fault`] to each accepted
//! connection, in order.  Because the remote client opens exactly one TCP
//! connection per request attempt, "the 3rd connection" is "the 3rd
//! attempt" — every retry, breaker transition, and failover path can be
//! driven deterministically by a hermetic test, no sleeps-and-hope.
//!
//! The scripted faults cover the transport failure taxonomy:
//!
//! * [`Fault::Pass`] — proxy the request faithfully (the control case);
//! * [`Fault::Disconnect`] — accept, then close without a byte (connection
//!   reset mid-request);
//! * [`Fault::DisconnectMidBody`] — proxy the request, then truncate the
//!   response halfway through its body (the classic partial write);
//! * [`Fault::Delay`] — sit on the request past the client's read deadline
//!   before proxying (a hung or GC-pausing shard);
//! * [`Fault::Status500`] — answer a well-formed `500` envelope without
//!   consulting the upstream (an erroring shard);
//! * [`Fault::Garbage`] — answer bytes that are not HTTP (a corrupted
//!   frame or a non-HTTP process squatting on the port);
//! * [`Fault::Kill`] — close the connection, stop accepting, and release
//!   the port: every later connect is refused, exactly like a crashed
//!   shard process.
//!
//! The proxy handles each connection on its own thread (a delayed
//! connection must not serialize the ones behind it), parses requests and
//! responses by their `Content-Length` framing, and opens a fresh upstream
//! connection per proxied request — mirroring the client's
//! one-connection-per-request discipline.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One scripted misbehaviour, applied to one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Proxy the request and response faithfully.
    Pass,
    /// Accept the connection, then close it without writing a byte.
    Disconnect,
    /// Proxy the request, then send only the head and the first half of
    /// the response body before closing.
    DisconnectMidBody,
    /// Sleep this long before proxying — scripted past the client's read
    /// deadline, this manifests as a read timeout on the client.
    Delay(Duration),
    /// Answer a well-formed HTTP `500` with a structured JSON envelope,
    /// without contacting the upstream.
    Status500,
    /// Answer bytes that do not parse as HTTP, then close.
    Garbage,
    /// Close the connection, stop accepting, and release the listening
    /// port — every subsequent connect is refused, like a crashed process.
    Kill,
}

/// The per-connection fault script of a [`ChaosProxy`].
///
/// Connection `i` (0-based, in accept order) gets `script[i]`; connections
/// past the end of the script get the plan’s default fault.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    script: Vec<Fault>,
    default_fault: Fault,
}

impl FaultPlan {
    /// A plan that applies `script` in accept order, then
    /// [`Fault::Pass`] forever.
    #[must_use]
    pub fn new(script: Vec<Fault>) -> Self {
        FaultPlan {
            script,
            default_fault: Fault::Pass,
        }
    }

    /// Overrides the fault applied past the end of the script.
    #[must_use]
    pub fn with_default(mut self, fault: Fault) -> Self {
        self.default_fault = fault;
        self
    }

    /// The fault scripted for connection `index`.
    #[must_use]
    pub fn fault_for(&self, index: usize) -> Fault {
        self.script
            .get(index)
            .copied()
            .unwrap_or(self.default_fault)
    }
}

/// A scripted man-in-the-middle between a shard client and a real shard —
/// see the module docs.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a loopback port and starts proxying to `upstream` under
    /// `plan`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when no port can be bound.
    pub fn launch(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            std::thread::Builder::new()
                .name("vrl-chaos-proxy".to_string())
                .spawn(move || proxy_loop(&listener, upstream, &plan, &stop, &accepted))?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accepted,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listening address — hand this to the shard client as
    /// the "shard" address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (= client attempts observed).
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops the proxy and releases its port (idempotent with
    /// [`Fault::Kill`], which already did both).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock a still-listening acceptor with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_join();
        }
    }
}

fn proxy_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &FaultPlan,
    stop: &Arc<AtomicBool>,
    accepted: &Arc<AtomicUsize>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let index = accepted.fetch_add(1, Ordering::SeqCst);
        let fault = plan.fault_for(index);
        if fault == Fault::Kill {
            // Close the drawn connection and stop accepting; dropping the
            // listener on exit releases the port, so later connects are
            // refused like against a crashed process.
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        // Each connection on its own thread: a Delay must not serialize
        // the connections scripted after it.
        let handle = std::thread::Builder::new()
            .name("vrl-chaos-conn".to_string())
            .spawn(move || handle_connection(stream, upstream, fault));
        if let Ok(handle) = handle {
            workers.push(handle);
        }
        workers.retain(|w| !w.is_finished());
    }
    for worker in workers {
        let _ = worker.join();
    }
}

fn handle_connection(mut client: TcpStream, upstream: SocketAddr, fault: Fault) {
    let _ = client.set_nodelay(true);
    // A generous frame deadline so a half-written request cannot wedge a
    // proxy thread forever.
    let _ = client.set_read_timeout(Some(Duration::from_secs(10)));
    match fault {
        Fault::Kill => unreachable!("Kill is handled in the accept loop"),
        Fault::Disconnect => {
            let _ = client.shutdown(Shutdown::Both);
        }
        Fault::Status500 => {
            if read_framed(&mut client).is_some() {
                let body =
                    r#"{"error":{"status":500,"code":"chaos_injected","message":"scripted 500"}}"#;
                let response = format!(
                    "HTTP/1.1 500 Internal Server Error\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = client.write_all(response.as_bytes());
            }
            let _ = client.shutdown(Shutdown::Both);
        }
        Fault::Garbage => {
            if read_framed(&mut client).is_some() {
                let _ = client.write_all(b"\x7fGARBAGE\x00\x01\x02 this is not HTTP\r\n\r\n");
            }
            let _ = client.shutdown(Shutdown::Both);
        }
        Fault::Pass | Fault::Delay(_) | Fault::DisconnectMidBody => {
            let Some(request) = read_framed(&mut client) else {
                let _ = client.shutdown(Shutdown::Both);
                return;
            };
            if let Fault::Delay(pause) = fault {
                std::thread::sleep(pause);
            }
            let Some(response) = forward_upstream(upstream, &request) else {
                let _ = client.shutdown(Shutdown::Both);
                return;
            };
            match fault {
                Fault::DisconnectMidBody => {
                    let cut = truncation_point(&response);
                    let _ = client.write_all(&response[..cut]);
                }
                _ => {
                    let _ = client.write_all(&response);
                }
            }
            let _ = client.shutdown(Shutdown::Both);
        }
    }
}

/// Opens a fresh upstream connection, relays `request`, and reads the full
/// framed response.
fn forward_upstream(upstream: SocketAddr, request: &[u8]) -> Option<Vec<u8>> {
    let mut stream = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    stream.write_all(request).ok()?;
    read_framed(&mut stream)
}

/// Reads one `Content-Length`-framed HTTP message (request or response)
/// and returns its raw bytes, head and body.  Returns `None` on EOF,
/// timeout, or an unframeable message.
fn read_framed(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut buffer = Vec::new();
    let head_end = loop {
        if let Some(pos) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buffer.len() > 1 << 20 {
            return None;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buffer[..head_end]).into_owned();
    let content_length: usize = head
        .lines()
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .next()
        .unwrap_or(0);
    let total = head_end + content_length;
    while buffer.len() < total {
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
        }
    }
    buffer.truncate(total);
    Some(buffer)
}

/// Where [`Fault::DisconnectMidBody`] cuts the response: past the head and
/// half of the body, so the client has parsed a healthy-looking head and
/// is mid-body when the connection dies.
fn truncation_point(response: &[u8]) -> usize {
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map_or(response.len(), |pos| pos + 4);
    head_end + (response.len() - head_end) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_scripts_then_defaults() {
        let plan = FaultPlan::new(vec![Fault::Pass, Fault::Status500]);
        assert_eq!(plan.fault_for(0), Fault::Pass);
        assert_eq!(plan.fault_for(1), Fault::Status500);
        assert_eq!(plan.fault_for(2), Fault::Pass);
        let refusing = FaultPlan::new(vec![]).with_default(Fault::Disconnect);
        assert_eq!(refusing.fault_for(7), Fault::Disconnect);
    }

    #[test]
    fn truncation_cuts_mid_body() {
        let response = b"HTTP/1.1 200 OK\r\ncontent-length: 8\r\n\r\nabcdefgh";
        let cut = truncation_point(response);
        let head_end = response.len() - 8;
        assert_eq!(cut, head_end + 4);
    }
}
