//! Deterministic demo deployments shared by benches, examples, and
//! integration tests.
//!
//! These helpers build a *plausible* shield quickly — a linear program
//! guarded by a hand-written ellipsoidal invariant — so code that measures
//! or round-trips the serving layer does not re-run CEGIS synthesis.  They
//! are **not** verified certificates; anything making a safety claim must
//! synthesize through `vrl::pipeline` or `vrl::verify` instead.

use crate::{ArtifactError, ShieldArtifact};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vrl::dynamics::EnvironmentContext;
use vrl::poly::Polynomial;
use vrl::rl::NeuralPolicy;
use vrl::shield::{Shield, ShieldPiece};
use vrl::synth::PolicyProgram;
use vrl::verify::BarrierCertificate;

/// Stabilizing pendulum gains (the paper's running example `P(η, ω)`).
pub const PENDULUM_GAINS: [f64; 2] = [-12.05, -5.87];
/// Ellipsoid radii comfortably inside the pendulum safe region.
pub const PENDULUM_RADII: [f64; 2] = [0.35, 0.9];
/// Hand-tuned stabilizing cartpole gains (see `vrl-benchmarks`' tests).
pub const CARTPOLE_GAINS: [f64; 4] = [1.2, 3.9, 79.0, 15.0];
/// Ellipsoid radii comfortably inside the cartpole safe region.
pub const CARTPOLE_RADII: [f64; 4] = [0.25, 1.2, 0.45, 1.2];

/// The ellipsoidal barrier `Σ (x_i / radii_i)² − 1 ≤ 0` over `env`'s state
/// space.
///
/// # Panics
///
/// Panics if `radii.len() != env.state_dim()` or any radius is not
/// positive.
pub fn ellipsoid_certificate(env: &EnvironmentContext, radii: &[f64]) -> BarrierCertificate {
    let n = env.state_dim();
    assert_eq!(radii.len(), n, "one radius per state dimension is required");
    assert!(radii.iter().all(|r| *r > 0.0), "radii must be positive");
    let mut e = Polynomial::constant(-1.0, n);
    for (i, &r) in radii.iter().enumerate() {
        let x = Polynomial::variable(i, n);
        e = &e + &(&x * &x).scaled(1.0 / (r * r));
    }
    BarrierCertificate::new(e)
}

/// A one-piece shield for `env`: the linear program `a = gains · x` guarded
/// by [`ellipsoid_certificate`]`(env, radii)`.
///
/// # Panics
///
/// Panics on dimension mismatches between `gains`, `radii`, and `env`.
pub fn ellipsoid_shield(env: &EnvironmentContext, gains: &[f64], radii: &[f64]) -> Shield {
    let program = PolicyProgram::linear(&[gains.to_vec()], &[0.0]);
    Shield::new(
        env.clone(),
        vec![ShieldPiece::new(program, ellipsoid_certificate(env, radii))],
    )
}

/// A randomly initialized oracle sized for `env`, with its action scale
/// derived from the environment's saturation bounds (capped at `1e3` so an
/// unbounded environment still yields finite actions).
pub fn demo_oracle(env: &EnvironmentContext, hidden: &[usize], seed: u64) -> NeuralPolicy {
    let scale = env
        .action_high()
        .iter()
        .map(|x| x.abs())
        .fold(1.0f64, f64::max)
        .min(1e3);
    let mut rng = SmallRng::seed_from_u64(seed);
    NeuralPolicy::new(env.state_dim(), env.action_dim(), hidden, scale, &mut rng)
}

/// Bundles [`ellipsoid_shield`] with [`demo_oracle`] into a deployable
/// artifact.
///
/// # Errors
///
/// Propagates [`ShieldArtifact::new`] validation failures (impossible when
/// the inputs come from the same `env`).
pub fn demo_artifact(
    env: &EnvironmentContext,
    gains: &[f64],
    radii: &[f64],
    hidden: &[usize],
    seed: u64,
) -> Result<ShieldArtifact, ArtifactError> {
    ShieldArtifact::new(
        ellipsoid_shield(env, gains, radii),
        demo_oracle(env, hidden, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl::dynamics::{BoxRegion, PolyDynamics, SafetySpec};

    fn env() -> EnvironmentContext {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        EnvironmentContext::new(
            "fixture",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        )
        .with_action_bounds(vec![-2.0], vec![2.0])
    }

    #[test]
    fn demo_artifact_is_deployable_and_deterministic() {
        let env = env();
        let a = demo_artifact(&env, &[-2.0], &[0.9], &[8], 5).unwrap();
        let b = demo_artifact(&env, &[-2.0], &[0.9], &[8], 5).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert!(a.shield().covers(&[0.5]));
        assert!(!a.shield().covers(&[0.95]));
    }

    #[test]
    #[should_panic(expected = "radii must be positive")]
    fn zero_radius_rejected() {
        let env = env();
        let _ = ellipsoid_certificate(&env, &[0.0]);
    }
}
