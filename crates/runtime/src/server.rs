//! The concurrent shielded-serving runtime.
//!
//! A [`ShieldServer`] holds named *deployments* — each a loaded
//! [`ShieldArtifact`] — and answers Algorithm 3 queries for all of them:
//! given a state, run the deployment's neural oracle, let its shield veto
//! the proposal, and return the [`ShieldDecision`] actually applied.
//!
//! # Concurrency model
//!
//! * The deployment registry is a `RwLock<HashMap>`: lookups take a shared
//!   lock held only long enough to clone one `Arc`.
//! * Each deployment's active artifact sits behind its own
//!   `RwLock<Arc<ActiveArtifact>>`.  The serving path takes the *shared*
//!   lock just to clone the `Arc` and then evaluates entirely lock-free on
//!   an immutable snapshot — a redeploy in progress never blocks readers
//!   for longer than the pointer swap, and in-flight requests simply finish
//!   on the generation they started with.  Measured under concurrent
//!   serving (`serve_binary` bench, `rwlock_arc_clone_ns_*` in
//!   `BENCH_eval.json`), the lock-and-clone costs ~60 ns alone and ~190 ns
//!   with four reader threads — well under 1% of a single decide — so the
//!   plain `RwLock` stays; an `ArcSwap`-style lock-free cell would shave
//!   nanoseconds nobody can observe.
//! * [`ShieldServer::decide_batch`] fans large batches out over a shared
//!   [`WorkerPool`], one contiguous chunk per worker, and reassembles the
//!   results in order.  Within each chunk (and on the small-batch path)
//!   decisions run through the shield's lane-batched kernels
//!   (`Shield::decide_batch`): successor prediction steps the whole chunk
//!   through one sweep of the compiled dynamics family
//!   (`EnvironmentContext::step_deterministic_batch`) and certificate
//!   classification checks 8 predicted states per power-table fill,
//!   instead of looping the scalar `decide` — decision-for-decision
//!   identical, just faster.
//!
//! # Hot redeploy
//!
//! [`ShieldServer::redeploy`] swaps in a new artifact atomically
//! (generation + 1) with zero downtime.
//! [`ShieldServer::resynthesize_and_redeploy`] wires the Table 3 workflow
//! end to end: given a *changed* environment, it re-runs CEGIS shield
//! synthesis for the deployment's existing oracle (no retraining) and hot
//! swaps the result.

use crate::artifact::{ArtifactError, ShieldArtifact};
use crate::pool::WorkerPool;
use crate::telemetry::{DeploymentTelemetry, StatsRecorder};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use vrl::dynamics::EnvironmentContext;
use vrl::nn::MlpScratch;
use vrl::pipeline::{resynthesize_shield_for, PipelineConfig, PipelineError};
use vrl::shield::{CegisReport, ShieldDecision};

/// Why a serving call failed.
#[derive(Debug)]
pub enum ServeError {
    /// No deployment with the given name exists.
    UnknownDeployment(String),
    /// A deployment with the given name already exists (`deploy` refuses to
    /// silently replace; use `redeploy`).
    AlreadyDeployed(String),
    /// A state's dimension disagrees with the deployment.
    DimensionMismatch {
        /// Dimension the deployment expects.
        expected: usize,
        /// Dimension received.
        actual: usize,
    },
    /// A state contained a non-finite coordinate.
    NonFiniteState,
    /// A replacement artifact's state/action dimensions disagree with the
    /// running deployment's.
    IncompatibleArtifact {
        /// `(state_dim, action_dim)` the deployment serves.
        expected: (usize, usize),
        /// `(state_dim, action_dim)` the offered artifact has.
        offered: (usize, usize),
    },
    /// Bundling the shield and oracle failed.
    Artifact(ArtifactError),
    /// Re-synthesizing a shield for a changed environment failed; the
    /// previous artifact keeps serving.
    Resynthesis(PipelineError),
    /// Talking to a remote shard failed at the transport level (connect,
    /// timeout, protocol) after the configured retries — or fast, because
    /// the shard's circuit breaker is open.
    Remote(crate::remote::RemoteError),
    /// A remote shard answered with a structured error envelope; the status
    /// and code are relayed verbatim (an unknown-deployment miss is mapped
    /// to [`ServeError::UnknownDeployment`] instead, so shard-level misses
    /// keep their retry/failover semantics).
    Shard {
        /// HTTP status the shard returned.
        status: u16,
        /// Machine-readable error code from the shard's envelope.
        code: String,
        /// Human-readable message from the shard's envelope.
        message: String,
    },
    /// Every replica that could serve the deployment is down (unreachable,
    /// breaker-open, or probe-failed).  Maps to a structured `503` with a
    /// `Retry-After` header over HTTP.
    Unavailable {
        /// The deployment that could not be served.
        deployment: String,
        /// What happened on the last replica attempted.
        detail: String,
        /// How long the caller should wait before retrying.
        retry_after: std::time::Duration,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDeployment(name) => write!(f, "no deployment named {name:?}"),
            ServeError::AlreadyDeployed(name) => {
                write!(
                    f,
                    "deployment {name:?} already exists (use redeploy to replace it)"
                )
            }
            ServeError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "state has dimension {actual}, deployment expects {expected}"
                )
            }
            ServeError::NonFiniteState => write!(f, "state contains a non-finite coordinate"),
            ServeError::IncompatibleArtifact { expected, offered } => write!(
                f,
                "artifact serves {}-dim states / {}-dim actions but the deployment serves {} / {}",
                offered.0, offered.1, expected.0, expected.1
            ),
            ServeError::Artifact(e) => write!(f, "artifact rejected: {e}"),
            ServeError::Resynthesis(e) => {
                write!(
                    f,
                    "shield re-synthesis failed (previous shield keeps serving): {e}"
                )
            }
            ServeError::Remote(e) => write!(f, "remote shard failed: {e}"),
            ServeError::Shard {
                status,
                code,
                message,
            } => {
                write!(f, "shard answered HTTP {status} ({code}): {message}")
            }
            ServeError::Unavailable {
                deployment,
                detail,
                retry_after,
            } => {
                write!(
                    f,
                    "every replica of {deployment:?} is down (last: {detail}); retry in {}s",
                    retry_after.as_secs().max(1)
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            ServeError::Resynthesis(e) => Some(e),
            ServeError::Remote(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}

/// An immutable snapshot of what a deployment serves: the artifact plus its
/// generation number.  Shared via `Arc`, never mutated.
#[derive(Debug)]
struct ActiveArtifact {
    artifact: ShieldArtifact,
    generation: u64,
}

thread_local! {
    /// Per-thread oracle forward-pass buffers: with the shield's compiled
    /// polynomial kernels also running on per-thread scratch, a steady-state
    /// decision allocates nothing but the returned action vector.  One set
    /// of buffers per serving thread (the batch worker pool threads each get
    /// their own).
    static ORACLE_SCRATCH: RefCell<(MlpScratch, Vec<f64>)> =
        RefCell::new((MlpScratch::new(), Vec::new()));

    /// Per-thread proposal buffers for the batched serving path (one action
    /// vector per lane, recycled across batches).
    static BATCH_PROPOSALS: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

impl ActiveArtifact {
    /// Algorithm 3 for one state: oracle proposes, shield decides.
    fn decide(&self, state: &[f64]) -> ShieldDecision {
        ORACLE_SCRATCH.with(|cell| {
            let (scratch, proposed) = &mut *cell.borrow_mut();
            self.artifact.oracle().action_into(state, scratch, proposed);
            self.artifact.shield().decide(state, proposed)
        })
    }

    /// Algorithm 3 for a lane of states: the oracle proposes for every
    /// state through one shared scratch, then the shield classifies the
    /// whole lane against its certificates via the batched compiled
    /// kernels ([`vrl::shield::Shield::decide_batch`]).  Decision-for-
    /// decision identical to mapping [`ActiveArtifact::decide`].
    fn decide_batch(&self, states: &[Vec<f64>]) -> Vec<ShieldDecision> {
        ORACLE_SCRATCH.with(|oracle_cell| {
            BATCH_PROPOSALS.with(|proposal_cell| {
                let (scratch, _) = &mut *oracle_cell.borrow_mut();
                let proposals = &mut *proposal_cell.borrow_mut();
                self.artifact
                    .oracle()
                    .actions_batch_into(states, scratch, proposals);
                self.artifact.shield().decide_batch(states, proposals)
            })
        })
    }
}

/// One named deployment: the swappable active artifact plus its telemetry.
#[derive(Debug)]
struct Deployment {
    name: String,
    active: RwLock<Arc<ActiveArtifact>>,
    stats: StatsRecorder,
    /// Serializes redeploys (readers are never blocked by this).
    redeploy_guard: Mutex<()>,
}

impl Deployment {
    /// The single construction site for a fresh deployment (generation 1,
    /// zeroed telemetry) — both deploy entry points go through it.
    fn fresh(name: String, artifact: ShieldArtifact) -> Arc<Deployment> {
        Arc::new(Deployment {
            name,
            active: RwLock::new(Arc::new(ActiveArtifact {
                artifact,
                generation: 1,
            })),
            stats: StatsRecorder::new(),
            redeploy_guard: Mutex::new(()),
        })
    }

    fn snapshot(&self) -> Arc<ActiveArtifact> {
        Arc::clone(&self.active.read().expect("active lock never poisoned"))
    }
}

/// Minimum number of states per worker task; below this, fanning out costs
/// more than it saves.
const MIN_CHUNK: usize = 64;

/// A thread-safe registry of shield deployments serving concurrent
/// [`ShieldServer::decide`] / [`ShieldServer::decide_batch`] traffic with
/// hot redeploy.
///
/// The server is `Send + Sync`; share it across threads behind an `Arc`.
#[derive(Debug)]
pub struct ShieldServer {
    deployments: RwLock<HashMap<String, Arc<Deployment>>>,
    pool: WorkerPool,
}

impl Default for ShieldServer {
    fn default() -> Self {
        ShieldServer::new()
    }
}

impl ShieldServer {
    /// A server whose batch worker pool is sized to the machine.
    pub fn new() -> Self {
        ShieldServer {
            deployments: RwLock::new(HashMap::new()),
            pool: WorkerPool::with_default_size(),
        }
    }

    /// A server with an explicit batch worker-pool size.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_workers(threads: usize) -> Self {
        ShieldServer {
            deployments: RwLock::new(HashMap::new()),
            pool: WorkerPool::new(threads),
        }
    }

    /// Number of worker threads used by [`ShieldServer::decide_batch`].
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Creates a new deployment serving `artifact` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AlreadyDeployed`] if the name is taken.
    pub fn deploy(
        &self,
        name: impl Into<String>,
        artifact: ShieldArtifact,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let mut deployments = self
            .deployments
            .write()
            .expect("registry lock never poisoned");
        if deployments.contains_key(&name) {
            return Err(ServeError::AlreadyDeployed(name));
        }
        deployments.insert(name.clone(), Deployment::fresh(name, artifact));
        Ok(())
    }

    /// Deploys `artifact` under `name`, hot-replacing an existing deployment
    /// if there is one — HTTP `PUT` semantics, used by the network front-end
    /// ([`crate::http`]) and the shard router ([`crate::ShardRouter`]).
    /// Returns the generation now serving (1 for a fresh deployment).
    ///
    /// # Errors
    ///
    /// Replacing an existing deployment enforces the same
    /// [`ServeError::IncompatibleArtifact`] dimension check as
    /// [`ShieldServer::redeploy`]; a fresh deployment cannot fail.
    pub fn deploy_or_redeploy(
        &self,
        name: &str,
        artifact: ShieldArtifact,
    ) -> Result<u64, ServeError> {
        // The whole upsert happens under the registry write lock so a
        // concurrent `undeploy` cannot interleave between the existence
        // check and the swap (which would let a PUT report success on a
        // deployment that no longer exists).  The registry -> redeploy_guard
        // lock order is safe: no other path acquires the registry lock
        // while holding a redeploy guard.
        let mut deployments = self
            .deployments
            .write()
            .expect("registry lock never poisoned");
        match deployments.get(name) {
            Some(existing) => {
                let deployment = Arc::clone(existing);
                let _guard = deployment
                    .redeploy_guard
                    .lock()
                    .expect("redeploy lock never poisoned");
                Self::swap_locked(&deployment, artifact)
            }
            None => {
                deployments.insert(
                    name.to_string(),
                    Deployment::fresh(name.to_string(), artifact),
                );
                Ok(1)
            }
        }
    }

    /// Removes a deployment; returns whether it existed.  In-flight requests
    /// holding a snapshot finish unaffected.
    pub fn undeploy(&self, name: &str) -> bool {
        self.deployments
            .write()
            .expect("registry lock never poisoned")
            .remove(name)
            .is_some()
    }

    /// Names of all current deployments, sorted.
    pub fn deployments(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .deployments
            .read()
            .expect("registry lock never poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The artifact generation a deployment currently serves (starts at 1,
    /// increments on every redeploy).
    pub fn generation(&self, name: &str) -> Result<u64, ServeError> {
        Ok(self.lookup(name)?.snapshot().generation)
    }

    /// The environment name a deployment's active shield was verified for.
    pub fn environment(&self, name: &str) -> Result<String, ServeError> {
        Ok(self
            .lookup(name)?
            .snapshot()
            .artifact
            .shield()
            .env()
            .name()
            .to_string())
    }

    /// A point-in-time copy of a deployment's serving telemetry.
    pub fn telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        let deployment = self.lookup(name)?;
        let generation = deployment.snapshot().generation;
        Ok(deployment.stats.snapshot(&deployment.name, generation))
    }

    /// Algorithm 3 for one state: runs the deployment's oracle, lets the
    /// shield veto the proposal, and returns the applied decision.
    ///
    /// # Errors
    ///
    /// Fails on unknown deployments and malformed states; never on safe
    /// inputs.
    pub fn decide(&self, name: &str, state: &[f64]) -> Result<ShieldDecision, ServeError> {
        let deployment = self.lookup(name)?;
        let active = deployment.snapshot();
        validate_state(state, active.artifact.shield().env().state_dim())?;
        let start = Instant::now();
        let decision = active.decide(state);
        deployment.stats.record_request(
            1,
            if decision.intervened { 1 } else { 0 },
            start.elapsed(),
        );
        Ok(decision)
    }

    /// Evaluates a whole batch of independent states against one deployment,
    /// fanning out across the worker pool when the batch is large enough.
    ///
    /// Every state in the batch is decided against the *same* artifact
    /// generation (the snapshot taken at entry), so a concurrent redeploy
    /// can never split a batch across two shields.
    ///
    /// # Errors
    ///
    /// Validates all states up front; a malformed state fails the whole
    /// batch before any evaluation starts.
    pub fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        let deployment = self.lookup(name)?;
        let active = deployment.snapshot();
        let state_dim = active.artifact.shield().env().state_dim();
        for state in states {
            validate_state(state, state_dim)?;
        }
        if states.is_empty() {
            return Ok(Vec::new());
        }
        let start = Instant::now();
        let decisions = if states.len() < 2 * MIN_CHUNK || self.pool.threads() == 1 {
            active.decide_batch(states)
        } else {
            self.fan_out(&active, states)
        };
        let interventions = decisions.iter().filter(|d| d.intervened).count() as u64;
        deployment
            .stats
            .record_request(decisions.len() as u64, interventions, start.elapsed());
        Ok(decisions)
    }

    fn fan_out(&self, active: &Arc<ActiveArtifact>, states: &[Vec<f64>]) -> Vec<ShieldDecision> {
        let chunk_size = (states.len()).div_ceil(self.pool.threads()).max(MIN_CHUNK);
        let chunks: Vec<Vec<Vec<f64>>> = states.chunks(chunk_size).map(<[_]>::to_vec).collect();
        let n_chunks = chunks.len();
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<ShieldDecision>)>();
        for (index, chunk) in chunks.into_iter().enumerate() {
            let active = Arc::clone(active);
            let tx = tx.clone();
            self.pool.execute(move || {
                let decisions = active.decide_batch(&chunk);
                // The receiver only disappears if the caller panicked.
                let _ = tx.send((index, decisions));
            });
        }
        drop(tx);
        let mut by_index: Vec<Option<Vec<ShieldDecision>>> = (0..n_chunks).map(|_| None).collect();
        for (index, decisions) in rx {
            by_index[index] = Some(decisions);
        }
        by_index
            .into_iter()
            .flat_map(|chunk| chunk.expect("every chunk reports exactly once"))
            .collect()
    }

    /// Atomically replaces a deployment's artifact (hot swap, zero
    /// downtime).  Returns the new generation number.
    ///
    /// # Errors
    ///
    /// The replacement must serve the same state/action dimensions as the
    /// running artifact; in-flight and future requests would otherwise
    /// observe shape-incompatible decisions mid-stream.
    pub fn redeploy(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        let deployment = self.lookup(name)?;
        let _guard = deployment
            .redeploy_guard
            .lock()
            .expect("redeploy lock never poisoned");
        Self::swap_locked(&deployment, artifact)
    }

    /// Performs the dimension check and generation swap.  The caller must
    /// hold the deployment's `redeploy_guard`.
    fn swap_locked(deployment: &Deployment, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        let current = deployment.snapshot();
        let expected = (
            current.artifact.shield().env().state_dim(),
            current.artifact.shield().env().action_dim(),
        );
        let offered = (
            artifact.shield().env().state_dim(),
            artifact.shield().env().action_dim(),
        );
        if expected != offered {
            return Err(ServeError::IncompatibleArtifact { expected, offered });
        }
        let next = Arc::new(ActiveArtifact {
            artifact,
            generation: current.generation + 1,
        });
        *deployment
            .active
            .write()
            .expect("active lock never poisoned") = next;
        deployment.stats.record_redeploy();
        Ok(current.generation + 1)
    }

    /// The Table 3 workflow as one server operation: re-synthesizes a shield
    /// for this deployment's *existing* oracle in a changed environment (no
    /// retraining) and hot swaps it in.  Returns the new generation and the
    /// CEGIS diagnostics.
    ///
    /// On synthesis failure the deployment keeps serving its previous
    /// verified shield — a failed redeploy is never destructive.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Resynthesis`] when CEGIS cannot cover the new
    /// environment's initial states within the configured budget.
    pub fn resynthesize_and_redeploy(
        &self,
        name: &str,
        new_env: &EnvironmentContext,
        config: &PipelineConfig,
    ) -> Result<(u64, CegisReport), ServeError> {
        let deployment = self.lookup(name)?;
        // Hold the redeploy guard across snapshot *and* synthesis, not just
        // the swap: otherwise a concurrent `redeploy` landing during the
        // (long) CEGIS run would be silently overwritten by an artifact
        // built from the oracle it replaced.  Serving traffic is unaffected
        // — readers never take this lock.
        let _guard = deployment
            .redeploy_guard
            .lock()
            .expect("redeploy lock never poisoned");
        let snapshot = deployment.snapshot();
        let oracle = snapshot.artifact.oracle().clone();
        let table_config = snapshot.artifact.table_config().cloned();
        let (shield, report) =
            resynthesize_shield_for(new_env, &oracle, config).map_err(ServeError::Resynthesis)?;
        let label = format!("resynthesized for {}", new_env.name());
        let mut artifact = ShieldArtifact::new(shield, oracle)?.with_label(label);
        // Carry the deployment's decision-table intent across the
        // resynthesis: the new shield gets a fresh table built for *its*
        // certificates under the same config.
        if let Some(table_config) = table_config {
            artifact = artifact.with_table_config(table_config)?;
        }
        let generation = Self::swap_locked(&deployment, artifact)?;
        Ok((generation, report))
    }

    fn lookup(&self, name: &str) -> Result<Arc<Deployment>, ServeError> {
        self.deployments
            .read()
            .expect("registry lock never poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownDeployment(name.to_string()))
    }
}

fn validate_state(state: &[f64], expected: usize) -> Result<(), ServeError> {
    if state.len() != expected {
        return Err(ServeError::DimensionMismatch {
            expected,
            actual: state.len(),
        });
    }
    if state.iter().any(|x| !x.is_finite()) {
        return Err(ServeError::NonFiniteState);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_artifact;

    fn server_with_toy(name: &str) -> ShieldServer {
        let server = ShieldServer::with_workers(4);
        server.deploy(name, toy_artifact(11)).unwrap();
        server
    }

    #[test]
    fn deploy_serve_and_inspect() {
        let server = server_with_toy("toy");
        assert_eq!(server.deployments(), vec!["toy".to_string()]);
        assert_eq!(server.generation("toy").unwrap(), 1);
        assert_eq!(server.environment("toy").unwrap(), "toy");
        let decision = server.decide("toy", &[0.0]).unwrap();
        assert_eq!(decision.action.len(), 1);
        let telemetry = server.telemetry("toy").unwrap();
        assert_eq!(telemetry.requests, 1);
        assert_eq!(telemetry.decisions, 1);
        assert!(server.undeploy("toy"));
        assert!(!server.undeploy("toy"));
        assert!(matches!(
            server.decide("toy", &[0.0]),
            Err(ServeError::UnknownDeployment(_))
        ));
    }

    #[test]
    fn duplicate_deploy_is_rejected() {
        let server = server_with_toy("toy");
        assert!(matches!(
            server.deploy("toy", toy_artifact(12)),
            Err(ServeError::AlreadyDeployed(_))
        ));
    }

    #[test]
    fn malformed_states_are_rejected() {
        let server = server_with_toy("toy");
        assert!(matches!(
            server.decide("toy", &[0.0, 1.0]),
            Err(ServeError::DimensionMismatch {
                expected: 1,
                actual: 2
            })
        ));
        assert!(matches!(
            server.decide("toy", &[f64::NAN]),
            Err(ServeError::NonFiniteState)
        ));
        let batch = vec![vec![0.0], vec![0.1, 0.2]];
        assert!(server.decide_batch("toy", &batch).is_err());
    }

    #[test]
    fn batch_matches_sequential_decides() {
        let server = server_with_toy("toy");
        let states: Vec<Vec<f64>> = (0..500).map(|i| vec![(i as f64 / 250.0) - 1.0]).collect();
        let batch = server.decide_batch("toy", &states).unwrap();
        assert_eq!(batch.len(), states.len());
        for (state, expected) in states.iter().zip(batch.iter()) {
            // A second server answers identically: decisions are pure.
            let single = server.decide("toy", state).unwrap();
            assert_eq!(&single, expected);
        }
        let telemetry = server.telemetry("toy").unwrap();
        assert_eq!(telemetry.decisions, 1000);
        assert_eq!(telemetry.requests, 501);
    }

    #[test]
    fn empty_batch_is_fine() {
        let server = server_with_toy("toy");
        assert_eq!(server.decide_batch("toy", &[]).unwrap(), Vec::new());
    }

    #[test]
    fn intervention_telemetry_is_identical_across_decide_paths() {
        // The scalar and batched paths share intervention counting: the
        // same traffic must yield byte-identical decisions and identical
        // intervention-rate telemetry whichever entry point served it.
        // (Latency percentiles are wall-clock and cannot be compared across
        // real runs; their batch-vs-sequential equivalence is pinned by the
        // deterministic StatsRecorder test in `telemetry`.)
        let via_decide = server_with_toy("toy");
        let via_batch = server_with_toy("toy");
        // Span covered and uncovered states so both outcomes occur.
        let states: Vec<Vec<f64>> = (0..300).map(|i| vec![(i as f64 / 150.0) - 1.0]).collect();
        let mut sequential = Vec::with_capacity(states.len());
        for state in &states {
            sequential.push(via_decide.decide("toy", state).unwrap());
        }
        let batched = via_batch.decide_batch("toy", &states).unwrap();
        assert_eq!(sequential, batched);
        assert!(batched.iter().any(|d| d.intervened));
        assert!(batched.iter().any(|d| !d.intervened));
        let t_seq = via_decide.telemetry("toy").unwrap();
        let t_bat = via_batch.telemetry("toy").unwrap();
        assert_eq!(t_seq.decisions, t_bat.decisions);
        assert_eq!(t_seq.interventions, t_bat.interventions);
        assert_eq!(t_seq.intervention_rate, t_bat.intervention_rate);
        assert_eq!(t_seq.requests, 300);
        assert_eq!(t_bat.requests, 1);
    }

    #[test]
    fn redeploy_swaps_generation_and_enforces_dimensions() {
        let server = server_with_toy("toy");
        let generation = server.redeploy("toy", toy_artifact(13)).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(server.generation("toy").unwrap(), 2);
        assert_eq!(server.telemetry("toy").unwrap().redeploys, 1);
        let wrong = crate::testutil::toy_artifact_2d(1);
        match server.redeploy("toy", wrong) {
            Err(ServeError::IncompatibleArtifact { expected, offered }) => {
                assert_eq!(expected, (1, 1));
                assert_eq!(offered, (2, 1));
            }
            other => panic!("expected IncompatibleArtifact, got {other:?}"),
        }
        // Failed redeploys leave the generation untouched.
        assert_eq!(server.generation("toy").unwrap(), 2);
    }

    #[test]
    fn concurrent_decides_during_redeploys_stay_consistent() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let server = Arc::new(server_with_toy("toy"));
        let stop = Arc::new(AtomicBool::new(false));
        let served: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let mut handles = Vec::new();
        for t in 0..4 {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            handles.push(std::thread::spawn(move || {
                let mut count = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let x = ((count % 181) as f64 / 100.0) - 0.9;
                    let decision = server.decide("toy", &[x]).unwrap();
                    assert_eq!(decision.action.len(), 1);
                    assert!(decision.action[0].is_finite());
                    count += 1;
                    served[t].store(count, Ordering::Relaxed);
                }
                count
            }));
        }
        // Interleave ten hot swaps with live traffic: before each swap, wait
        // until every thread has demonstrably served since the last one.
        for seed in 20..30 {
            let marks: Vec<u64> = served.iter().map(|c| c.load(Ordering::Relaxed)).collect();
            while served
                .iter()
                .zip(marks.iter())
                .any(|(c, &mark)| c.load(Ordering::Relaxed) <= mark)
            {
                std::thread::yield_now();
            }
            let generation = server.redeploy("toy", toy_artifact(seed)).unwrap();
            assert_eq!(generation, seed - 18);
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let count = handle.join().expect("serving thread never panics");
            assert!(count > 0, "every thread served some traffic");
        }
        assert_eq!(server.generation("toy").unwrap(), 11);
    }
}
