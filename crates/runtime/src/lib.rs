//! `vrl-runtime` — the deployment layer of the verifiable-RL framework.
//!
//! The synthesis pipeline (`vrl::pipeline`) ends with a verified
//! [`Shield`](vrl::shield::Shield) and the neural oracle it monitors; this
//! crate is everything needed to actually *run* that pair in production:
//!
//! * **Artifact persistence** — [`ShieldArtifact`] bundles shield + oracle
//!   and round-trips them through a versioned, checksummed binary format
//!   ([`ShieldArtifact::to_bytes`] / [`ShieldArtifact::save`]), so a shield
//!   synthesized once can be deployed many times without re-running CEGIS.
//! * **Concurrent serving** — [`ShieldServer`] is a thread-safe registry of
//!   named deployments answering [`decide`](ShieldServer::decide) and
//!   batched [`decide_batch`](ShieldServer::decide_batch) queries (fanned
//!   out over a worker pool) with per-deployment telemetry
//!   ([`DeploymentTelemetry`]: request counts, intervention rate, p50/p99
//!   latency).
//! * **Hot redeploy** — the Table 3 scenario as a server operation:
//!   [`ShieldServer::resynthesize_and_redeploy`] re-synthesizes a shield
//!   for a *changed* environment against the deployment's existing oracle
//!   and swaps it in atomically, with zero downtime and no retraining.
//! * **Networked serving** — [`http::HttpFrontend`] puts the five-endpoint
//!   HTTP/1.1 wire protocol (decide / telemetry / artifact `PUT` /
//!   `healthz` / Prometheus `metrics`) in front of any
//!   [`http::ShieldBackend`], using only the standard library (see the
//!   README's wire-protocol reference).
//! * **Sharding** — [`ShardRouter`] consistent-hashes deployments across
//!   backend shield servers (rendezvous or jump placement), rehydrates
//!   moved deployments from artifact bytes when the fleet grows, and
//!   aggregates per-shard telemetry.
//! * **Fault-tolerant fleets** — [`RemoteShard`] speaks the wire protocol
//!   to a shard in another process with deadlines, bounded jittered
//!   retries, and a per-shard circuit breaker; [`FleetRouter`] replicates
//!   every deployment on two shards, health-probes them, fails `decide`
//!   over when the primary dies, rehydrates recovered shards, and hands
//!   telemetry off across replicas.  [`fault::ChaosProxy`] scripts
//!   connection-level faults so every failover path is hermetically
//!   testable.
//!
//! # Example
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use vrl::dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
//! use vrl::poly::Polynomial;
//! use vrl::rl::NeuralPolicy;
//! use vrl::shield::{Shield, ShieldPiece};
//! use vrl::synth::PolicyProgram;
//! use vrl::verify::BarrierCertificate;
//! use vrl_runtime::{ShieldArtifact, ShieldServer};
//!
//! // A tiny verified shield: ẋ = a, invariant x² ≤ 0.81, program a = −2x.
//! let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
//! let env = EnvironmentContext::new(
//!     "toy", dynamics, 0.01,
//!     BoxRegion::symmetric(&[0.5]),
//!     SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
//! );
//! let program = PolicyProgram::linear(&[vec![-2.0]], &[0.0]);
//! let x = Polynomial::variable(0, 1);
//! let invariant = BarrierCertificate::new(&(&x * &x) - &Polynomial::constant(0.81, 1));
//! let shield = Shield::new(env, vec![ShieldPiece::new(program, invariant)]);
//! let oracle = NeuralPolicy::new(1, 1, &[8], 2.0, &mut SmallRng::seed_from_u64(0));
//!
//! // Persist, reload, and serve.
//! let artifact = ShieldArtifact::new(shield, oracle).unwrap();
//! let restored = ShieldArtifact::from_bytes(&artifact.to_bytes()).unwrap();
//! let server = ShieldServer::with_workers(2);
//! server.deploy("toy", restored).unwrap();
//! let decision = server.decide("toy", &[0.3]).unwrap();
//! assert_eq!(decision.action.len(), 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod arena;
mod artifact;
mod codec;
pub mod fault;
pub mod fixtures;
mod fleet;
pub mod frame;
pub mod http;
mod obs;
mod pool;
mod remote;
mod router;
mod server;
mod telemetry;
pub mod wire;

pub use arena::StateArena;

pub use artifact::{
    ArtifactError, ArtifactMetadata, ShieldArtifact, FORMAT_VERSION, MAGIC, MIN_SUPPORTED_VERSION,
};
pub use codec::DecodeError;
pub use fleet::{FleetConfig, FleetRouter};
pub use http::{HttpConfig, HttpFrontend, MiniClient, MiniResponse, ShieldBackend};
pub use obs::install_metrics;
pub use pool::WorkerPool;
pub use remote::{BreakerState, RemoteError, RemoteShard, RemoteShardConfig};
pub use router::{jump_consistent_hash, Placement, RouterTelemetry, ShardRouter, ShardTelemetry};
pub use server::{ServeError, ShieldServer};
pub use telemetry::DeploymentTelemetry;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: tiny verified shields with neural oracles.

    use crate::ShieldArtifact;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl::dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
    use vrl::poly::Polynomial;
    use vrl::rl::NeuralPolicy;
    use vrl::shield::{Shield, ShieldPiece};
    use vrl::synth::PolicyProgram;
    use vrl::verify::BarrierCertificate;

    /// The 1-dimensional toy system of the shield crate's tests: ẋ = a with
    /// safe |x| ≤ 1, invariant x² ≤ 0.81 for the program a = −2x, plus a
    /// small randomly initialized neural oracle (seeded by `seed`).
    pub fn toy_artifact(seed: u64) -> ShieldArtifact {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "toy",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        )
        .with_action_bounds(vec![-5.0], vec![5.0]);
        let program = PolicyProgram::linear(&[vec![-2.0]], &[0.0]);
        let x = Polynomial::variable(0, 1);
        let invariant = BarrierCertificate::new(&(&x * &x) - &Polynomial::constant(0.81, 1));
        let shield = Shield::new(env, vec![ShieldPiece::new(program, invariant)]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let oracle = NeuralPolicy::new(1, 1, &[8, 8], 3.0, &mut rng);
        ShieldArtifact::new(shield, oracle).expect("toy dimensions agree")
    }

    /// A 2-dimensional variant used to exercise dimension mismatches.
    pub fn toy_artifact_2d(seed: u64) -> ShieldArtifact {
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap();
        let env = EnvironmentContext::new(
            "toy-2d",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.3, 0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0, 1.0])),
        );
        let program = PolicyProgram::linear(&[vec![-2.0, -2.0]], &[0.0]);
        let x = Polynomial::variable(0, 2);
        let v = Polynomial::variable(1, 2);
        let invariant =
            BarrierCertificate::new(&(&(&x * &x) + &(&v * &v)) - &Polynomial::constant(0.81, 2));
        let shield = Shield::new(env, vec![ShieldPiece::new(program, invariant)]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let oracle = NeuralPolicy::new(2, 1, &[8], 3.0, &mut rng);
        ShieldArtifact::new(shield, oracle).expect("toy dimensions agree")
    }
}
