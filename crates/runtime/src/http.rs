//! A dependency-free HTTP/1.1 front-end over the shield serving core.
//!
//! The workspace's hermetic policy (see `crates/compat`) rules out hyper,
//! tokio, and friends, and the serving core is deliberately synchronous
//! (`ShieldServer` is `Send + Sync` with a lock-free snapshot hot path), so
//! this front-end is a plain blocking `TcpListener`: one acceptor thread
//! spawns a serving thread per connection (bounded by
//! [`HttpConfig::max_connections`]; connections beyond the bound get an
//! explicit `503` instead of queueing unserved), and each serving thread
//! runs a keep-alive request loop.  No epoll, no futures — for a CPU-bound
//! decide workload a thread per live connection is the right shape, and
//! the batched request body keeps the per-request HTTP overhead amortized
//! across whole lanes of decisions.
//!
//! # Endpoints
//!
//! | Method & path | Meaning |
//! |---|---|
//! | `POST /v1/deployments/{name}/decide` | Decide one state or a batch (JSON body, see [`crate::wire`], or a binary frame, see [`crate::frame`]) |
//! | `PUT /v1/deployments/{name}` | Upload a checksummed [`ShieldArtifact`] (raw binary body) for deploy / hot redeploy |
//! | `DELETE /v1/deployments/{name}` | Remove a deployment |
//! | `GET /v1/deployments/{name}/telemetry` | Per-deployment serving telemetry |
//! | `GET /healthz` | Liveness: uptime plus per-deployment generations |
//! | `GET /metrics` | Prometheus text exposition of the process-wide [`vrl_obs`] registry |
//!
//! Both single-state and batched decide bodies are routed through the
//! backend's `decide_batch`, so the lane-batched evaluation kernels carry
//! all HTTP traffic.  Error responses always carry the structured JSON body
//! of [`wire::error_body`]; the status mapping is documented on
//! [`error_status`] and in the README's wire-protocol reference.
//!
//! # Codec negotiation and the scratch pool
//!
//! The decide endpoint speaks two codecs, negotiated per request by
//! `Content-Type`: `application/json` (default, kept for debuggability)
//! and the binary frame codec `application/x-vrl-frame`
//! ([`frame::CONTENT_TYPE_FRAME`]), whose raw `f64` bit patterns skip
//! decimal float formatting entirely.  The response body mirrors the
//! request codec; error envelopes stay JSON on both paths with identical
//! status/`code` semantics.  Every connection owns a scratch pool
//! (read buffer, body buffer, response buffer, decoded state matrix —
//! see `crate::arena`) reused across keep-alive requests, so
//! steady-state framing and codec work is allocation-free.
//!
//! # Request ids
//!
//! Every response carries an `x-request-id` header: the client's value when
//! the request supplied one (up to 128 printable-ASCII bytes; anything else
//! is treated as absent), a generated `req-<16 hex>` otherwise.  The same id
//! tags the request's trace span ([`vrl_obs::request_span`]) and the
//! `request_id` field of every JSON error envelope, so a failing response
//! can be joined to its span record without any shared clock.
//!
//! # Backends
//!
//! The front-end serves anything implementing [`ShieldBackend`]: a plain
//! [`ShieldServer`] (single process) or a
//! [`ShardRouter`] (deployments consistent-hashed
//! across shards).  See the crate-level example and
//! `examples/http_server.rs` for the end-to-end story.

use crate::arena::{ConnScratch, StateArena};
use crate::artifact::{ArtifactError, ShieldArtifact};
use crate::frame;
use crate::router::ShardRouter;
use crate::server::{ServeError, ShieldServer};
use crate::telemetry::DeploymentTelemetry;
use crate::wire::{self, WireError};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vrl::shield::ShieldDecision;

/// The serving operations the HTTP front-end needs from its backend.
///
/// Implemented by [`ShieldServer`] (all deployments in-process) and
/// [`ShardRouter`] (deployments consistent-hashed across shards); the
/// front-end is written against this trait so moving from one process to a
/// sharded fleet is a constructor change, not a protocol change.
pub trait ShieldBackend: Send + Sync + 'static {
    /// Deploys `artifact` under `name`, hot-replacing any existing
    /// deployment (HTTP `PUT` semantics).  Returns the generation now
    /// serving.
    fn put_artifact(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError>;

    /// Decides a batch of states against a deployment.
    fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError>;

    /// A point-in-time copy of a deployment's telemetry.
    fn backend_telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError>;

    /// Names of all current deployments, sorted.
    fn deployment_names(&self) -> Vec<String>;

    /// `(name, generation)` for every current deployment, sorted by name —
    /// what `GET /healthz` reports.  A deployment undeployed between the
    /// name listing and the generation lookup is skipped rather than
    /// erroring the whole health probe.
    fn deployment_generations(&self) -> Vec<(String, u64)>;

    /// Removes a deployment (HTTP `DELETE` semantics).  `Ok(true)` when it
    /// existed, `Ok(false)` when there was nothing to remove.
    fn remove_deployment(&self, name: &str) -> Result<bool, ServeError>;
}

impl ShieldBackend for ShieldServer {
    fn put_artifact(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        self.deploy_or_redeploy(name, artifact)
    }

    fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        ShieldServer::decide_batch(self, name, states)
    }

    fn backend_telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        self.telemetry(name)
    }

    fn deployment_names(&self) -> Vec<String> {
        self.deployments()
    }

    fn deployment_generations(&self) -> Vec<(String, u64)> {
        self.deployments()
            .into_iter()
            .filter_map(|name| {
                let generation = self.generation(&name).ok()?;
                Some((name, generation))
            })
            .collect()
    }

    fn remove_deployment(&self, name: &str) -> Result<bool, ServeError> {
        Ok(ShieldServer::undeploy(self, name))
    }
}

impl ShieldBackend for ShardRouter {
    fn put_artifact(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        ShardRouter::deploy(self, name, artifact)
    }

    fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        ShardRouter::decide_batch(self, name, states)
    }

    fn backend_telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        self.telemetry(name)
    }

    fn deployment_names(&self) -> Vec<String> {
        self.deployments()
    }

    fn deployment_generations(&self) -> Vec<(String, u64)> {
        self.deployments()
            .into_iter()
            .filter_map(|name| {
                let generation = self.generation(&name).ok()?;
                Some((name, generation))
            })
            .collect()
    }

    fn remove_deployment(&self, name: &str) -> Result<bool, ServeError> {
        Ok(ShardRouter::undeploy(self, name))
    }
}

/// Tunables of the HTTP front-end.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Maximum concurrent connections (one serving thread each); further
    /// connections are answered with `503` until a slot frees up.
    pub max_connections: usize,
    /// Largest request body accepted, in bytes (decide JSON or artifact
    /// upload); larger requests get `413`.
    pub max_body_bytes: usize,
    /// Largest number of states accepted per decide request; larger batches
    /// get `413` with a structured body.
    pub max_batch: usize,
    /// How long an idle keep-alive connection may sit between requests
    /// before the worker closes it.  Also bounds how long shutdown waits on
    /// idle connections.
    pub idle_timeout: Duration,
    /// How long shutdown waits for in-flight connections to drain before
    /// detaching them.  Requests already dispatched complete within this
    /// deadline (idle keep-alive connections notice the stop flag within
    /// one `idle_timeout`); a wedged connection cannot block a restart
    /// beyond it.
    pub shutdown_deadline: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_connections: 256,
            max_body_bytes: 64 << 20,
            max_batch: 8192,
            idle_timeout: Duration::from_secs(5),
            shutdown_deadline: Duration::from_secs(10),
        }
    }
}

/// Maximum bytes of request line + headers before the request is rejected.
const MAX_HEAD_BYTES: usize = 16 << 10;

/// A running HTTP front-end.
///
/// Binds on construction ([`HttpFrontend::bind`]), serves until
/// [`shutdown`](HttpFrontend::shutdown) or drop, and exposes the bound
/// address ([`local_addr`](HttpFrontend::local_addr)) so callers can bind
/// port 0 in tests and benches.
#[derive(Debug)]
pub struct HttpFrontend {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl HttpFrontend {
    /// Binds `addr` and starts serving `backend`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ShieldBackend>,
        config: HttpConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Register the full cross-layer metric catalog up front so the
        // first `GET /metrics` scrape sees every series at zero.
        crate::obs::install_metrics();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("vrl-http-accept".to_string())
                .spawn(move || accept_loop(&listener, &backend, &config, &stop))?
        };
        Ok(HttpFrontend {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the serving threads.  Requests
    /// already in flight complete; idle keep-alive connections are closed
    /// within the configured idle timeout.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one throwaway connection to itself.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpFrontend {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    backend: &Arc<dyn ShieldBackend>,
    config: &HttpConfig,
    stop: &Arc<AtomicBool>,
) {
    // One thread per live connection (keep-alive loops block on their
    // socket between requests, so a fixed pool would let `workers` idle
    // clients starve every later connection); `max_connections` bounds the
    // thread count, and connections beyond it get an explicit 503 instead
    // of queueing unserved.
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        handles.retain(|handle| !handle.is_finished());
        if active.load(Ordering::SeqCst) >= config.max_connections {
            let request_id = generate_request_id();
            let mut response = Response::error(
                503,
                "overloaded",
                &format!(
                    "all {} connection slots are busy; retry shortly",
                    config.max_connections
                ),
                &request_id,
            );
            response.retry_after = Some(1);
            crate::obs::http_overload().inc();
            crate::obs::http_requests().with("503").inc();
            let _ = write_response(&mut stream, &response, true, &request_id);
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let thread_active = Arc::clone(&active);
        let backend = Arc::clone(backend);
        let config = config.clone();
        let stop = Arc::clone(stop);
        let handle = std::thread::Builder::new()
            .name("vrl-http-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &*backend, &config, &stop);
                thread_active.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(handle) => handles.push(handle),
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    // Drain in-flight connections, but never past the shutdown deadline:
    // requests already dispatched get `shutdown_deadline` to complete
    // (idle keep-alive connections notice the stop flag within one idle
    // timeout), and anything still wedged after that is detached so a
    // restart cannot hang on one stuck socket.
    let deadline = std::time::Instant::now() + config.shutdown_deadline;
    while handles.iter().any(|handle| !handle.is_finished()) && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    for handle in handles {
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
}

/// One connection's keep-alive loop: read a request, dispatch, respond,
/// repeat until the client closes, asks for `Connection: close`, errors, or
/// the frontend shuts down.
fn serve_connection(
    mut stream: TcpStream,
    backend: &dyn ShieldBackend,
    config: &HttpConfig,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.idle_timeout));
    crate::obs::http_active_connections().add(1.0);
    // One scratch pool for the whole keep-alive loop: the read buffer,
    // body buffer, response buffer, and decoded state matrix are reused
    // across requests, so steady-state serving allocates nothing in the
    // framing and codec layers.
    let mut scratch = ConnScratch::default();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match read_request(&mut stream, &mut scratch, config) {
            Ok(Some(request)) => {
                let close = request.close;
                let request_id = request
                    .request_id
                    .clone()
                    .unwrap_or_else(generate_request_id);
                let ConnScratch {
                    body, out, states, ..
                } = &mut scratch;
                let mut response = {
                    let _span = vrl_obs::request_span("http.request", &request_id);
                    dispatch(&request, body, states, out, backend, config, &request_id)
                };
                crate::obs::http_requests()
                    .with(&response.status.to_string())
                    .inc();
                let write_failed =
                    write_response(&mut stream, &response, close, &request_id).is_err();
                // Reclaim the response buffer (binary responses encode
                // straight into it) for the next request.
                scratch.out = std::mem::take(&mut response.body);
                if write_failed || close {
                    break;
                }
            }
            // Clean end of the connection (EOF or idle timeout between
            // requests).
            Ok(None) => break,
            Err(reject) => {
                let request_id = generate_request_id();
                let response =
                    Response::error(reject.status, reject.code, &reject.message, &request_id);
                crate::obs::http_requests()
                    .with(&reject.status.to_string())
                    .inc();
                let _ = write_response(&mut stream, &response, true, &request_id);
                break;
            }
        }
    }
    crate::obs::http_active_connections().sub(1.0);
    let _ = stream.shutdown(Shutdown::Both);
}

/// A fresh `req-<16 hex>` id for a request that did not supply one (or a
/// connection rejected before a request could be framed).  The id hashes a
/// wall-clock timestamp with a process-wide sequence number, so ids are
/// unique within a process and almost surely across a fleet.
fn generate_request_id() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let sequence = NEXT.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&nanos.to_le_bytes());
    key[8..].copy_from_slice(&sequence.to_le_bytes());
    format!("req-{:016x}", crate::codec::fnv1a64(&key))
}

/// A client-supplied request id is honored only when it is non-empty,
/// at most 128 bytes, and printable ASCII (no spaces or controls) — it is
/// echoed into a response header and JSON error envelopes, so anything
/// else is treated as absent rather than reflected.
fn valid_request_id(value: &str) -> bool {
    !value.is_empty() && value.len() <= 128 && value.bytes().all(|b| (0x21..=0x7e).contains(&b))
}

/// One framed request.  The body itself lives in the connection's
/// [`ConnScratch::body`] buffer, not here — the head fields are all this
/// struct carries.
struct Request {
    method: Method,
    /// Path split on '/', ignoring any query string.
    segments: Vec<String>,
    close: bool,
    /// The client's `x-request-id` header, when present and valid.
    request_id: Option<String>,
    /// Whether `Content-Type` negotiated the binary frame codec
    /// ([`frame::CONTENT_TYPE_FRAME`]) for the decide endpoint.
    binary: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Method {
    Get,
    Post,
    Put,
    Delete,
    Other,
}

/// An HTTP-level rejection produced while the request was still being
/// framed; the connection closes after it is reported.
struct Reject {
    status: u16,
    code: &'static str,
    message: String,
}

impl Reject {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Reject {
            status,
            code,
            message: message.into(),
        }
    }
}

/// Reads one request head + body into the connection scratch.  `Ok(None)`
/// is a clean connection end: EOF or an idle timeout with no bytes of a new
/// request read yet.  On success the body is in `scratch.body` and any
/// pipelined bytes of the *next* request stay at the front of
/// `scratch.read_buf`.
fn read_request(
    stream: &mut TcpStream,
    scratch: &mut ConnScratch,
    config: &HttpConfig,
) -> Result<Option<Request>, Reject> {
    let buffer = &mut scratch.read_buf;
    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(Reject::new(
                431,
                "headers_too_large",
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buffer.is_empty() {
                    return Ok(None);
                }
                return Err(Reject::new(
                    400,
                    "truncated_request",
                    "connection closed mid-request head",
                ));
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buffer.is_empty() {
                    return Ok(None);
                }
                return Err(Reject::new(
                    408,
                    "request_timeout",
                    "timed out reading the request head",
                ));
            }
            Err(_) => return Ok(None),
        }
    };

    // Parse the head in place — every owned value (segments, request id)
    // is extracted before the buffers are touched, so no per-request copy
    // of the head is made.
    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| Reject::new(400, "bad_request", "request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method_str, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(Reject::new(
                400,
                "bad_request",
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(Reject::new(
            505,
            "http_version_not_supported",
            format!("unsupported protocol version {version:?}"),
        ));
    }
    let method = match method_str {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "PUT" => Method::Put,
        "DELETE" => Method::Delete,
        _ => Method::Other,
    };

    let mut content_length: usize = 0;
    let mut has_length = false;
    let mut close = version == "HTTP/1.0";
    let mut expects_continue = false;
    let mut request_id: Option<String> = None;
    let mut binary = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .parse()
                .map_err(|_| Reject::new(400, "bad_request", "unparseable Content-Length"))?;
            // RFC 9112 §6.3: conflicting Content-Length values must be
            // rejected — with keep-alive pipelining, parsing a different
            // body boundary than an upstream proxy is a smuggling vector.
            if has_length && parsed != content_length {
                return Err(Reject::new(
                    400,
                    "bad_request",
                    "conflicting Content-Length headers",
                ));
            }
            content_length = parsed;
            has_length = true;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(Reject::new(
                501,
                "not_implemented",
                "chunked transfer encoding is not supported; send Content-Length",
            ));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        } else if name.eq_ignore_ascii_case("x-request-id") && valid_request_id(value) {
            request_id = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("content-type") {
            // Media-type parameters (`; charset=...`) are tolerated; any
            // other content type falls back to the JSON codec.
            binary = value
                .get(..frame::CONTENT_TYPE_FRAME.len())
                .is_some_and(|prefix| prefix.eq_ignore_ascii_case(frame::CONTENT_TYPE_FRAME))
                && {
                    let rest = value[frame::CONTENT_TYPE_FRAME.len()..].trim_start();
                    rest.is_empty() || rest.starts_with(';')
                };
        }
    }

    let path = target.split('?').next().unwrap_or_default();
    let segments: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();

    if matches!(method, Method::Post | Method::Put) && !has_length {
        return Err(Reject::new(
            411,
            "length_required",
            "POST and PUT require a Content-Length header",
        ));
    }
    if content_length > config.max_body_bytes {
        return Err(Reject::new(
            413,
            "body_too_large",
            format!(
                "declared body of {content_length} bytes exceeds the {} byte limit",
                config.max_body_bytes
            ),
        ));
    }
    if expects_continue {
        // curl sends Expect: 100-continue for large artifact uploads.
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    // The body: whatever is already buffered past the head, then the rest
    // from the socket, copied into the connection's reusable body buffer.
    let body = &mut scratch.body;
    body.clear();
    let buffered = buffer.len() - head_end;
    let from_buffer = buffered.min(content_length);
    body.extend_from_slice(&buffer[head_end..head_end + from_buffer]);
    // Bytes past the declared body start the next pipelined request; slide
    // them to the front of the read buffer.
    buffer.copy_within(head_end + from_buffer.., 0);
    buffer.truncate(buffered - from_buffer);
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(Reject::new(
                    400,
                    "truncated_body",
                    format!(
                        "connection closed after {} of {content_length} body bytes",
                        body.len()
                    ),
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(Reject::new(
                    408,
                    "request_timeout",
                    format!(
                        "timed out after {} of {content_length} body bytes",
                        body.len()
                    ),
                ))
            }
            Err(_) => {
                return Err(Reject::new(
                    400,
                    "truncated_body",
                    "connection error while reading the body",
                ))
            }
        }
    }
    // A chunk read may overshoot into the next pipelined request; hand the
    // excess back to the read buffer (it is empty in that case — the body
    // loop only runs once the buffered bytes were fully consumed).
    if body.len() > content_length {
        scratch.read_buf.extend_from_slice(&body[content_length..]);
        body.truncate(content_length);
    }

    Ok(Some(Request {
        method,
        segments,
        close,
        request_id,
        binary,
    }))
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|pos| pos + 4)
}

/// JSON content type of every endpoint except the Prometheus scrape.
const CONTENT_TYPE_JSON: &str = "application/json";
/// Prometheus text exposition format version served by `GET /metrics`.
const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";

struct Response {
    status: u16,
    body: Vec<u8>,
    content_type: &'static str,
    /// Seconds for a `Retry-After` header, on 503s where the client should
    /// back off and try again (overload shedding, all replicas down).
    retry_after: Option<u64>,
}

impl Response {
    fn ok(body: String) -> Self {
        Response {
            status: 200,
            body: body.into_bytes(),
            content_type: CONTENT_TYPE_JSON,
            retry_after: None,
        }
    }

    fn ok_with_type(body: String, content_type: &'static str) -> Self {
        Response {
            status: 200,
            body: body.into_bytes(),
            content_type,
            retry_after: None,
        }
    }

    /// A `200` whose body is already-encoded bytes (binary decide
    /// responses, taken from the connection's scratch buffer).
    fn ok_bytes(body: Vec<u8>, content_type: &'static str) -> Self {
        Response {
            status: 200,
            body,
            content_type,
            retry_after: None,
        }
    }

    fn error(status: u16, code: &str, message: &str, request_id: &str) -> Self {
        Response {
            status,
            body: wire::error_body(status, code, message, request_id).into_bytes(),
            content_type: CONTENT_TYPE_JSON,
            retry_after: None,
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
    request_id: &str,
) -> std::io::Result<()> {
    let retry_after = response
        .retry_after
        .map(|seconds| format!("retry-after: {seconds}\r\n"))
        .unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\nx-request-id: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        request_id,
        response.body.len(),
        retry_after,
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Maps a serving-layer failure to its HTTP status.
///
/// * `404` — unknown deployment;
/// * `409` — artifact dimensions incompatible with the running deployment;
/// * `422` — semantically invalid input the server understood but cannot
///   serve: wrong-dimension or non-finite states, and artifact uploads that
///   fail validation (bad magic, unsupported version, truncation,
///   **checksum mismatch**, malformed payload, invariant violations);
/// * `502` — a remote shard was unreachable after retries (or its breaker
///   was open) and no replica could take over;
/// * `503` — every replica of the deployment is down ([`ServeError::Unavailable`],
///   carrying a `Retry-After` header);
/// * shard-relayed errors ([`ServeError::Shard`]) pass their status through;
/// * `400` — everything else at the protocol level (handled before this
///   map is reached).
pub fn error_status(error: &ServeError) -> u16 {
    match error {
        ServeError::UnknownDeployment(_) => 404,
        ServeError::DimensionMismatch { .. } | ServeError::NonFiniteState => 422,
        ServeError::IncompatibleArtifact { .. } => 409,
        ServeError::Artifact(_) => 422,
        ServeError::Remote(_) => 502,
        ServeError::Shard { status, .. } => *status,
        ServeError::Unavailable { .. } => 503,
        // `deploy_or_redeploy` never reports AlreadyDeployed, and the HTTP
        // surface never resynthesizes; both are internal misuse if reached.
        ServeError::AlreadyDeployed(_) | ServeError::Resynthesis(_) => 500,
    }
}

fn serve_error_code(error: &ServeError) -> &'static str {
    match error {
        ServeError::UnknownDeployment(_) => "unknown_deployment",
        ServeError::DimensionMismatch { .. } => "dimension_mismatch",
        ServeError::NonFiniteState => "non_finite_state",
        ServeError::IncompatibleArtifact { .. } => "incompatible_artifact",
        ServeError::Artifact(ArtifactError::ChecksumMismatch { .. }) => "checksum_mismatch",
        ServeError::Artifact(ArtifactError::BadMagic) => "bad_magic",
        ServeError::Artifact(ArtifactError::UnsupportedVersion { .. }) => "unsupported_version",
        ServeError::Artifact(ArtifactError::Truncated { .. }) => "artifact_truncated",
        ServeError::Artifact(_) => "invalid_artifact",
        ServeError::Remote(_) => "upstream_unreachable",
        // `Shard` relays the shard's own code in `serve_error_response`;
        // this spelling is only a fallback.
        ServeError::Shard { .. } => "shard_error",
        ServeError::Unavailable { .. } => "unavailable",
        ServeError::AlreadyDeployed(_) | ServeError::Resynthesis(_) => "internal",
    }
}

fn wire_error_response(error: &WireError, request_id: &str) -> Response {
    match error {
        WireError::Syntax { .. } | WireError::TooDeep { .. } => {
            Response::error(400, "malformed_json", &error.to_string(), request_id)
        }
        WireError::Schema(_) => {
            Response::error(400, "invalid_request", &error.to_string(), request_id)
        }
        WireError::BatchTooLarge { .. } => {
            Response::error(413, "batch_too_large", &error.to_string(), request_id)
        }
        WireError::Frame { .. } => {
            Response::error(400, "malformed_frame", &error.to_string(), request_id)
        }
        // Same status and code as `ServeError::NonFiniteState`: a binary
        // frame can smuggle NaN/inf bit patterns JSON cannot even spell,
        // and both codecs must reject them identically.
        WireError::NonFiniteState { .. } => {
            Response::error(422, "non_finite_state", &error.to_string(), request_id)
        }
    }
}

fn serve_error_response(error: &ServeError, request_id: &str) -> Response {
    // A shard-relayed error keeps the shard's own status and code, so a
    // fleet front-end is transparent for application-level failures.
    if let ServeError::Shard {
        status,
        code,
        message,
    } = error
    {
        return Response::error(*status, code, message, request_id);
    }
    let mut response = Response::error(
        error_status(error),
        serve_error_code(error),
        &error.to_string(),
        request_id,
    );
    if let ServeError::Unavailable { retry_after, .. } = error {
        response.retry_after = Some(retry_after.as_secs().max(1));
    }
    response
}

fn dispatch(
    request: &Request,
    body: &[u8],
    states: &mut StateArena,
    out: &mut Vec<u8>,
    backend: &dyn ShieldBackend,
    config: &HttpConfig,
    request_id: &str,
) -> Response {
    let segments: Vec<&str> = request.segments.iter().map(String::as_str).collect();
    match (request.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Response::ok(wire::health_response(
            &backend.deployment_generations(),
            vrl_obs::uptime_seconds(),
        )),
        (Method::Get, ["metrics"]) => Response::ok_with_type(
            vrl_obs::registry().render_prometheus(),
            CONTENT_TYPE_PROMETHEUS,
        ),
        (Method::Post, ["v1", "deployments", name, "decide"]) => {
            crate::obs::http_decide_codec()
                .with(if request.binary { "binary" } else { "json" })
                .inc();
            // The codec-phase clock reads sit behind the same kill switch
            // as the decide-latency histogram.
            let observing = vrl_obs::enabled();
            let decode_start = observing.then(Instant::now);
            let decoded = if request.binary {
                frame::decode_decide_request_into(body, config.max_batch, states)
            } else {
                wire::decode_decide_request_into(body, config.max_batch, states)
            };
            let batched = match decoded {
                Ok(batched) => batched,
                Err(e) => return wire_error_response(&e, request_id),
            };
            if let Some(start) = decode_start {
                crate::obs::codec_phase_latency()
                    .with("decode")
                    .observe(start.elapsed());
            }
            match backend.decide_batch(name, states.rows()) {
                Ok(decisions) if !batched && decisions.is_empty() => {
                    // Unreachable ("state" always carries one state), but
                    // never index into an empty decision list.
                    Response::error(500, "internal", "empty decision list", request_id)
                }
                Ok(decisions) => {
                    let encode_start = observing.then(Instant::now);
                    // The response codec mirrors the request codec.
                    let response = if request.binary {
                        frame::encode_decide_response_into(&decisions, batched, out);
                        Response::ok_bytes(std::mem::take(out), frame::CONTENT_TYPE_FRAME)
                    } else {
                        Response::ok(wire::decide_response(name, &decisions, batched))
                    };
                    if let Some(start) = encode_start {
                        crate::obs::codec_phase_latency()
                            .with("encode")
                            .observe(start.elapsed());
                    }
                    response
                }
                Err(e) => serve_error_response(&e, request_id),
            }
        }
        (Method::Put, ["v1", "deployments", name]) => {
            let artifact = match ShieldArtifact::from_bytes(body) {
                Ok(artifact) => artifact,
                Err(e) => {
                    let e = ServeError::Artifact(e);
                    return serve_error_response(&e, request_id);
                }
            };
            let meta = artifact.metadata();
            match backend.put_artifact(name, artifact) {
                Ok(generation) => Response::ok(wire::deployed_response(name, generation, &meta)),
                Err(e) => serve_error_response(&e, request_id),
            }
        }
        (Method::Delete, ["v1", "deployments", name]) => match backend.remove_deployment(name) {
            Ok(true) => Response::ok(wire::undeployed_response(name)),
            Ok(false) => Response::error(
                404,
                "unknown_deployment",
                &format!("no deployment named {name:?}"),
                request_id,
            ),
            Err(e) => serve_error_response(&e, request_id),
        },
        (Method::Get, ["v1", "deployments", name, "telemetry"]) => {
            match backend.backend_telemetry(name) {
                Ok(telemetry) => Response::ok(wire::telemetry_response(&telemetry)),
                Err(e) => serve_error_response(&e, request_id),
            }
        }
        _ if known_path_wrong_method(request.method, &segments) => Response::error(
            405,
            "method_not_allowed",
            "this path exists but not for this method",
            request_id,
        ),
        _ => Response::error(
            404,
            "not_found",
            "unknown path; see the wire-protocol reference",
            request_id,
        ),
    }
}

/// True when the path matches a served route shape but with the wrong
/// method, so the front-end can answer `405` instead of `404`.
fn known_path_wrong_method(method: Method, segments: &[&str]) -> bool {
    match segments {
        ["healthz"] => method != Method::Get,
        ["metrics"] => method != Method::Get,
        ["v1", "deployments", _] => !matches!(method, Method::Put | Method::Delete),
        ["v1", "deployments", _, "decide"] => method != Method::Post,
        ["v1", "deployments", _, "telemetry"] => method != Method::Get,
        _ => false,
    }
}

/// A minimal blocking HTTP/1.1 client for tests, benches, and examples.
///
/// Speaks just enough of the protocol to drive [`HttpFrontend`] over a
/// keep-alive connection: `Content-Length` framing, no chunked encoding,
/// no redirects.  It is **not** a general-purpose client — production
/// traffic should use any real HTTP client (the transcript in the README
/// uses `curl`).
///
/// The client owns a persistent read buffer and head-formatting buffer,
/// reused across requests on the keep-alive connection;
/// [`post_reusing`](MiniClient::post_reusing) additionally writes the
/// response body into a caller-supplied buffer, so a steady-state decide
/// loop allocates nothing on the client side either.
#[derive(Debug)]
pub struct MiniClient {
    stream: TcpStream,
    /// Request-head formatting buffer, reused across requests.
    head: String,
    /// Response read buffer, reused across requests.
    scratch: Vec<u8>,
}

/// A response read by [`MiniClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl MiniResponse {
    /// The body as UTF-8 (all front-end responses are JSON).
    pub fn text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// The first header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

impl MiniClient {
    /// Opens a keep-alive connection to `addr` with default deadlines
    /// (5 s connect, 30 s read, 30 s write).
    ///
    /// A dead or black-holed peer therefore surfaces as a clean
    /// [`std::io::ErrorKind::TimedOut`] error instead of an eternal hang.
    ///
    /// # Errors
    ///
    /// Returns the connect error ([`std::io::ErrorKind::TimedOut`] when the
    /// peer does not accept within the deadline).
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        MiniClient::connect_with_timeouts(
            addr,
            Duration::from_secs(5),
            Duration::from_secs(30),
            Duration::from_secs(30),
        )
    }

    /// Opens a connection with explicit connect/read/write deadlines.
    ///
    /// # Errors
    ///
    /// Returns the connect error; a connect that exceeds `connect_timeout`
    /// is reported as [`std::io::ErrorKind::TimedOut`].
    pub fn connect_with_timeouts(
        addr: SocketAddr,
        connect_timeout: Duration,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        Ok(MiniClient {
            stream,
            head: String::new(),
            scratch: Vec::new(),
        })
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the connection drops or the response is
    /// unparseable.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<MiniResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// Sends one request with extra headers (e.g. `x-request-id`) and reads
    /// the full response.
    ///
    /// # Errors
    ///
    /// As [`MiniClient::request`].
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<MiniResponse> {
        use std::fmt::Write as _;
        self.head.clear();
        let _ = write!(
            self.head,
            "{method} {path} HTTP/1.1\r\nhost: vrl\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            self.head.push_str(name);
            self.head.push_str(": ");
            self.head.push_str(value);
            self.head.push_str("\r\n");
        }
        self.head.push_str("\r\n");
        self.stream.write_all(self.head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        read_response_from(&mut self.stream, &mut self.scratch)
    }

    /// Sends one `POST` with the given `Content-Type` and reads the
    /// response body into `out` (cleared first).  Returns the status code
    /// and whether the response negotiated the binary frame codec.
    ///
    /// This is the allocation-free hot path: the request head, read
    /// buffer, and response body all live in reused buffers, so a
    /// steady-state decide loop makes no client-side allocations.
    ///
    /// # Errors
    ///
    /// As [`MiniClient::request`].
    pub fn post_reusing(
        &mut self,
        path: &str,
        content_type: &str,
        body: &[u8],
        out: &mut Vec<u8>,
    ) -> std::io::Result<(u16, bool)> {
        use std::fmt::Write as _;
        self.head.clear();
        let _ = write!(
            self.head,
            "POST {path} HTTP/1.1\r\nhost: vrl\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(self.head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;

        let head_end = read_head_into(&mut self.stream, &mut self.scratch)?;
        let head = &self.scratch[..head_end];
        let status = scan_status(head)?;
        let content_length = scan_content_length(head)?;
        let binary = scan_header(head, "content-type")
            .is_some_and(|value| value.eq_ignore_ascii_case(frame::CONTENT_TYPE_FRAME.as_bytes()));
        out.clear();
        out.extend_from_slice(&self.scratch[head_end..]);
        while out.len() < content_length {
            let mut chunk = [0u8; 8192];
            let n = read_chunk(&mut self.stream, &mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            out.extend_from_slice(&chunk[..n]);
        }
        out.truncate(content_length);
        Ok((status, binary))
    }
}

/// `stream.read` with platform timeout kinds normalised: a read that trips
/// the socket's deadline surfaces as a clean
/// [`std::io::ErrorKind::TimedOut`] error (some platforms report socket
/// timeouts as `WouldBlock`).
fn read_chunk(stream: &mut TcpStream, chunk: &mut [u8]) -> std::io::Result<usize> {
    match stream.read(chunk) {
        Err(error)
            if matches!(
                error.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "read timed out waiting for response",
            ))
        }
        other => other,
    }
}

/// Reads from `stream` into `buffer` (cleared first) until the blank line
/// ending a response head; returns the head length.
fn read_head_into(stream: &mut TcpStream, buffer: &mut Vec<u8>) -> std::io::Result<usize> {
    buffer.clear();
    loop {
        if let Some(pos) = find_head_end(buffer) {
            return Ok(pos);
        }
        let mut chunk = [0u8; 4096];
        let n = read_chunk(stream, &mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    }
}

/// Scans a raw response head for the first header named `name` (ASCII
/// case-insensitive) without allocating.
fn scan_header<'a>(head: &'a [u8], name: &str) -> Option<&'a [u8]> {
    for line in head.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        if line[..colon].eq_ignore_ascii_case(name.as_bytes()) {
            let mut value = &line[colon + 1..];
            while let Some((b' ' | b'\t', rest)) = value.split_first() {
                value = rest;
            }
            return Some(value);
        }
    }
    None
}

/// Status code from the raw status line of a response head.
fn scan_status(head: &[u8]) -> std::io::Result<u16> {
    let line = head.split(|&b| b == b'\r').next().unwrap_or(head);
    line.split(|&b| b == b' ')
        .nth(1)
        .and_then(|code| std::str::from_utf8(code).ok())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })
}

/// `Content-Length` from a raw response head.
fn scan_content_length(head: &[u8]) -> std::io::Result<usize> {
    scan_header(head, "content-length")
        .and_then(|value| std::str::from_utf8(value).ok())
        .and_then(|value| value.trim().parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
        })
}

/// Reads one `Content-Length`-framed HTTP/1.1 response from `stream`,
/// staging raw bytes in `scratch` (a reusable buffer).
///
/// Shared by [`MiniClient`] and [`crate::remote::RemoteShard`].
pub(crate) fn read_response_from(
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
) -> std::io::Result<MiniResponse> {
    let head_end = read_head_into(stream, scratch)?;
    let head = String::from_utf8_lossy(&scratch[..head_end]).into_owned();
    let status = scan_status(head.as_bytes())?;
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let content_length = scan_content_length(head.as_bytes())?;
    let mut body = scratch[head_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        let n = read_chunk(stream, &mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(MiniResponse {
        status,
        headers,
        body,
    })
}
