//! The JSON wire codec of the HTTP serving protocol.
//!
//! Like the binary artifact codec (`crate::codec`), this module is
//! deliberately boring and dependency-free: a recursive-descent JSON parser
//! over raw bytes ([`Json::parse`]), a writer that renders numbers with
//! Rust's shortest-round-trip formatting, and explicit encode/decode
//! functions for every message the HTTP front-end ([`crate::http`])
//! exchanges.  There is no reflection and no external serialization crate —
//! the workspace builds hermetically.
//!
//! # Exactness
//!
//! `f64` values are rendered with Rust's `Display` formatting, which emits
//! the shortest decimal string that parses back to the identical bit
//! pattern.  A state or action that travels through this codec therefore
//! round-trips *bit-exactly* (the end-to-end HTTP test pins
//! `decide_batch`-over-the-wire against the in-process call).  `u64`
//! counters (request totals, generations, latency nanoseconds) take the
//! dedicated [`Json::U64`] path and render as exact decimal digits — an
//! `f64` detour would silently round anything beyond 2^53.  Non-finite
//! numbers are not representable in JSON; the server rejects non-finite
//! states before they reach the codec, and verified shields never produce
//! non-finite actions.
//!
//! # Request / response shapes
//!
//! Decide requests accept a single state or a batch (both are routed
//! through the lane-batched `decide_batch` kernels server-side):
//!
//! ```json
//! {"state": [0.1, -0.2]}
//! {"states": [[0.1, -0.2], [0.0, 0.3]]}
//! ```
//!
//! Responses, telemetry, and errors are documented per-endpoint in the
//! README's wire-protocol reference; [`decide_response`],
//! [`telemetry_response`], [`deployed_response`], [`health_response`], and
//! [`error_body`] are the single source of truth for their shapes.

use crate::telemetry::DeploymentTelemetry;
use crate::ArtifactMetadata;
use std::fmt;
use std::fmt::Write as _;
use vrl::shield::ShieldDecision;

/// Maximum nesting depth accepted by the JSON parser: a decide request is
/// at most 3 levels deep (`{"states": [[...]]}`), so 16 is generous while
/// still bounding recursion on adversarial input.
pub const MAX_JSON_DEPTH: usize = 16;

/// Why decoding a wire message failed.  Every variant maps to a structured
/// 4xx response; malformed input can never panic the server.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The body is not syntactically valid JSON.
    Syntax {
        /// Byte offset of the offending input.
        at: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// JSON nesting exceeded [`MAX_JSON_DEPTH`].
    TooDeep {
        /// Byte offset where the depth limit was hit.
        at: usize,
    },
    /// The JSON is well-formed but does not match the request schema.
    Schema(String),
    /// A batch request exceeded the server's configured state limit.
    BatchTooLarge {
        /// Number of states in the request.
        len: usize,
        /// Maximum the server accepts per request.
        max: usize,
    },
    /// The body is not a well-formed binary decide frame (see
    /// [`crate::frame`]): bad magic, unsupported version, truncation, a
    /// length prefix that disagrees with the body, or trailing bytes.
    Frame {
        /// Byte offset of the offending field.
        at: usize,
        /// What was wrong.
        detail: &'static str,
    },
    /// A binary frame carried a non-finite state coordinate.  JSON can
    /// never produce this (`NaN`/`Infinity` are not JSON), so the frame
    /// decoder enforces the server's 422 non-finite-state policy itself.
    NonFiniteState {
        /// Index of the offending state in the request.
        state: usize,
        /// Index of the non-finite coordinate within that state.
        coordinate: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax { at, expected } => {
                write!(f, "malformed JSON at byte {at}: expected {expected}")
            }
            WireError::TooDeep { at } => {
                write!(
                    f,
                    "JSON nesting at byte {at} exceeds depth {MAX_JSON_DEPTH}"
                )
            }
            WireError::Schema(msg) => write!(f, "request shape invalid: {msg}"),
            WireError::BatchTooLarge { len, max } => {
                write!(
                    f,
                    "batch of {len} states exceeds the per-request limit of {max}"
                )
            }
            WireError::Frame { at, detail } => {
                write!(f, "malformed binary frame at byte {at}: {detail}")
            }
            WireError::NonFiniteState { state, coordinate } => {
                write!(
                    f,
                    "state {state} coordinate {coordinate} is not a finite number"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed JSON value.
///
/// Numbers come in two flavours: nonnegative integer literals (no sign,
/// no fraction, no exponent) that fit a `u64` parse to [`Json::U64`] and
/// render as exact decimal digits — counters and generation numbers
/// survive beyond 2^53, where `f64` would silently round — while every
/// other number parses to [`Json::Num`] with shortest-round-trip `f64`
/// rendering.  Objects preserve key order as a `Vec` of pairs, which
/// keeps the parser allocation-light and renders deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number other than a `u64`-representable integer literal.
    Num(f64),
    /// A nonnegative integer literal, kept exact (no `f64` round-trip).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is a
    /// syntax error.
    pub fn parse(bytes: &[u8]) -> Result<Json, WireError> {
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::Syntax {
                at: p.pos,
                expected: "end of input",
            });
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of either number flavour; `None` for non-numbers.
    /// Integers beyond 2^53 round exactly as an `f64` parse of their
    /// digits would, so existing `f64` consumers see identical values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Exact integer view: the value of a [`Json::U64`], or a
    /// [`Json::Num`] that is a nonnegative integer with no fractional
    /// part; `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(out, *v),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `v` in the shortest form that round-trips bit-exactly through
/// `str::parse::<f64>()`.  Non-finite values (unreachable on validated
/// traffic) degrade to `null` rather than emitting invalid JSON.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::Syntax {
                at: self.pos,
                expected,
            })
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_JSON_DEPTH {
            return Err(WireError::TooDeep { at: self.pos });
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(WireError::Syntax {
                at: self.pos,
                expected: "a JSON value",
            }),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(WireError::Syntax {
                at: self.pos,
                expected: "true, false, or null",
            })
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.eat(b'{', "'{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        expected: "',' or '}' in object",
                    })
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        expected: "',' or ']' in array",
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.eat(b'"', "'\"' to open a string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        expected: "closing '\"'",
                    })
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or(WireError::Syntax {
                        at: self.pos,
                        expected: "escape character",
                    })?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(WireError::Syntax {
                                            at: self.pos,
                                            expected: "a low surrogate",
                                        });
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or(WireError::Syntax {
                                at: self.pos,
                                expected: "a valid unicode escape",
                            })?);
                        }
                        _ => {
                            return Err(WireError::Syntax {
                                at: self.pos - 1,
                                expected: "a valid escape character",
                            })
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        expected: "no raw control characters in strings",
                    })
                }
                Some(_) => {
                    // Consume the whole unescaped span in one UTF-8
                    // validation pass; invalid UTF-8 is a syntax error, not
                    // a panic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let span = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                        WireError::Syntax {
                            at: start,
                            expected: "valid UTF-8 string content",
                        }
                    })?;
                    out.push_str(span);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or(WireError::Syntax {
                at: self.pos,
                expected: "4 hex digits",
            })?;
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        expected: "a hex digit",
                    })
                }
            };
            code = (code << 4) | digit as u32;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        let mut integer_literal = true;
        if self.peek() == Some(b'-') {
            integer_literal = false;
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            integer_literal = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integer_literal = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        // Nonnegative integer literals that fit a u64 stay exact; wider
        // integers (and everything signed / fractional / exponential)
        // take the f64 path, exactly as before.
        if integer_literal {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(WireError::Syntax {
                at: start,
                expected: "a finite JSON number",
            }),
        }
    }
}

/// A decoded `POST …/decide` body: the states to evaluate plus whether the
/// client used the batched shape (`"states"`) or the single shape
/// (`"state"`), which controls the response framing.
#[derive(Debug, Clone, PartialEq)]
pub struct DecideRequest {
    /// States to decide, in request order.
    pub states: Vec<Vec<f64>>,
    /// True when the request used `"states"` (a batch), false for
    /// `"state"`.
    pub batched: bool,
}

/// Decodes a decide request body, accepting exactly one of `"state"` (a
/// single state vector) or `"states"` (a batch of state vectors).
///
/// # Errors
///
/// [`WireError::Syntax`] on malformed JSON, [`WireError::Schema`] on a
/// well-formed body of the wrong shape, and [`WireError::BatchTooLarge`]
/// when the batch exceeds `max_batch`.
pub fn decode_decide_request(body: &[u8], max_batch: usize) -> Result<DecideRequest, WireError> {
    let json = Json::parse(body)?;
    let state = json.get("state");
    let states = json.get("states");
    match (state, states) {
        (Some(_), Some(_)) => Err(WireError::Schema(
            "provide either \"state\" or \"states\", not both".to_string(),
        )),
        (Some(value), None) => Ok(DecideRequest {
            states: vec![number_vec(value, "state")?],
            batched: false,
        }),
        (None, Some(value)) => {
            let rows = match value {
                Json::Arr(rows) => rows,
                _ => {
                    return Err(WireError::Schema(
                        "\"states\" must be an array of state vectors".to_string(),
                    ))
                }
            };
            if rows.len() > max_batch {
                return Err(WireError::BatchTooLarge {
                    len: rows.len(),
                    max: max_batch,
                });
            }
            let states = rows
                .iter()
                .map(|row| number_vec(row, "states[i]"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(DecideRequest {
                states,
                batched: true,
            })
        }
        (None, None) => Err(WireError::Schema(
            "body must contain \"state\" or \"states\"".to_string(),
        )),
    }
}

/// Decodes a decide request body into `arena` (reset first), returning
/// whether the request was batched — the arena-backed twin of
/// [`decode_decide_request`] the HTTP front-end serves from, so the
/// decoded state matrix is reused across a connection's keep-alive
/// requests instead of reallocated per request.
///
/// # Errors
///
/// As [`decode_decide_request`].
pub fn decode_decide_request_into(
    body: &[u8],
    max_batch: usize,
    arena: &mut crate::arena::StateArena,
) -> Result<bool, WireError> {
    arena.reset();
    let json = Json::parse(body)?;
    let state = json.get("state");
    let states = json.get("states");
    match (state, states) {
        (Some(_), Some(_)) => Err(WireError::Schema(
            "provide either \"state\" or \"states\", not both".to_string(),
        )),
        (Some(value), None) => {
            number_vec_into(value, "state", arena.push_row())?;
            Ok(false)
        }
        (None, Some(value)) => {
            let rows = match value {
                Json::Arr(rows) => rows,
                _ => {
                    return Err(WireError::Schema(
                        "\"states\" must be an array of state vectors".to_string(),
                    ))
                }
            };
            if rows.len() > max_batch {
                return Err(WireError::BatchTooLarge {
                    len: rows.len(),
                    max: max_batch,
                });
            }
            for row in rows {
                number_vec_into(row, "states[i]", arena.push_row())?;
            }
            Ok(true)
        }
        (None, None) => Err(WireError::Schema(
            "body must contain \"state\" or \"states\"".to_string(),
        )),
    }
}

/// Decodes a JSON array of numbers into `out` (assumed cleared).
fn number_vec_into(value: &Json, field: &str, out: &mut Vec<f64>) -> Result<(), WireError> {
    let items = match value {
        Json::Arr(items) => items,
        _ => {
            return Err(WireError::Schema(format!(
                "\"{field}\" must be an array of numbers"
            )))
        }
    };
    out.reserve(items.len());
    for item in items {
        out.push(
            item.as_f64().ok_or_else(|| {
                WireError::Schema(format!("\"{field}\" must contain only numbers"))
            })?,
        );
    }
    Ok(())
}

fn number_vec(value: &Json, field: &str) -> Result<Vec<f64>, WireError> {
    let items = match value {
        Json::Arr(items) => items,
        _ => {
            return Err(WireError::Schema(format!(
                "\"{field}\" must be an array of numbers"
            )))
        }
    };
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| WireError::Schema(format!("\"{field}\" must contain only numbers")))
        })
        .collect()
}

fn decision_json(decision: &ShieldDecision) -> Json {
    Json::Obj(vec![
        (
            "action".to_string(),
            Json::Arr(decision.action.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("intervened".to_string(), Json::Bool(decision.intervened)),
    ])
}

/// Encodes a decide response.  Batched requests get
/// `{"deployment", "count", "decisions": [...]}`; single-state requests get
/// `{"deployment", "decision": {...}}`.
pub fn decide_response(deployment: &str, decisions: &[ShieldDecision], batched: bool) -> String {
    let json = if batched {
        Json::Obj(vec![
            ("deployment".to_string(), Json::Str(deployment.to_string())),
            ("count".to_string(), Json::U64(decisions.len() as u64)),
            (
                "decisions".to_string(),
                Json::Arr(decisions.iter().map(decision_json).collect()),
            ),
        ])
    } else {
        Json::Obj(vec![
            ("deployment".to_string(), Json::Str(deployment.to_string())),
            ("decision".to_string(), decision_json(&decisions[0])),
        ])
    };
    json.render()
}

/// Encodes a telemetry response; latency percentiles travel as integer
/// nanoseconds (see the estimator contract documented on
/// [`DeploymentTelemetry`]).  Counters render through [`Json::U64`], so
/// they stay exact beyond 2^53.
pub fn telemetry_response(telemetry: &DeploymentTelemetry) -> String {
    Json::Obj(vec![
        (
            "deployment".to_string(),
            Json::Str(telemetry.deployment.clone()),
        ),
        ("generation".to_string(), Json::U64(telemetry.generation)),
        ("requests".to_string(), Json::U64(telemetry.requests)),
        ("decisions".to_string(), Json::U64(telemetry.decisions)),
        (
            "interventions".to_string(),
            Json::U64(telemetry.interventions),
        ),
        ("redeploys".to_string(), Json::U64(telemetry.redeploys)),
        (
            "intervention_rate".to_string(),
            Json::Num(telemetry.intervention_rate),
        ),
        (
            "p50_latency_ns".to_string(),
            Json::U64(telemetry.p50_latency.as_nanos().min(u64::MAX as u128) as u64),
        ),
        (
            "p99_latency_ns".to_string(),
            Json::U64(telemetry.p99_latency.as_nanos().min(u64::MAX as u128) as u64),
        ),
    ])
    .render()
}

/// Encodes the success response of an artifact `PUT`: the generation now
/// serving plus the artifact's display metadata.
pub fn deployed_response(deployment: &str, generation: u64, meta: &ArtifactMetadata) -> String {
    Json::Obj(vec![
        ("deployment".to_string(), Json::Str(deployment.to_string())),
        ("generation".to_string(), Json::U64(generation)),
        (
            "environment".to_string(),
            Json::Str(meta.environment.clone()),
        ),
        ("state_dim".to_string(), Json::U64(meta.state_dim as u64)),
        ("action_dim".to_string(), Json::U64(meta.action_dim as u64)),
        ("pieces".to_string(), Json::U64(meta.pieces as u64)),
        (
            "oracle_parameters".to_string(),
            Json::U64(meta.oracle_parameters as u64),
        ),
        ("label".to_string(), Json::Str(meta.label.clone())),
    ])
    .render()
}

/// Encodes the `GET /healthz` response: overall status, whole seconds
/// since the process trace epoch, and one `{"name", "generation"}`
/// object per deployment (sorted by name server-side).
pub fn health_response(deployments: &[(String, u64)], uptime_seconds: u64) -> String {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("ok".to_string())),
        ("uptime_seconds".to_string(), Json::U64(uptime_seconds)),
        (
            "deployments".to_string(),
            Json::Arr(
                deployments
                    .iter()
                    .map(|(name, generation)| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(name.clone())),
                            ("generation".to_string(), Json::U64(*generation)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Encodes the success response of a deployment `DELETE`:
/// `{"deployment", "undeployed": true}`.
pub fn undeployed_response(deployment: &str) -> String {
    Json::Obj(vec![
        ("deployment".to_string(), Json::Str(deployment.to_string())),
        ("undeployed".to_string(), Json::Bool(true)),
    ])
    .render()
}

/// Encodes a batched decide request (`{"states": [[...], ...]}`) — the
/// client half of [`decode_decide_request`].  Each coordinate renders with
/// shortest-round-trip precision, so the shard evaluates exactly the bits
/// the client held.
#[must_use]
pub fn decide_batch_request(states: &[Vec<f64>]) -> String {
    let mut out = String::from("{\"states\":[");
    for (i, state) in states.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, value) in state.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_f64(&mut out, *value);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Decodes a **batched** decide response (`{"decisions": [...]}`) back into
/// shield decisions.  This is the client half of [`decide_response`]: the
/// shortest-round-trip `f64` rendering guarantees every action coordinate
/// parses back to the identical bit pattern, so a decision that crosses the
/// wire twice (shard → router → client) is still bit-exact.
///
/// # Errors
///
/// [`WireError::Syntax`] on malformed JSON, [`WireError::Schema`] when the
/// body is not a batched decide response.
pub fn decode_decide_response(body: &[u8]) -> Result<Vec<ShieldDecision>, WireError> {
    let json = Json::parse(body)?;
    let Some(Json::Arr(rows)) = json.get("decisions") else {
        return Err(WireError::Schema(
            "response has no \"decisions\" array".to_string(),
        ));
    };
    rows.iter()
        .map(|row| {
            let action = number_vec(
                row.get("action")
                    .ok_or_else(|| WireError::Schema("decision without \"action\"".to_string()))?,
                "action",
            )?;
            let intervened = match row.get("intervened") {
                Some(Json::Bool(b)) => *b,
                _ => {
                    return Err(WireError::Schema(
                        "decision without boolean \"intervened\"".to_string(),
                    ))
                }
            };
            Ok(ShieldDecision { action, intervened })
        })
        .collect()
}

/// Decodes the generation from an artifact-`PUT` success response.
///
/// # Errors
///
/// [`WireError::Syntax`] / [`WireError::Schema`] as [`decode_decide_response`].
pub fn decode_deployed_response(body: &[u8]) -> Result<u64, WireError> {
    Json::parse(body)?
        .get("generation")
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::Schema("response has no \"generation\"".to_string()))
}

/// Decodes a telemetry response back into a [`DeploymentTelemetry`] — the
/// client half of [`telemetry_response`].  Counters travel as exact `u64`
/// digits and percentiles as integer nanoseconds, so the decoded snapshot
/// equals the shard's own.
///
/// # Errors
///
/// [`WireError::Syntax`] / [`WireError::Schema`] as [`decode_decide_response`].
pub fn decode_telemetry_response(body: &[u8]) -> Result<DeploymentTelemetry, WireError> {
    let json = Json::parse(body)?;
    let field_u64 = |key: &str| -> Result<u64, WireError> {
        json.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::Schema(format!("telemetry has no integer \"{key}\"")))
    };
    let deployment = match json.get("deployment") {
        Some(Json::Str(name)) => name.clone(),
        _ => {
            return Err(WireError::Schema(
                "telemetry has no \"deployment\"".to_string(),
            ))
        }
    };
    let intervention_rate = json
        .get("intervention_rate")
        .and_then(Json::as_f64)
        .ok_or_else(|| WireError::Schema("telemetry has no \"intervention_rate\"".to_string()))?;
    Ok(DeploymentTelemetry {
        deployment,
        generation: field_u64("generation")?,
        requests: field_u64("requests")?,
        decisions: field_u64("decisions")?,
        interventions: field_u64("interventions")?,
        redeploys: field_u64("redeploys")?,
        intervention_rate,
        p50_latency: std::time::Duration::from_nanos(field_u64("p50_latency_ns")?),
        p99_latency: std::time::Duration::from_nanos(field_u64("p99_latency_ns")?),
    })
}

/// Decodes a `GET /healthz` response into
/// `(uptime_seconds, [(deployment, generation)])` — the client half of
/// [`health_response`], used by the fleet health prober.
///
/// # Errors
///
/// [`WireError::Syntax`] / [`WireError::Schema`] as [`decode_decide_response`].
pub fn decode_health_response(body: &[u8]) -> Result<(u64, Vec<(String, u64)>), WireError> {
    let json = Json::parse(body)?;
    let uptime = json
        .get("uptime_seconds")
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::Schema("healthz has no \"uptime_seconds\"".to_string()))?;
    let Some(Json::Arr(rows)) = json.get("deployments") else {
        return Err(WireError::Schema(
            "healthz has no \"deployments\" array".to_string(),
        ));
    };
    let deployments = rows
        .iter()
        .map(|row| {
            let name = match row.get("name") {
                Some(Json::Str(name)) => name.clone(),
                _ => {
                    return Err(WireError::Schema(
                        "healthz deployment without \"name\"".to_string(),
                    ))
                }
            };
            let generation = row
                .get("generation")
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    WireError::Schema("healthz deployment without \"generation\"".to_string())
                })?;
            Ok((name, generation))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((uptime, deployments))
}

/// Decodes a structured error envelope into `(status, code, message)`;
/// `None` when the body is not an [`error_body`]-shaped envelope (e.g. a
/// shard returning garbage).
pub fn decode_error_body(body: &[u8]) -> Option<(u16, String, String)> {
    let json = Json::parse(body).ok()?;
    let error = json.get("error")?;
    let status = error.get("status").and_then(Json::as_u64)?;
    let code = match error.get("code") {
        Some(Json::Str(code)) => code.clone(),
        _ => return None,
    };
    let message = match error.get("message") {
        Some(Json::Str(message)) => message.clone(),
        _ => return None,
    };
    Some((u16::try_from(status).ok()?, code, message))
}

/// Encodes the structured error body every non-2xx response carries:
/// `{"error": {"status", "code", "message", "request_id"}}`.  The
/// request id is the one echoed in the `X-Request-Id` response header,
/// so a failing call can be correlated with its trace spans.
pub fn error_body(status: u16, code: &str, message: &str, request_id: &str) -> String {
    Json::Obj(vec![(
        "error".to_string(),
        Json::Obj(vec![
            ("status".to_string(), Json::U64(status as u64)),
            ("code".to_string(), Json::Str(code.to_string())),
            ("message".to_string(), Json::Str(message.to_string())),
            ("request_id".to_string(), Json::Str(request_id.to_string())),
        ]),
    )])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let source = br#"{"a": [1, -2.5, 1e-3], "b": "x\n\"y\"", "c": true, "d": null, "e": {}}"#;
        let parsed = Json::parse(source).unwrap();
        assert_eq!(
            parsed.get("a"),
            Some(&Json::Arr(vec![
                Json::U64(1),
                Json::Num(-2.5),
                Json::Num(1e-3)
            ]))
        );
        assert_eq!(parsed.get("b"), Some(&Json::Str("x\n\"y\"".to_string())));
        let rendered = parsed.render();
        assert_eq!(Json::parse(rendered.as_bytes()).unwrap(), parsed);
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            2.2250738585072014e-308,
            123456.78901234567,
        ] {
            let rendered = Json::Num(v).render();
            match Json::parse(rendered.as_bytes()).unwrap() {
                Json::Num(back) => assert_eq!(back.to_bits(), v.to_bits(), "{v} via {rendered}"),
                other => panic!("expected a number, got {other:?}"),
            }
        }
    }

    #[test]
    fn u64_counters_round_trip_beyond_2_53() {
        // 2^53 + 1 is the first integer an f64 cannot represent: the old
        // f64-only path rendered it as 9007199254740992.  The U64 path
        // must keep every digit, all the way to u64::MAX.
        for v in [9_007_199_254_740_993u64, u64::MAX - 1, u64::MAX] {
            let rendered = Json::U64(v).render();
            assert_eq!(rendered, v.to_string(), "exact digits");
            match Json::parse(rendered.as_bytes()).unwrap() {
                Json::U64(back) => assert_eq!(back, v),
                other => panic!("expected U64, got {other:?}"),
            }
        }
        // Integer literals wider than u64 still parse (as f64), and the
        // numeric accessors agree across both flavours.
        let wide = Json::parse(b"18446744073709551616").unwrap(); // 2^64
        assert!(matches!(wide, Json::Num(_)));
        assert_eq!(Json::U64(3).as_f64(), Some(3.0));
        assert_eq!(Json::U64(3).as_u64(), Some(3));
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_f64(), None);
        // "-0" keeps its sign bit through the f64 path.
        assert!(
            matches!(Json::parse(b"-0").unwrap(), Json::Num(v) if v.to_bits() == (-0.0f64).to_bits())
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        let parsed = Json::parse(br#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed, Json::Str("é😀".to_string()));
        assert!(Json::parse(br#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        let cases: &[&[u8]] = &[
            b"",
            b"{",
            b"}",
            b"[1,]",
            b"{\"a\":}",
            b"{\"a\" 1}",
            b"nul",
            b"\"unterminated",
            b"1e999",
            b"NaN",
            b"Infinity",
            b"{\"a\":1}garbage",
            b"\x00",
            b"\"\xff\xfe\"",
            b"[\"\\q\"]",
        ];
        for case in cases {
            assert!(Json::parse(case).is_err(), "{case:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let mut deep = Vec::new();
        deep.extend(std::iter::repeat_n(b'[', MAX_JSON_DEPTH + 2));
        deep.extend(std::iter::repeat_n(b']', MAX_JSON_DEPTH + 2));
        assert_eq!(
            Json::parse(&deep),
            Err(WireError::TooDeep {
                at: MAX_JSON_DEPTH + 1
            })
        );
        let mut ok = Vec::new();
        ok.extend(std::iter::repeat_n(b'[', MAX_JSON_DEPTH));
        ok.extend(std::iter::repeat_n(b']', MAX_JSON_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn decide_requests_decode_both_shapes() {
        let single = decode_decide_request(br#"{"state": [0.25, -0.5]}"#, 16).unwrap();
        assert_eq!(single.states, vec![vec![0.25, -0.5]]);
        assert!(!single.batched);
        let batch = decode_decide_request(br#"{"states": [[1], [2], [3]]}"#, 16).unwrap();
        assert_eq!(batch.states, vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert!(batch.batched);
        let empty = decode_decide_request(br#"{"states": []}"#, 16).unwrap();
        assert!(empty.states.is_empty());
    }

    #[test]
    fn decide_request_schema_violations_are_schema_errors() {
        let cases: &[&[u8]] = &[
            b"{}",
            b"[1,2]",
            b"{\"state\": 1}",
            b"{\"state\": [\"x\"]}",
            b"{\"states\": [[1], 2]}",
            b"{\"states\": {\"a\": 1}}",
            b"{\"state\": [1], \"states\": [[1]]}",
        ];
        for case in cases {
            assert!(
                matches!(decode_decide_request(case, 16), Err(WireError::Schema(_))),
                "{} must be a schema error",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let body = format!(
            "{{\"states\": [{}]}}",
            std::iter::repeat_n("[0]", 9).collect::<Vec<_>>().join(",")
        );
        assert_eq!(
            decode_decide_request(body.as_bytes(), 8),
            Err(WireError::BatchTooLarge { len: 9, max: 8 })
        );
        assert!(decode_decide_request(body.as_bytes(), 9).is_ok());
    }

    #[test]
    fn truncations_and_mutations_never_panic() {
        // Mirrors the artifact-codec fuzz corpus style: every truncation
        // length and a byte-flip sweep of a valid request must yield clean
        // errors or clean parses, never a panic.
        let valid = br#"{"states": [[0.1, -2.5e-3], [1, 2]], "tag": "x\u00e9"}"#;
        for len in 0..valid.len() {
            let _ = decode_decide_request(&valid[..len], 64);
        }
        for i in 0..valid.len() {
            let mut mutated = valid.to_vec();
            mutated[i] ^= 0x15;
            let _ = decode_decide_request(&mutated, 64);
            mutated[i] = 0xFF;
            let _ = decode_decide_request(&mutated, 64);
        }
    }

    #[test]
    fn error_body_is_well_formed() {
        let body = error_body(
            422,
            "checksum_mismatch",
            "artifact payload corrupted: \"x\"",
            "req-0000000000000001-abcd",
        );
        let parsed = Json::parse(body.as_bytes()).unwrap();
        let error = parsed.get("error").unwrap();
        assert_eq!(error.get("status"), Some(&Json::U64(422)));
        assert_eq!(
            error.get("code"),
            Some(&Json::Str("checksum_mismatch".to_string()))
        );
        assert_eq!(
            error.get("request_id"),
            Some(&Json::Str("req-0000000000000001-abcd".to_string()))
        );
    }

    #[test]
    fn responses_decode_back_to_their_sources() {
        // decide: encode → decode is bit-exact on awkward f64s.
        let decisions = vec![
            ShieldDecision {
                action: vec![0.1, -1.0 / 3.0, -0.0, 2.0],
                intervened: true,
            },
            ShieldDecision {
                action: vec![f64::MIN_POSITIVE, 1.7976931348623157e308],
                intervened: false,
            },
        ];
        let body = decide_response("d", &decisions, true);
        let back = decode_decide_response(body.as_bytes()).unwrap();
        assert_eq!(back.len(), decisions.len());
        for (a, b) in back.iter().zip(decisions.iter()) {
            assert_eq!(a.intervened, b.intervened);
            for (x, y) in a.action.iter().zip(b.action.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Single-shape and malformed bodies are schema errors, not panics.
        assert!(
            decode_decide_response(decide_response("d", &decisions, false).as_bytes()).is_err()
        );
        assert!(decode_decide_response(b"{}").is_err());
        assert!(decode_decide_response(b"garbage").is_err());

        // telemetry round-trips exactly (u64 counters, ns percentiles).
        let telemetry = DeploymentTelemetry {
            deployment: "pendulum".to_string(),
            generation: 3,
            requests: 9_007_199_254_740_993, // > 2^53: must stay exact
            decisions: 42,
            interventions: 7,
            redeploys: 2,
            intervention_rate: 7.0 / 42.0,
            p50_latency: std::time::Duration::from_nanos(12_345),
            p99_latency: std::time::Duration::from_nanos(98_765),
        };
        let body = telemetry_response(&telemetry);
        assert_eq!(
            decode_telemetry_response(body.as_bytes()).unwrap(),
            telemetry
        );
        assert!(decode_telemetry_response(b"{}").is_err());

        // healthz round-trips.
        let body = health_response(&[("a".to_string(), 1), ("b".to_string(), 5)], 99);
        let (uptime, deployments) = decode_health_response(body.as_bytes()).unwrap();
        assert_eq!(uptime, 99);
        assert_eq!(
            deployments,
            vec![("a".to_string(), 1), ("b".to_string(), 5)]
        );

        // PUT success and DELETE success decode.
        let meta = ArtifactMetadata {
            environment: "toy".to_string(),
            state_dim: 1,
            action_dim: 1,
            pieces: 1,
            oracle_parameters: 10,
            label: String::new(),
        };
        let body = deployed_response("toy", 4, &meta);
        assert_eq!(decode_deployed_response(body.as_bytes()).unwrap(), 4);
        let body = undeployed_response("toy");
        let json = Json::parse(body.as_bytes()).unwrap();
        assert_eq!(json.get("undeployed"), Some(&Json::Bool(true)));

        // Error envelopes decode to (status, code, message).
        let body = error_body(503, "unavailable", "both replicas down", "req-1");
        assert_eq!(
            decode_error_body(body.as_bytes()),
            Some((
                503,
                "unavailable".to_string(),
                "both replicas down".to_string()
            ))
        );
        assert_eq!(decode_error_body(b"not json"), None);
        assert_eq!(decode_error_body(b"{\"error\": 1}"), None);
    }

    #[test]
    fn health_response_carries_generations_and_uptime() {
        let body = health_response(&[("pendulum".to_string(), 3)], 42);
        let parsed = Json::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.get("status"), Some(&Json::Str("ok".to_string())));
        assert_eq!(parsed.get("uptime_seconds"), Some(&Json::U64(42)));
        let Some(Json::Arr(deployments)) = parsed.get("deployments") else {
            panic!("deployments must be an array");
        };
        assert_eq!(
            deployments[0].get("name"),
            Some(&Json::Str("pendulum".to_string()))
        );
        assert_eq!(deployments[0].get("generation"), Some(&Json::U64(3)));
    }
}
