//! Consistent-hash routing of deployments across shield-server shards.
//!
//! A [`ShardRouter`] spreads named deployments over N backend
//! [`ShieldServer`] instances ("shards") by hashing the *deployment name* —
//! every request for a deployment lands on the one shard that owns it, so
//! shards never coordinate and per-deployment telemetry stays coherent.
//! Shards are in-process servers today; because placement is by name and
//! artifacts rehydrate from bytes alone, swapping a shard's `ShieldServer`
//! for a remote socket later changes the transport, not the routing.
//!
//! # Placement
//!
//! Two classic placement functions are provided ([`Placement`]):
//!
//! * **Rendezvous** (highest-random-weight, the default): each deployment
//!   scores every shard with `fnv1a64(name ‖ 0xFF ‖ shard_index)` and lands
//!   on the arg-max.  Adding shard `N` only reassigns the deployments whose
//!   new top score is shard `N` — in expectation `1/(N+1)` of them — and
//!   *every* unmoved deployment keeps its exact shard.
//! * **Jump** (Lamping & Veach's jump consistent hash): `O(ln n)` time, no
//!   per-shard scoring; the same only-`1/(N+1)`-keys-move guarantee when
//!   shards are added at the end.
//!
//! # Rehydration
//!
//! The router keeps each deployment's canonical artifact *bytes* (the
//! checksummed wire format of [`ShieldArtifact`]).  When
//! [`add_shard`](ShardRouter::add_shard) grows the fleet, the deployments
//! whose placement moved are rehydrated on their new shard from those bytes
//! — exactly the ROADMAP's "a shard can rehydrate from bytes alone" — and
//! undeployed from the old one.  A moved deployment's artifact generation
//! restarts at 1 on the new shard (its counters start fresh too; the
//! pre-move history stays in the totals reported until the move, not
//! after).

use crate::artifact::ShieldArtifact;
use crate::codec::{fnv1a64, fnv1a64_continue};
use crate::server::{ServeError, ShieldServer};
use crate::telemetry::DeploymentTelemetry;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use vrl::shield::ShieldDecision;

/// The consistent-hash placement function a [`ShardRouter`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Rendezvous (highest-random-weight) hashing: deterministic arg-max
    /// over per-shard scores.  Scores are keyed by shard *index*, so the
    /// minimal-movement guarantee holds for appending shards (the only
    /// fleet change [`ShardRouter`] performs today); removing a non-last
    /// shard would renumber the shards after it and rescore them — a
    /// future `remove_shard` needs stable shard identifiers first.
    #[default]
    Rendezvous,
    /// Jump consistent hash (Lamping & Veach 2014): `O(ln n)`, minimal
    /// movement when shards are appended.
    Jump,
}

impl Placement {
    /// The shard (0-based) that owns `name` in a fleet of `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shard_for(&self, name: &str, shards: usize) -> usize {
        assert!(shards > 0, "placement needs at least one shard");
        match self {
            Placement::Rendezvous => {
                // Hash the name prefix once, then fold each shard's suffix
                // onto it — equivalent to hashing `name ‖ 0xFF ‖ shard`
                // per shard, without building any key buffer.
                let prefix = fnv1a64_continue(fnv1a64(name.as_bytes()), &[0xFF]);
                let mut best = (0usize, 0u64);
                for shard in 0..shards {
                    let score = fnv1a64_continue(prefix, &(shard as u64).to_le_bytes());
                    if shard == 0 || score > best.1 {
                        best = (shard, score);
                    }
                }
                best.0
            }
            Placement::Jump => jump_consistent_hash(fnv1a64(name.as_bytes()), shards),
        }
    }

    /// The first `count` shards that own `name`, best first — the replica
    /// set for N-way replicated deployments ([`crate::fleet::FleetRouter`]
    /// uses `count = 2`: primary plus failover).
    ///
    /// * **Rendezvous** has a natural notion of rank: shards sorted by
    ///   score descending.  Removing the rank-1 shard promotes exactly the
    ///   rank-2 shard, so the failover replica is stable under fleet
    ///   growth the same way the primary is.
    /// * **Jump** has no per-shard score, so replicas are the primary's
    ///   successors `(primary + i) % shards` — simple and uniform, though
    ///   without rendezvous's minimal-movement guarantee for the backups.
    ///
    /// Returns `min(count, shards)` distinct indices; element 0 always
    /// equals [`Placement::shard_for`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn ranked_shards(&self, name: &str, shards: usize, count: usize) -> Vec<usize> {
        assert!(shards > 0, "placement needs at least one shard");
        let count = count.min(shards);
        match self {
            Placement::Rendezvous => {
                let prefix = fnv1a64_continue(fnv1a64(name.as_bytes()), &[0xFF]);
                let mut scored: Vec<(u64, usize)> = (0..shards)
                    .map(|shard| {
                        (
                            fnv1a64_continue(prefix, &(shard as u64).to_le_bytes()),
                            shard,
                        )
                    })
                    .collect();
                // Descending by score; ties (never observed with distinct
                // indices) prefer the lower shard, matching `shard_for`.
                scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                scored.into_iter().take(count).map(|(_, s)| s).collect()
            }
            Placement::Jump => {
                let primary = jump_consistent_hash(fnv1a64(name.as_bytes()), shards);
                (0..count).map(|i| (primary + i) % shards).collect()
            }
        }
    }
}

/// Jump consistent hash: maps `key` to a bucket in `0..buckets` such that
/// growing `buckets` by one moves only `1/(buckets+1)` of the keys (and
/// every moved key moves *to* the new bucket).
///
/// # Panics
///
/// Panics if `buckets == 0`.
pub fn jump_consistent_hash(key: u64, buckets: usize) -> usize {
    assert!(buckets > 0, "jump hash needs at least one bucket");
    // The reference LCG walk from Lamping & Veach, "A Fast, Minimal Memory,
    // Consistent Hash Algorithm".
    let mut key = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        let r = ((key >> 33) + 1) as f64;
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / r)) as i64;
    }
    b as usize
}

/// Aggregated serving totals for one shard (the sums over its deployments'
/// [`DeploymentTelemetry`] counters).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardTelemetry {
    /// Shard index.
    pub shard: usize,
    /// Deployments currently owned by the shard.
    pub deployments: u64,
    /// Requests served across those deployments.
    pub requests: u64,
    /// Shield decisions taken.
    pub decisions: u64,
    /// Decisions where the shield overrode the oracle.
    pub interventions: u64,
    /// Hot redeploys.
    pub redeploys: u64,
}

/// Fleet-wide telemetry: per-shard totals plus their sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouterTelemetry {
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ShardTelemetry>,
    /// Deployments across the fleet.
    pub deployments: u64,
    /// Requests across the fleet.
    pub requests: u64,
    /// Decisions across the fleet.
    pub decisions: u64,
    /// Interventions across the fleet.
    pub interventions: u64,
    /// Redeploys across the fleet.
    pub redeploys: u64,
}

struct RouterState {
    shards: Vec<Arc<ShieldServer>>,
    /// Canonical artifact bytes per deployment — the rehydration source
    /// when placement moves a deployment to a new shard.
    registry: HashMap<String, Vec<u8>>,
}

/// Routes deployments across backend [`ShieldServer`] shards by consistent
/// hashing on the deployment name.
///
/// The router is `Send + Sync`; share it behind an `Arc` (the HTTP
/// front-end does exactly that via
/// [`ShieldBackend`](crate::http::ShieldBackend)).
pub struct ShardRouter {
    state: RwLock<RouterState>,
    placement: Placement,
    workers_per_shard: usize,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.read().expect("router lock never poisoned");
        f.debug_struct("ShardRouter")
            .field("shards", &state.shards.len())
            .field("deployments", &state.registry.len())
            .field("placement", &self.placement)
            .finish()
    }
}

impl ShardRouter {
    /// A router over `shards` fresh in-process shards, each a
    /// [`ShieldServer`] with `workers_per_shard` batch workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `workers_per_shard == 0`.
    pub fn new(shards: usize, workers_per_shard: usize, placement: Placement) -> Self {
        assert!(shards > 0, "a router needs at least one shard");
        ShardRouter {
            state: RwLock::new(RouterState {
                shards: (0..shards)
                    .map(|_| Arc::new(ShieldServer::with_workers(workers_per_shard)))
                    .collect(),
                registry: HashMap::new(),
            }),
            placement,
            workers_per_shard,
        }
    }

    /// Number of shards currently in the fleet.
    pub fn shard_count(&self) -> usize {
        self.state
            .read()
            .expect("router lock never poisoned")
            .shards
            .len()
    }

    /// The shard that owns `name` under the current fleet size.
    pub fn shard_for(&self, name: &str) -> usize {
        self.placement.shard_for(name, self.shard_count())
    }

    /// Deploys (or hot-redeploys) `artifact` under `name` on its placed
    /// shard, recording the canonical bytes for future rehydration.
    /// Returns the generation now serving on the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates the owning shard's validation
    /// ([`ServeError::IncompatibleArtifact`] when a redeploy changes
    /// dimensions).
    pub fn deploy(&self, name: &str, artifact: ShieldArtifact) -> Result<u64, ServeError> {
        let bytes = artifact.to_bytes();
        let mut state = self.state.write().expect("router lock never poisoned");
        let shard = self.placement.shard_for(name, state.shards.len());
        let generation = state.shards[shard].deploy_or_redeploy(name, artifact)?;
        state.registry.insert(name.to_string(), bytes);
        Ok(generation)
    }

    /// Deploys from the checksummed wire bytes directly (what the HTTP
    /// `PUT` endpoint carries).
    ///
    /// # Errors
    ///
    /// [`ServeError::Artifact`] when the bytes fail validation (checksum,
    /// version, structure); otherwise as [`ShardRouter::deploy`].
    pub fn deploy_bytes(&self, name: &str, bytes: &[u8]) -> Result<u64, ServeError> {
        let artifact = ShieldArtifact::from_bytes(bytes)?;
        self.deploy(name, artifact)
    }

    /// Removes a deployment from its shard and the registry; returns
    /// whether it existed.
    pub fn undeploy(&self, name: &str) -> bool {
        let mut state = self.state.write().expect("router lock never poisoned");
        let shard = self.placement.shard_for(name, state.shards.len());
        let existed = state.registry.remove(name).is_some();
        let dropped = state.shards[shard].undeploy(name);
        debug_assert_eq!(existed, dropped, "registry and shard agree on {name:?}");
        existed
    }

    /// Names of all deployments across the fleet, sorted.
    pub fn deployments(&self) -> Vec<String> {
        let state = self.state.read().expect("router lock never poisoned");
        let mut names: Vec<String> = state.registry.keys().cloned().collect();
        names.sort();
        names
    }

    fn owning_shard(&self, name: &str) -> (usize, Arc<ShieldServer>) {
        let state = self.state.read().expect("router lock never poisoned");
        let shard = self.placement.shard_for(name, state.shards.len());
        (shard, Arc::clone(&state.shards[shard]))
    }

    /// Runs `op` against the owning shard, re-resolving placement and
    /// retrying once if the shard reports an unknown deployment: an
    /// [`add_shard`](ShardRouter::add_shard) landing between the caller's
    /// placement resolution and execution moves the deployment to the new
    /// shard, and without the retry that in-flight request would observe a
    /// transient miss for a name that was continuously deployed.
    fn with_owner<T>(
        &self,
        name: &str,
        op: impl Fn(&ShieldServer) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let (shard, server) = self.owning_shard(name);
        crate::obs::router_shard_requests()
            .with(&shard.to_string())
            .inc();
        match op(&server) {
            Err(miss @ ServeError::UnknownDeployment(_)) => {
                let (new_shard, new_server) = self.owning_shard(name);
                if new_shard == shard {
                    Err(miss)
                } else {
                    crate::obs::router_shard_requests()
                        .with(&new_shard.to_string())
                        .inc();
                    op(&new_server)
                }
            }
            result => result,
        }
    }

    /// Algorithm 3 for one state, routed to the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ShieldServer::decide`].
    pub fn decide(&self, name: &str, state: &[f64]) -> Result<ShieldDecision, ServeError> {
        self.with_owner(name, |shard| shard.decide(name, state))
    }

    /// Batched decide, routed to the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ShieldServer::decide_batch`].
    pub fn decide_batch(
        &self,
        name: &str,
        states: &[Vec<f64>],
    ) -> Result<Vec<ShieldDecision>, ServeError> {
        self.with_owner(name, |shard| shard.decide_batch(name, states))
    }

    /// A deployment's telemetry, from its owning shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDeployment`] when no shard serves `name`.
    pub fn telemetry(&self, name: &str) -> Result<DeploymentTelemetry, ServeError> {
        self.with_owner(name, |shard| shard.telemetry(name))
    }

    /// The artifact generation serving a deployment, from its owning shard
    /// (what `GET /healthz` reports per deployment).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDeployment`] when no shard serves `name`.
    pub fn generation(&self, name: &str) -> Result<u64, ServeError> {
        self.with_owner(name, |shard| shard.generation(name))
    }

    /// Fleet-wide telemetry: each shard's per-deployment counters summed,
    /// plus the cross-shard totals (which equal the per-shard sums by
    /// construction — pinned by the router tests).
    pub fn aggregate_telemetry(&self) -> RouterTelemetry {
        let state = self.state.read().expect("router lock never poisoned");
        let mut fleet = RouterTelemetry::default();
        for (index, shard) in state.shards.iter().enumerate() {
            let mut totals = ShardTelemetry {
                shard: index,
                ..ShardTelemetry::default()
            };
            for name in shard.deployments() {
                let Ok(telemetry) = shard.telemetry(&name) else {
                    continue;
                };
                totals.deployments += 1;
                totals.requests += telemetry.requests;
                totals.decisions += telemetry.decisions;
                totals.interventions += telemetry.interventions;
                totals.redeploys += telemetry.redeploys;
            }
            fleet.deployments += totals.deployments;
            fleet.requests += totals.requests;
            fleet.decisions += totals.decisions;
            fleet.interventions += totals.interventions;
            fleet.redeploys += totals.redeploys;
            fleet.per_shard.push(totals);
        }
        fleet
    }

    /// Grows the fleet by one shard, rehydrating every deployment whose
    /// placement moved onto the new shard from its canonical bytes (and
    /// undeploying it from its old shard).  Returns the moved deployment
    /// names, sorted — under both placement functions that is in
    /// expectation `1/(N+1)` of the fleet, and every move targets the new
    /// shard.
    ///
    /// Traffic continues throughout: requests for unmoved deployments are
    /// untouched, and a moved deployment is deployed on its new shard
    /// *before* the old copy is removed.  A request that resolved its
    /// placement before this call and executes after it re-resolves and
    /// retries once on a shard-level miss (see `with_owner`), so in-flight
    /// traffic never observes a gap for a continuously-deployed name.
    pub fn add_shard(&self) -> Vec<String> {
        let mut state = self.state.write().expect("router lock never poisoned");
        let old_count = state.shards.len();
        let new_count = old_count + 1;
        state
            .shards
            .push(Arc::new(ShieldServer::with_workers(self.workers_per_shard)));
        let mut moved = Vec::new();
        let names: Vec<String> = state.registry.keys().cloned().collect();
        for name in names {
            let old_shard = self.placement.shard_for(&name, old_count);
            let new_shard = self.placement.shard_for(&name, new_count);
            if old_shard == new_shard {
                continue;
            }
            debug_assert_eq!(
                new_shard, old_count,
                "consistent placement only ever moves keys to the new shard"
            );
            let bytes = state.registry[&name].clone();
            let artifact = ShieldArtifact::from_bytes(&bytes)
                .expect("registry bytes were produced by to_bytes and re-validated on deploy");
            state.shards[new_shard]
                .deploy_or_redeploy(&name, artifact)
                .expect("a fresh shard accepts any valid artifact");
            state.shards[old_shard].undeploy(&name);
            crate::obs::router_rehydrations().inc();
            moved.push(name);
        }
        moved.sort();
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_artifact;
    use std::collections::HashMap;

    #[test]
    fn jump_hash_matches_reference_properties() {
        // Bucket 0 is the only bucket for n = 1.
        for key in 0..64u64 {
            assert_eq!(jump_consistent_hash(key, 1), 0);
        }
        // Growing the bucket count never moves a key to an *old* bucket.
        for key in 0..512u64 {
            let mut previous = jump_consistent_hash(key, 1);
            for buckets in 2..12 {
                let next = jump_consistent_hash(key, buckets);
                if next != previous {
                    assert_eq!(next, buckets - 1, "key {key} moved to a non-new bucket");
                }
                previous = next;
            }
        }
    }

    #[test]
    fn placements_are_stable_and_spread() {
        for placement in [Placement::Rendezvous, Placement::Jump] {
            let mut counts = vec![0usize; 8];
            for i in 0..400 {
                let name = format!("deployment-{i}");
                let a = placement.shard_for(&name, 8);
                let b = placement.shard_for(&name, 8);
                assert_eq!(a, b, "placement is deterministic");
                counts[a] += 1;
            }
            // A crude spread check: no shard is empty, none hoards more
            // than half the keys.
            assert!(counts.iter().all(|&c| c > 0), "{placement:?}: {counts:?}");
            assert!(counts.iter().all(|&c| c < 200), "{placement:?}: {counts:?}");
        }
    }

    #[test]
    fn adding_a_shard_moves_only_keys_bound_for_it() {
        for placement in [Placement::Rendezvous, Placement::Jump] {
            let names: Vec<String> = (0..300).map(|i| format!("d{i}")).collect();
            for n in 1..8usize {
                let mut moved = 0;
                for name in &names {
                    let before = placement.shard_for(name, n);
                    let after = placement.shard_for(name, n + 1);
                    if before != after {
                        assert_eq!(after, n, "{placement:?}: moves only target the new shard");
                        moved += 1;
                    }
                }
                // Expectation is names/(n+1); accept a generous band.
                let expected = names.len() / (n + 1);
                assert!(
                    moved >= expected / 3 && moved <= expected * 3,
                    "{placement:?} n={n}: moved {moved}, expected ≈{expected}"
                );
            }
        }
    }

    #[test]
    fn router_routes_and_rehydrates_on_shard_addition() {
        let router = ShardRouter::new(3, 1, Placement::Rendezvous);
        let names: Vec<String> = (0..12).map(|i| format!("toy-{i}")).collect();
        for (i, name) in names.iter().enumerate() {
            router.deploy(name, toy_artifact(i as u64)).unwrap();
        }
        assert_eq!(router.deployments(), {
            let mut sorted = names.clone();
            sorted.sort();
            sorted
        });
        // Decisions are identical to a direct server over the same bytes.
        let mut shard_of: HashMap<String, usize> = HashMap::new();
        for (i, name) in names.iter().enumerate() {
            shard_of.insert(name.clone(), router.shard_for(name));
            let direct = ShieldServer::with_workers(1);
            direct.deploy(name, toy_artifact(i as u64)).unwrap();
            for x in [-0.6, 0.0, 0.45] {
                assert_eq!(
                    router.decide(name, &[x]).unwrap(),
                    direct.decide(name, &[x]).unwrap()
                );
            }
        }
        // Expected movers: exactly the names whose 4-shard placement is
        // the new shard 3.
        let expected_moved: Vec<String> = {
            let mut moved: Vec<String> = names
                .iter()
                .filter(|name| Placement::Rendezvous.shard_for(name, 4) == 3)
                .cloned()
                .collect();
            moved.sort();
            moved
        };
        let moved = router.add_shard();
        assert_eq!(moved, expected_moved);
        assert_eq!(router.shard_count(), 4);
        // Unmoved deployments kept their shard; moved ones rehydrated and
        // still answer identically.
        for (i, name) in names.iter().enumerate() {
            if moved.contains(name) {
                assert_eq!(router.shard_for(name), 3);
            } else {
                assert_eq!(router.shard_for(name), shard_of[name]);
            }
            let direct = ShieldServer::with_workers(1);
            direct.deploy(name, toy_artifact(i as u64)).unwrap();
            assert_eq!(
                router.decide(name, &[0.2]).unwrap(),
                direct.decide(name, &[0.2]).unwrap()
            );
        }
    }

    #[test]
    fn aggregate_telemetry_equals_per_shard_sums() {
        let router = ShardRouter::new(3, 1, Placement::Rendezvous);
        let names: Vec<String> = (0..6).map(|i| format!("toy-{i}")).collect();
        for (i, name) in names.iter().enumerate() {
            router.deploy(name, toy_artifact(i as u64)).unwrap();
        }
        let states: Vec<Vec<f64>> = (0..50).map(|i| vec![(i as f64 / 25.0) - 1.0]).collect();
        for (i, name) in names.iter().enumerate() {
            // Different traffic per deployment so sums are distinguishable.
            router.decide_batch(name, &states[..10 + 5 * i]).unwrap();
            router.decide(name, &[0.1]).unwrap();
        }
        let fleet = router.aggregate_telemetry();
        assert_eq!(fleet.per_shard.len(), 3);
        // The fleet totals equal both the per-shard sums and the
        // per-deployment sums.
        let mut requests = 0;
        let mut decisions = 0;
        let mut interventions = 0;
        for name in &names {
            let t = router.telemetry(name).unwrap();
            requests += t.requests;
            decisions += t.decisions;
            interventions += t.interventions;
        }
        assert_eq!(
            fleet.requests,
            fleet.per_shard.iter().map(|s| s.requests).sum::<u64>()
        );
        assert_eq!(fleet.requests, requests);
        assert_eq!(fleet.decisions, decisions);
        assert_eq!(fleet.interventions, interventions);
        assert_eq!(fleet.deployments, names.len() as u64);
        assert_eq!(fleet.requests, 2 * names.len() as u64);
        assert_eq!(
            fleet.decisions,
            names
                .iter()
                .enumerate()
                .map(|(i, _)| 10 + 5 * i as u64 + 1)
                .sum::<u64>()
        );
    }

    #[test]
    fn undeploy_and_redeploy_through_the_router() {
        let router = ShardRouter::new(2, 1, Placement::Jump);
        assert_eq!(router.deploy("toy", toy_artifact(1)).unwrap(), 1);
        // PUT semantics: a second deploy of the same name is a hot redeploy.
        assert_eq!(router.deploy("toy", toy_artifact(2)).unwrap(), 2);
        assert!(router.undeploy("toy"));
        assert!(!router.undeploy("toy"));
        assert!(matches!(
            router.decide("toy", &[0.0]),
            Err(ServeError::UnknownDeployment(_))
        ));
    }

    #[test]
    fn deploy_bytes_validates_the_checksum() {
        let router = ShardRouter::new(2, 1, Placement::Rendezvous);
        let mut bytes = toy_artifact(3).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            router.deploy_bytes("toy", &bytes),
            Err(ServeError::Artifact(_))
        ));
        assert!(router.deployments().is_empty());
    }
}
