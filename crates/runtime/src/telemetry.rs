//! Per-deployment serving telemetry: request counters, intervention rates,
//! and latency percentiles over a recent window.
//!
//! # Percentile estimator semantics
//!
//! The p50/p99 numbers reported in [`DeploymentTelemetry`] (and over the
//! HTTP telemetry endpoint) are **windowed, per-decision, nearest-rank**
//! percentiles.  Precisely:
//!
//! 1. **Per-decision normalization.**  Every served request records one
//!    sample: its wall-clock duration divided by the number of decisions it
//!    carried (so a 1000 µs batch of 10 decisions records 100 µs, directly
//!    comparable to ten 100 µs single decides).  Integer division truncates
//!    to whole nanoseconds.
//! 2. **Recent window.**  Samples land in a fixed 4096-entry ring buffer
//!    (`LATENCY_WINDOW`); once full, each new sample overwrites the oldest.
//!    Percentiles therefore describe the *most recent* ≤ 4096 requests, not
//!    deployment lifetime — a latency regression shows up within one window
//!    even on a long-lived deployment.
//! 3. **Nearest-rank selection.**  A percentile `p` over a window of `n`
//!    samples is the sorted window's element at index
//!    `round((n − 1) · p)` (banker's-free `f64::round`, ties away from
//!    zero).  There is **no interpolation**: the estimate is always a
//!    latency that actually occurred.  With `n = 100`, p50 is the 51st
//!    smallest sample (index 50) and p99 the 99th (index 98).
//! 4. **Empty window.**  Zero recorded requests report
//!    [`Duration::ZERO`] for every percentile.
//!
//! The unit tests pin this contract on known latency sequences; the batch
//! vs. sequential metering test proves both decide paths feed the same
//! distribution.
//!
//! # Backing histogram
//!
//! The identical per-decision samples are mirrored into the process-wide
//! `vrl_runtime_decide_latency_seconds` log-bucket histogram
//! (`vrl_obs`), exposed at `GET /metrics` — so an external scraper sees
//! the *lifetime* latency distribution while the JSON telemetry endpoint
//! reports the windowed nearest-rank view above.  The two estimators
//! agree to within one power-of-two bucket by construction; mirroring is
//! gated on [`vrl_obs::enabled`] and never alters the recorded sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Capacity of the recent-latency ring buffer backing the percentile
/// estimates.
const LATENCY_WINDOW: usize = 4096;

/// Mutable recorder owned by each deployment.
///
/// Counters are atomics so the serving hot path only pays relaxed
/// increments; the latency ring sits behind a `Mutex` because percentile
/// bookkeeping needs exclusive access anyway.  Deliberately **not** `Clone`
/// (deriving `Clone` on an atomics-bearing struct silently chooses between
/// snapshot and reset semantics); consumers take an explicit
/// [`StatsRecorder::snapshot`] instead.
#[derive(Debug)]
pub(crate) struct StatsRecorder {
    requests: AtomicU64,
    decisions: AtomicU64,
    interventions: AtomicU64,
    redeploys: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug)]
struct LatencyRing {
    nanos: Vec<u64>,
    next: usize,
    filled: bool,
}

impl StatsRecorder {
    pub(crate) fn new() -> Self {
        StatsRecorder {
            requests: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            interventions: AtomicU64::new(0),
            redeploys: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                nanos: Vec::with_capacity(LATENCY_WINDOW),
                next: 0,
                filled: false,
            }),
        }
    }

    /// Records one served request covering `decisions` shield decisions, of
    /// which `interventions` overrode the oracle, taking `elapsed` wall
    /// clock in total.
    pub(crate) fn record_request(&self, decisions: u64, interventions: u64, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.decisions.fetch_add(decisions, Ordering::Relaxed);
        self.interventions
            .fetch_add(interventions, Ordering::Relaxed);
        // Store the per-decision latency so single decides and large batches
        // feed one comparable distribution.
        let per_decision = if decisions == 0 {
            elapsed.as_nanos() as u64
        } else {
            (elapsed.as_nanos() / decisions as u128) as u64
        };
        // Mirror the same sample into the process-wide registry (the
        // histogram backing `vrl_runtime_decide_latency_seconds`); gated
        // so the serve_throughput bench can measure the overhead.
        if vrl_obs::enabled() {
            crate::obs::requests().inc();
            crate::obs::decisions().add(decisions);
            crate::obs::interventions().add(interventions);
            crate::obs::decide_latency().observe_ns(per_decision);
        }
        let mut ring = self.latencies.lock().expect("latency lock never poisoned");
        if ring.nanos.len() < LATENCY_WINDOW {
            ring.nanos.push(per_decision);
        } else {
            let slot = ring.next;
            ring.nanos[slot] = per_decision;
            ring.filled = true;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    pub(crate) fn record_redeploy(&self) {
        self.redeploys.fetch_add(1, Ordering::Relaxed);
        crate::obs::redeploys().inc();
    }

    /// Takes a consistent-enough copy of the counters and computes latency
    /// percentiles over the recent window (nearest-rank over the ring of
    /// per-decision samples — see the module docs for the exact contract).
    pub(crate) fn snapshot(&self, deployment: &str, generation: u64) -> DeploymentTelemetry {
        let mut sorted = {
            let ring = self.latencies.lock().expect("latency lock never poisoned");
            ring.nanos.clone()
        };
        sorted.sort_unstable();
        let percentile = |p: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            Duration::from_nanos(sorted[rank])
        };
        let decisions = self.decisions.load(Ordering::Relaxed);
        let interventions = self.interventions.load(Ordering::Relaxed);
        DeploymentTelemetry {
            deployment: deployment.to_string(),
            generation,
            requests: self.requests.load(Ordering::Relaxed),
            decisions,
            interventions,
            redeploys: self.redeploys.load(Ordering::Relaxed),
            intervention_rate: if decisions == 0 {
                0.0
            } else {
                interventions as f64 / decisions as f64
            },
            p50_latency: percentile(0.50),
            p99_latency: percentile(0.99),
        }
    }
}

/// A point-in-time view of one deployment's serving metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentTelemetry {
    /// Deployment name.
    pub deployment: String,
    /// Artifact generation currently serving (increments on redeploy).
    pub generation: u64,
    /// Requests served (a batch counts once).
    pub requests: u64,
    /// Total shield decisions taken.
    pub decisions: u64,
    /// Decisions where the shield overrode the oracle.
    pub interventions: u64,
    /// Number of hot redeploys since the deployment was created.
    pub redeploys: u64,
    /// Fraction of decisions that were interventions.
    pub intervention_rate: f64,
    /// Median per-decision latency over the recent window (nearest-rank
    /// estimator; see the module docs for its exact semantics).
    pub p50_latency: Duration,
    /// 99th-percentile per-decision latency over the recent window
    /// (nearest-rank estimator; see the module docs).
    pub p99_latency: Duration,
}

impl std::fmt::Display for DeploymentTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}#g{}: {} requests, {} decisions ({:.2}% interventions), p50 {:?}, p99 {:?}, {} redeploys",
            self.deployment,
            self.generation,
            self.requests,
            self.decisions,
            self.intervention_rate * 100.0,
            self.p50_latency,
            self.p99_latency,
            self.redeploys,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_across_requests() {
        let stats = StatsRecorder::new();
        stats.record_request(10, 3, Duration::from_micros(50));
        stats.record_request(1, 0, Duration::from_micros(5));
        stats.record_redeploy();
        let snap = stats.snapshot("pendulum", 2);
        assert_eq!(snap.deployment, "pendulum");
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.decisions, 11);
        assert_eq!(snap.interventions, 3);
        assert_eq!(snap.redeploys, 1);
        assert!((snap.intervention_rate - 3.0 / 11.0).abs() < 1e-12);
        assert!(snap.p50_latency > Duration::ZERO);
        assert!(snap.p99_latency >= snap.p50_latency);
        assert!(snap.to_string().contains("pendulum#g2"));
    }

    #[test]
    fn empty_recorder_snapshots_zeros() {
        let stats = StatsRecorder::new();
        let snap = stats.snapshot("idle", 1);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.intervention_rate, 0.0);
        assert_eq!(snap.p50_latency, Duration::ZERO);
    }

    #[test]
    fn batch_and_sequential_traffic_meter_identically() {
        // Regression guard for the shared counting contract between
        // `decide` and `decide_batch`: the same decisions must produce the
        // same intervention rate and decision totals whether they arrive as
        // one batched request or as per-decision requests.
        let latencies_us = [40u64, 40, 80, 80, 80, 120, 120, 200, 200, 1000];
        let intervened = [
            false, true, false, false, true, true, false, false, true, true,
        ];
        let sequential = StatsRecorder::new();
        for (&us, &hit) in latencies_us.iter().zip(intervened.iter()) {
            sequential.record_request(1, u64::from(hit), Duration::from_micros(us));
        }
        let batched = StatsRecorder::new();
        batched.record_request(
            latencies_us.len() as u64,
            intervened.iter().filter(|&&h| h).count() as u64,
            Duration::from_micros(latencies_us.iter().sum()),
        );
        let seq = sequential.snapshot("d", 1);
        let bat = batched.snapshot("d", 1);
        assert_eq!(seq.decisions, bat.decisions);
        assert_eq!(seq.interventions, bat.interventions);
        assert_eq!(seq.intervention_rate, bat.intervention_rate);
        assert_eq!(seq.requests, 10);
        assert_eq!(bat.requests, 1);
        // The recorder stores *per-decision* latency, so when every decision
        // costs the same, the percentile estimates are identical too: ten
        // 100µs decides vs one 1000µs batch of ten.
        let per_decision = StatsRecorder::new();
        let one_batch = StatsRecorder::new();
        for _ in 0..10 {
            per_decision.record_request(1, 1, Duration::from_micros(100));
        }
        one_batch.record_request(10, 10, Duration::from_micros(1000));
        let a = per_decision.snapshot("d", 1);
        let b = one_batch.snapshot("d", 1);
        assert_eq!(a.p50_latency, b.p50_latency);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.intervention_rate, b.intervention_rate);
    }

    #[test]
    fn percentiles_follow_the_documented_nearest_rank_contract() {
        // Pin the estimator on a known sequence: per-decision latencies
        // 1µs..=100µs arriving in shuffled order (order must not matter).
        let stats = StatsRecorder::new();
        let mut order: Vec<u64> = (1..=100).collect();
        // Deterministic shuffle: stride through the range coprime to 100.
        order.sort_by_key(|v| (v * 37) % 101);
        for us in order {
            stats.record_request(1, 0, Duration::from_micros(us));
        }
        let snap = stats.snapshot("pinned", 1);
        // n = 100: p50 is index round(99 * 0.50) = 50 of the sorted window
        // (the 51st smallest sample), p99 is index round(99 * 0.99) = 98.
        assert_eq!(snap.p50_latency, Duration::from_micros(51));
        assert_eq!(snap.p99_latency, Duration::from_micros(99));

        // A batch records its *per-decision* latency: one request of 10
        // decisions over 1 ms contributes a single 100 µs sample, and with
        // n = 1 both percentiles are that sample.
        let batch = StatsRecorder::new();
        batch.record_request(10, 0, Duration::from_micros(1000));
        let snap = batch.snapshot("pinned", 1);
        assert_eq!(snap.p50_latency, Duration::from_micros(100));
        assert_eq!(snap.p99_latency, Duration::from_micros(100));

        // n = 2: p50 = index round(1 * 0.5) = 1, the *larger* sample
        // (round half away from zero), p99 = index 1 as well.
        let two = StatsRecorder::new();
        two.record_request(1, 0, Duration::from_micros(10));
        two.record_request(1, 0, Duration::from_micros(20));
        let snap = two.snapshot("pinned", 1);
        assert_eq!(snap.p50_latency, Duration::from_micros(20));
        assert_eq!(snap.p99_latency, Duration::from_micros(20));
    }

    #[test]
    fn percentiles_describe_only_the_recent_window() {
        // Fill the ring with slow samples, then overwrite it completely
        // with fast ones: the slow history must vanish from the estimate.
        let stats = StatsRecorder::new();
        for _ in 0..LATENCY_WINDOW {
            stats.record_request(1, 0, Duration::from_micros(900));
        }
        assert_eq!(
            stats.snapshot("w", 1).p99_latency,
            Duration::from_micros(900)
        );
        for _ in 0..LATENCY_WINDOW {
            stats.record_request(1, 0, Duration::from_micros(10));
        }
        let snap = stats.snapshot("w", 1);
        assert_eq!(snap.p50_latency, Duration::from_micros(10));
        assert_eq!(snap.p99_latency, Duration::from_micros(10));
        // Counters, unlike percentiles, are lifetime totals.
        assert_eq!(snap.requests, 2 * LATENCY_WINDOW as u64);
    }

    #[test]
    fn latency_window_wraps_without_growing() {
        let stats = StatsRecorder::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            stats.record_request(1, 0, Duration::from_nanos(i as u64));
        }
        let ring = stats.latencies.lock().unwrap();
        assert_eq!(ring.nanos.len(), LATENCY_WINDOW);
        assert!(ring.filled);
    }
}
