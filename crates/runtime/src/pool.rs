//! A small fixed-size worker pool used to fan out batched shield
//! evaluations.
//!
//! Plain standard-library building blocks: a shared `Mutex<VecDeque>` task
//! queue, a `Condvar` for wakeups, and one OS thread per worker.  Tasks are
//! boxed closures; results travel back through whatever channel the caller
//! buries in the closure (the server uses `std::sync::mpsc`).  Dropping the
//! pool drains naturally: workers finish the tasks already queued, then
//! exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    wakeup: Condvar,
}

/// A fixed-size pool of worker threads executing boxed tasks FIFO.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a worker pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vrl-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawn succeeds")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn with_default_size() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        WorkerPool::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task; it runs on some worker as soon as one is free.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool lock never poisoned");
        debug_assert!(!state.shutdown, "execute after shutdown");
        state.tasks.push_back(Box::new(task));
        drop(state);
        self.shared.wakeup.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock never poisoned");
            state.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock never poisoned");
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared.wakeup.wait(state).expect("pool lock never poisoned");
            }
        };
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn all_tasks_run() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn queued_tasks_finish_before_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping the pool joins the workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn default_size_matches_parallelism() {
        let pool = WorkerPool::with_default_size();
        assert!(pool.threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkerPool::new(0);
    }
}
