//! The end-to-end toolchain of Fig. 2: train a neural oracle, synthesize and
//! verify a deterministic program shield, and evaluate the shielded system.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::time::{Duration, Instant};
use vrl_dynamics::EnvironmentContext;
use vrl_rl::{train_ars, train_ddpg, ArsConfig, DdpgConfig, NeuralPolicy};
use vrl_shield::{
    evaluate_shielded_system, synthesize_shield, CegisConfig, CegisError, CegisReport, Shield,
    ShieldEvaluation,
};

/// How the neural oracle is trained.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleTrainer {
    /// Augmented Random Search (fast and robust on these benchmarks).
    Ars(ArsConfig),
    /// Deep Deterministic Policy Gradient (the paper's deep policy-gradient
    /// trainer).
    Ddpg(DdpgConfig),
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Hidden-layer sizes of the neural oracle.
    pub hidden_layers: Vec<usize>,
    /// Oracle training algorithm and budget.
    pub trainer: OracleTrainer,
    /// Shield synthesis (Algorithm 1 + 2 + verification) settings.
    pub cegis: CegisConfig,
    /// Episodes used for the final evaluation.
    pub evaluation_episodes: usize,
    /// Steps per evaluation episode.
    pub evaluation_steps: usize,
    /// RNG seed making the whole pipeline reproducible.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            hidden_layers: vec![64, 64],
            trainer: OracleTrainer::Ars(ArsConfig::default()),
            cegis: CegisConfig::default(),
            evaluation_episodes: 20,
            evaluation_steps: 2000,
            seed: 2019,
        }
    }
}

impl PipelineConfig {
    /// A deliberately tiny budget for unit tests and smoke runs.
    pub fn smoke_test() -> Self {
        PipelineConfig {
            hidden_layers: vec![16, 16],
            trainer: OracleTrainer::Ars(ArsConfig::smoke_test()),
            cegis: CegisConfig::smoke_test(),
            evaluation_episodes: 5,
            evaluation_steps: 500,
            ..PipelineConfig::default()
        }
    }

    /// Sets the invariant degree used for verification (the Table 2 knob).
    pub fn with_invariant_degree(mut self, degree: u32) -> Self {
        self.cegis.verification.invariant_degree = degree;
        self
    }
}

/// Everything the pipeline produced for one benchmark.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The trained neural oracle.
    pub oracle: NeuralPolicy,
    /// The synthesized and verified shield.
    pub shield: Shield,
    /// Diagnostics of the CEGIS loop (pieces, attempts, synthesis time).
    pub cegis_report: CegisReport,
    /// Wall-clock time spent training the neural oracle.
    pub training_time: Duration,
    /// Table 1-style evaluation of the shielded system.
    pub evaluation: ShieldEvaluation,
}

/// Why the pipeline failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Shield synthesis failed.
    Cegis(CegisError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Cegis(e) => write!(f, "shield synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CegisError> for PipelineError {
    fn from(e: CegisError) -> Self {
        PipelineError::Cegis(e)
    }
}

/// Trains a neural oracle for `env` according to `config`, returning the
/// policy and the wall-clock training time.
pub fn train_oracle(env: &EnvironmentContext, config: &PipelineConfig) -> (NeuralPolicy, Duration) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let action_scale = env
        .action_high()
        .iter()
        .map(|x| x.abs())
        .fold(1.0f64, f64::max)
        .min(1e6);
    let start = Instant::now();
    let oracle = match &config.trainer {
        OracleTrainer::Ars(ars) => {
            let mut policy = NeuralPolicy::new(
                env.state_dim(),
                env.action_dim(),
                &config.hidden_layers,
                action_scale,
                &mut rng,
            );
            train_ars(env, &mut policy, ars, &mut rng);
            policy
        }
        OracleTrainer::Ddpg(ddpg) => {
            let mut ddpg = ddpg.clone();
            ddpg.hidden = config.hidden_layers.clone();
            let (agent, _report) = train_ddpg(env, ddpg, &mut rng);
            agent.into_actor()
        }
    };
    (oracle, start.elapsed())
}

/// Runs the complete toolchain on `env`: oracle training, CEGIS shield
/// synthesis, and evaluation.
///
/// # Errors
///
/// Returns [`PipelineError::Cegis`] when no shield covering the initial state
/// space could be synthesized within the configured budget.
pub fn run_pipeline(
    env: &EnvironmentContext,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, PipelineError> {
    let (oracle, training_time) = train_oracle(env, config);
    run_pipeline_with_oracle(env, oracle, training_time, config)
}

/// Runs shield synthesis and evaluation for an already-trained oracle.
///
/// This is the entry point used by the Table 3 experiments, where an existing
/// network is redeployed in a changed environment and only the shield is
/// re-synthesized.
///
/// # Errors
///
/// Returns [`PipelineError::Cegis`] when shield synthesis fails.
pub fn run_pipeline_with_oracle(
    env: &EnvironmentContext,
    oracle: NeuralPolicy,
    training_time: Duration,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, PipelineError> {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(1));
    let (shield, cegis_report) = synthesize_shield(env, &oracle, &config.cegis, &mut rng)?;
    let evaluation = evaluate_shielded_system(
        env,
        &oracle,
        &shield,
        config.evaluation_episodes,
        config.evaluation_steps,
        &mut rng,
    );
    Ok(PipelineOutcome {
        oracle,
        shield,
        cegis_report,
        training_time,
        evaluation,
    })
}

/// Re-synthesizes a shield for an existing oracle deployed in a *changed*
/// environment (Table 3), without retraining the network.
///
/// # Errors
///
/// Returns [`PipelineError::Cegis`] when shield synthesis fails in the new
/// environment.
pub fn resynthesize_shield_for(
    new_env: &EnvironmentContext,
    oracle: &NeuralPolicy,
    config: &PipelineConfig,
) -> Result<(Shield, CegisReport), PipelineError> {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(2));
    let (shield, report) = synthesize_shield(new_env, oracle, &config.cegis, &mut rng)?;
    Ok((shield, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_dynamics::{BoxRegion, Policy, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;
    use vrl_verify::VerificationConfig;

    fn scalar_env() -> EnvironmentContext {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        EnvironmentContext::new(
            "scalar",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        )
        .with_action_bounds(vec![-2.0], vec![2.0])
    }

    #[test]
    fn smoke_pipeline_runs_end_to_end() {
        let env = scalar_env();
        let mut config = PipelineConfig::smoke_test();
        config.cegis.verification = VerificationConfig::with_degree(2);
        let outcome = run_pipeline(&env, &config).expect("the scalar system is easy to shield");
        assert!(outcome.shield.num_pieces() >= 1);
        assert_eq!(outcome.evaluation.shielded_failures, 0);
        assert!(outcome.training_time.as_nanos() > 0);
        assert_eq!(outcome.cegis_report.pieces, outcome.shield.num_pieces());
        assert_eq!(outcome.oracle.action_dim(), 1);
    }

    #[test]
    fn shield_can_be_resynthesized_for_a_changed_environment() {
        let env = scalar_env();
        let mut config = PipelineConfig::smoke_test();
        config.cegis.verification = VerificationConfig::with_degree(2);
        let outcome = run_pipeline(&env, &config).unwrap();
        // Deploy the same oracle with a tighter safety requirement.
        let restricted = env
            .clone()
            .with_safety(SafetySpec::inside(BoxRegion::symmetric(&[0.6])))
            .with_name("scalar-restricted");
        let (new_shield, report) =
            resynthesize_shield_for(&restricted, &outcome.oracle, &config).unwrap();
        assert!(report.pieces >= 1);
        assert!(new_shield.covers(&[0.2]));
        assert!(
            !new_shield.covers(&[0.7]),
            "the new shield must respect the tighter bound"
        );
    }

    #[test]
    fn config_builders() {
        let c = PipelineConfig::default().with_invariant_degree(8);
        assert_eq!(c.cegis.verification.invariant_degree, 8);
        let smoke = PipelineConfig::smoke_test();
        assert!(smoke.evaluation_episodes <= 10);
        let err = PipelineError::Cegis(CegisError::CouldNotCoverInitialStates {
            uncovered: vec![0.0],
            pieces_synthesized: 0,
        });
        assert!(err.to_string().contains("shield synthesis failed"));
    }
}
