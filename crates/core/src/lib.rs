//! `vrl` — an inductive synthesis framework for verifiable reinforcement
//! learning.
//!
//! This crate is the top-level facade of a full reproduction of
//! *"An Inductive Synthesis Framework for Verifiable Reinforcement Learning"*
//! (Zhu, Xiong, Magill, Jagannathan — PLDI 2019).  It re-exports every
//! subsystem and provides the end-to-end [`pipeline`]:
//!
//! 1. train a neural control policy ([`rl`]),
//! 2. synthesize a simple deterministic program imitating it ([`synth`],
//!    Algorithm 1),
//! 3. verify the program by inferring an inductive invariant over the
//!    environment transition system ([`verify`], Sec. 4.2) inside a
//!    counterexample-guided loop ([`shield`], Algorithm 2), and
//! 4. deploy program + invariant as a runtime shield that overrides the
//!    network only when it would leave the proven-safe region
//!    (Algorithm 3).
//!
//! # Quickstart
//!
//! ```
//! use vrl::pipeline::{run_pipeline, PipelineConfig};
//! use vrl::benchmarks;
//!
//! // A deliberately tiny budget so the example runs in seconds; the
//! // benchmark harness uses the full budgets of the paper.
//! let env = benchmarks::quadcopter::quadcopter_env();
//! let mut config = PipelineConfig::smoke_test().with_invariant_degree(2);
//! config.evaluation_episodes = 2;
//! config.evaluation_steps = 200;
//! let outcome = run_pipeline(&env, &config).expect("quadcopter is shieldable");
//! assert_eq!(outcome.evaluation.shielded_failures, 0);
//! println!("{}", outcome.shield.to_program().pretty(&env.variable_names()));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod pipeline;

pub use pipeline::{
    resynthesize_shield_for, run_pipeline, run_pipeline_with_oracle, train_oracle, OracleTrainer,
    PipelineConfig, PipelineError, PipelineOutcome,
};

/// Benchmark environments (re-export of [`vrl_benchmarks`]).
pub use vrl_benchmarks as benchmarks;
/// Environment substrate (re-export of [`vrl_dynamics`]).
pub use vrl_dynamics as dynamics;
/// Dense linear algebra (re-export of [`vrl_linalg`]).
pub use vrl_linalg as linalg;
/// Neural networks (re-export of [`vrl_nn`]).
pub use vrl_nn as nn;
/// Polynomial algebra (re-export of [`vrl_poly`]).
pub use vrl_poly as poly;
/// Reinforcement learning (re-export of [`vrl_rl`]).
pub use vrl_rl as rl;
/// Shield synthesis and runtime enforcement (re-export of [`vrl_shield`]).
pub use vrl_shield as shield;
/// Constraint solving (re-export of [`vrl_solver`]).
pub use vrl_solver as solver;
/// Program synthesis (re-export of [`vrl_synth`]).
pub use vrl_synth as synth;
/// Verification (re-export of [`vrl_verify`]).
pub use vrl_verify as verify;
