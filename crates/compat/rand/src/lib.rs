//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the subset of the `rand 0.8` API the framework actually
//! uses is provided here: the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), the [`SeedableRng`] constructor trait, and a fast
//! deterministic [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! The generator is deterministic per seed and portable across platforms,
//! which is exactly what the reproduction needs: every pipeline run, test
//! and benchmark derives its randomness from an explicit `u64` seed.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_uniform(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed (mirroring `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution.
pub trait SampleStandard {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ (the same family
    /// `rand 0.8`'s `SmallRng` uses on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors (and done by rand_core).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                state: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_samples_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let n = rng.gen_range(1usize..5);
            assert!((1..5).contains(&n));
            let m = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0f64)
        }
        let mut rng = SmallRng::seed_from_u64(11);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
        // A `&mut SmallRng` is itself an Rng, as call sites rely on.
        let r: &mut SmallRng = &mut rng;
        let y = draw(r);
        assert!((0.0..1.0).contains(&y));
    }
}
