//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds hermetically (no crates.io access), so this crate
//! provides the subset of the criterion API the benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock sampler that prints median / mean / min per benchmark.
//!
//! Bench targets must set `harness = false`, exactly as with real criterion.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (simplified `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion defaults to 100 samples; these benches run heavy
        // synthesis pipelines, so the offline harness defaults lower and the
        // benches that need it call `sample_size` explicitly.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }

    fn default_sample_size(&self) -> usize {
        self.sample_size
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self
            .sample_size
            .unwrap_or_else(|| self._criterion.default_sample_size());
        run_benchmark(&format!("{}/{}", self.name, id), samples, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter (simplified
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up execution, untimed.
        black_box(routine());
        for _ in 0..self.per_sample {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        per_sample: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "  {name:<40} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({n} samples)",
        n = sorted.len(),
    );
}

/// Bundles benchmark functions into one runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
