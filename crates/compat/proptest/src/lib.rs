//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace builds hermetically (no crates.io access), so this crate
//! provides the small subset of the proptest API used by the test suites:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and
//! `collection::vec` strategies.
//!
//! Semantics are simplified but honest: every property runs for a fixed
//! number of deterministic random cases (seeded from the test name, so
//! failures reproduce across runs); there is no shrinking.

#![deny(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Number of cases run per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Run-time configuration of a property (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Builds the deterministic generator backing one property, seeded from the
/// property's name so each test has an independent but reproducible stream.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(hash)
}

/// `vec`-building strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::{SizeRange, VecStrategy};

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size` (a fixed `usize` or a range).
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports test modules glob in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: `proptest! { fn name(x in strategy, ...) { body } }`.
///
/// Each function expands to a `#[test]` that executes the body for a number
/// of deterministically sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                // Run the case in a closure so `prop_assume!` can reject it
                // with an early return; assertion failures panic as usual.
                let case_info = format!(
                    "case {case}/{total} of {name}",
                    total = config.cases,
                    name = stringify!($name),
                );
                let result = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = result {
                    panic!("property failed at {case_info}: {message}");
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else` rather than `if !cond` so float conditions do
        // not trip clippy::neg_cmp_op_on_partial_ord at every call site.
        if $cond {
        } else {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Rejects the current case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn addition_commutes(a in -100.0..100.0f64, b in -100.0..100.0f64) {
            prop_assert!((a + b - (b + a)).abs() < 1e-12);
        }

        fn vectors_have_requested_lengths(
            fixed in crate::collection::vec(0.0..1.0f64, 4),
            ranged in crate::collection::vec(-1.0..1.0f64, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((2..6).contains(&ranged.len()));
        }

        fn assume_rejects_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
