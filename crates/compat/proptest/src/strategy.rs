//! Value-generation strategies: ranges and `vec` combinators.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type (simplified `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_strategy!(u32, u64, usize, i32, i64);

/// Length specification for [`crate::collection::vec`]: a fixed size or a
/// half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    low: usize,
    high: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            low: n,
            high: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            low: r.start,
            high: r.end,
        }
    }
}

/// Strategy for `Vec`s: an element strategy plus a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.low + 1 == self.size.high {
            self.size.low
        } else {
            rng.gen_range(self.size.low..self.size.high)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
