//! The five linear time-invariant benchmarks adapted from Fan et al. (CAV'18)
//! used at the top of Table 1: Satellite, DCMotor, Tape, Magnetic Pointer and
//! Suspension.
//!
//! The paper only names these systems and states that "the safety property is
//! that the reach set has to be within a safe rectangle"; we implement
//! representative textbook LTI models of the named plants with matching state
//! dimensions (see the substitution table in `DESIGN.md`).

use crate::spec::BenchmarkSpec;
use vrl_dynamics::Dynamics;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};

/// Builds an LTI environment `ṡ = A s + B a` with a symmetric initial box,
/// symmetric safe rectangle, and symmetric action saturation.
pub(crate) fn lti_env(
    name: &'static str,
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    init: &[f64],
    safe: &[f64],
    action_bound: f64,
    dt: f64,
) -> EnvironmentContext {
    let dynamics = PolyDynamics::linear(a, b, None);
    let m = dynamics.action_dim();
    EnvironmentContext::new(
        name,
        dynamics,
        dt,
        BoxRegion::symmetric(init),
        SafetySpec::inside(BoxRegion::symmetric(safe)),
    )
    .with_action_bounds(vec![-action_bound; m], vec![action_bound; m])
}

/// Satellite attitude control (2 state variables, 1 control input).
///
/// States: pointing-angle error and angular rate; the control torque must
/// keep both within the safe rectangle.
pub fn satellite() -> BenchmarkSpec {
    let a = vec![vec![0.0, 1.0], vec![0.2, 0.0]];
    let b = vec![vec![0.0], vec![1.0]];
    let env = lti_env("satellite", &a, &b, &[0.5, 0.5], &[2.0, 2.0], 10.0, 0.01)
        .with_variable_names(&["theta", "omega"]);
    BenchmarkSpec::new(
        "satellite",
        "satellite attitude regulation; keep pointing error and rate inside a safe rectangle",
        2,
        vec![240, 200],
        env,
    )
}

/// DC motor speed control (3 state variables, 1 control input).
///
/// States: shaft angle error, shaft speed and armature current; the applied
/// voltage must keep the reach set inside a safe rectangle.
pub fn dcmotor() -> BenchmarkSpec {
    let a = vec![
        vec![0.0, 1.0, 0.0],
        vec![0.0, -1.0, 2.0],
        vec![0.0, -0.5, -4.0],
    ];
    let b = vec![vec![0.0], vec![0.0], vec![4.0]];
    let env = lti_env(
        "dcmotor",
        &a,
        &b,
        &[0.3, 0.3, 0.3],
        &[1.5, 1.5, 1.5],
        10.0,
        0.01,
    )
    .with_variable_names(&["theta", "omega", "current"]);
    BenchmarkSpec::new(
        "dcmotor",
        "DC motor servo; voltage control keeps angle, speed and current inside a safe rectangle",
        2,
        vec![240, 200],
        env,
    )
}

/// Magnetic tape drive servo (3 state variables, 1 control input).
///
/// States: tape position error, tape velocity and tension; the reel torque
/// keeps tension and position bounded.
pub fn tape() -> BenchmarkSpec {
    let a = vec![
        vec![0.0, 1.0, 0.0],
        vec![-1.0, -1.5, 0.5],
        vec![0.0, -0.4, -2.0],
    ];
    let b = vec![vec![0.0], vec![0.0], vec![2.0]];
    let env = lti_env(
        "tape",
        &a,
        &b,
        &[0.3, 0.3, 0.3],
        &[1.2, 1.2, 1.2],
        8.0,
        0.01,
    )
    .with_variable_names(&["pos", "vel", "tension"]);
    BenchmarkSpec::new(
        "tape",
        "magnetic tape drive servo; reel torque keeps position, velocity and tension bounded",
        2,
        vec![240, 200],
        env,
    )
}

/// Magnetic pointer positioning (3 state variables, 1 control input).
///
/// States: pointer deflection, deflection rate, and coil flux; the coil
/// voltage regulates the pointer back to zero deflection.
pub fn magnetic_pointer() -> BenchmarkSpec {
    let a = vec![
        vec![0.0, 1.0, 0.0],
        vec![-0.5, -0.3, 1.0],
        vec![0.0, 0.0, -3.0],
    ];
    let b = vec![vec![0.0], vec![0.0], vec![3.0]];
    let env = lti_env(
        "magnetic-pointer",
        &a,
        &b,
        &[0.3, 0.3, 0.3],
        &[1.5, 1.5, 1.5],
        8.0,
        0.01,
    )
    .with_variable_names(&["deflection", "rate", "flux"]);
    BenchmarkSpec::new(
        "magnetic-pointer",
        "magnetic pointer; coil voltage regulates deflection inside a safe rectangle",
        2,
        vec![240, 200],
        env,
    )
}

/// Quarter-car active suspension (4 state variables, 1 control input).
///
/// States: sprung-mass displacement and velocity, unsprung-mass displacement
/// and velocity; the actuator force keeps displacements inside a comfort box.
pub fn suspension() -> BenchmarkSpec {
    let a = vec![
        vec![0.0, 1.0, 0.0, 0.0],
        vec![-1.0, -0.8, 0.5, 0.2],
        vec![0.0, 0.0, 0.0, 1.0],
        vec![0.5, 0.2, -2.0, -1.0],
    ];
    let b = vec![vec![0.0], vec![1.0], vec![0.0], vec![-1.0]];
    let env = lti_env(
        "suspension",
        &a,
        &b,
        &[0.2, 0.2, 0.2, 0.2],
        &[1.0, 1.0, 1.0, 1.0],
        8.0,
        0.01,
    )
    .with_variable_names(&["zs", "vzs", "zu", "vzu"]);
    BenchmarkSpec::new(
        "suspension",
        "quarter-car active suspension; actuator force keeps body and wheel travel bounded",
        2,
        vec![240, 200],
        env,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{LinearPolicy, Policy};

    fn stabilizing_gain(spec: &BenchmarkSpec) -> LinearPolicy {
        // A crude proportional-derivative style gain: a = -k·s summed per
        // action dimension, good enough for these mildly unstable plants.
        let env = spec.env();
        let n = env.state_dim();
        let m = env.action_dim();
        LinearPolicy::new(vec![vec![-1.5; n]; m])
    }

    #[test]
    fn all_lti_benchmarks_are_affine() {
        for spec in [
            satellite(),
            dcmotor(),
            tape(),
            magnetic_pointer(),
            suspension(),
        ] {
            assert!(
                spec.env().dynamics().is_affine(),
                "{} must be LTI",
                spec.name()
            );
            let (a, b, c) = spec.env().dynamics().affine_parts().unwrap();
            assert_eq!(a.len(), spec.env().state_dim());
            assert_eq!(b[0].len(), spec.env().action_dim());
            assert!(c.iter().all(|x| *x == 0.0));
        }
    }

    #[test]
    fn dimensions_match_table1() {
        assert_eq!(satellite().env().state_dim(), 2);
        assert_eq!(dcmotor().env().state_dim(), 3);
        assert_eq!(tape().env().state_dim(), 3);
        assert_eq!(magnetic_pointer().env().state_dim(), 3);
        assert_eq!(suspension().env().state_dim(), 4);
    }

    #[test]
    fn feedback_keeps_satellite_safe_and_open_loop_matters() {
        let spec = satellite();
        let env = spec.env();
        let mut rng = SmallRng::seed_from_u64(1);
        let gain = LinearPolicy::new(vec![vec![-2.0, -2.0]]);
        for _ in 0..5 {
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&gain, &s0, 2000, &mut rng);
            assert!(
                !t.violates(env.safety()),
                "feedback-controlled satellite left the safe box"
            );
        }
        // Without control the plant drifts: the uncontrolled vector field is
        // unstable (positive coupling), so some trajectory grows.
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let t = env.rollout(&zero, &[0.5, 0.5], 5000, &mut rng);
        let last = t.final_state().unwrap();
        assert!(last[0].abs() > 0.5 || t.violates(env.safety()));
    }

    #[test]
    fn simple_feedback_is_reasonable_on_every_lti_plant() {
        let mut rng = SmallRng::seed_from_u64(2);
        for spec in [
            satellite(),
            dcmotor(),
            tape(),
            magnetic_pointer(),
            suspension(),
        ] {
            let env = spec.env();
            let gain = stabilizing_gain(&spec);
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&gain, &s0, 1000, &mut rng);
            let last = t.final_state().unwrap();
            assert!(
                last.iter().all(|x| x.is_finite()),
                "{} diverged under simple feedback",
                spec.name()
            );
            assert_eq!(gain.action(&s0).len(), env.action_dim());
        }
    }
}
