//! Benchmark environments for the verifiable-RL framework: every control
//! system evaluated in the paper's Table 1, the Duffing oscillator of
//! Example 4.3, and the modified environments of Table 3.
//!
//! Each benchmark module exposes a `*_env()` constructor returning a fully
//! configured [`vrl_dynamics::EnvironmentContext`] and a registry entry
//! ([`BenchmarkSpec`]) recording the pipeline settings (invariant degree,
//! neural network size) used by the evaluation harness.
//!
//! # Examples
//!
//! ```
//! use vrl_benchmarks::{all_benchmarks, benchmark_by_name};
//!
//! assert_eq!(all_benchmarks().len(), 15);
//! let pendulum = benchmark_by_name("pendulum").expect("pendulum is in Table 1");
//! assert_eq!(pendulum.env().state_dim(), 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod biology;
pub mod cartpole;
pub mod datacenter;
pub mod driving;
pub mod duffing;
pub mod linear;
pub mod oscillator;
pub mod pendulum;
pub mod platoon;
pub mod quadcopter;
mod spec;

pub use spec::{all_benchmarks, benchmark_by_name, BenchmarkSpec};

/// The Table 3 environment-change benchmarks (trained-in-one-environment,
/// deployed-in-another scenarios).
pub fn environment_change_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        cartpole::cartpole_longer_pole(),
        pendulum::pendulum_heavier(),
        pendulum::pendulum_longer(),
        driving::self_driving_with_obstacle(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_change_registry_matches_table3() {
        let variants = environment_change_benchmarks();
        assert_eq!(variants.len(), 4, "Table 3 lists four environment changes");
        let names: Vec<&str> = variants.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "cartpole-longer-pole",
                "pendulum-heavier",
                "pendulum-longer",
                "self-driving-obstacle",
            ]
        );
        for v in &variants {
            assert_eq!(
                v.hidden_layers(),
                &[1200, 900],
                "Table 3 uses larger networks"
            );
        }
    }

    #[test]
    fn duffing_is_available_for_fig6() {
        let d = duffing::duffing();
        assert_eq!(d.env().state_dim(), 2);
    }
}
