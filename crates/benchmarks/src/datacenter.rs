//! Data-center cooling benchmark (3 state variables): three server racks,
//! each with its own heat generation, shedding heat to their neighbours.
//! The learned controller must keep the data center below a temperature
//! threshold.

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, Disturbance, EnvironmentContext, PolyDynamics, SafetySpec};

/// Builds the data-center cooling environment.
///
/// State `s = [T1, T2, T3]`: rack temperature deviations from the setpoint;
/// action `a`: shared cooling effort.  Racks exchange heat diffusively with
/// their neighbours and with the ambient (held at the setpoint); server load
/// fluctuations enter as a bounded disturbance:
///
/// ```text
/// Ṫ1 = κ·(T2 − 2·T1) + q − a
/// Ṫ2 = κ·(T1 + T3 − 2·T2) + q − a
/// Ṫ3 = κ·(T2 − 2·T3) + q − a
/// ```
pub fn datacenter_env() -> EnvironmentContext {
    let kappa = 0.3;
    let load = 0.0; // nominal load is absorbed into the setpoint
    let a = vec![
        vec![-2.0 * kappa, kappa, 0.0],
        vec![kappa, -2.0 * kappa, kappa],
        vec![0.0, kappa, -2.0 * kappa],
    ];
    let b = vec![vec![-1.0], vec![-1.0], vec![-1.0]];
    let dynamics = PolyDynamics::linear(&a, &b, Some(&[load, load, load]));
    EnvironmentContext::new(
        "datacenter-cooling",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.5, 0.5, 0.5]),
        SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0, 2.0])),
    )
    .with_action_bounds(vec![-3.0], vec![3.0])
    .with_disturbance(Disturbance::symmetric(&[0.05, 0.05, 0.05]))
    .with_variable_names(&["t1", "t2", "t3"])
    .with_steady(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.05))
}

/// The Table 1 data-center cooling benchmark.
pub fn datacenter_cooling() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "datacenter-cooling",
        "three coupled server racks; shared cooling keeps every rack temperature below threshold",
        2,
        vec![240, 200],
        datacenter_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    #[test]
    fn model_shape_matches_table1() {
        let spec = datacenter_cooling();
        assert_eq!(spec.env().state_dim(), 3);
        assert_eq!(spec.env().action_dim(), 1);
        assert!(spec.env().dynamics().is_affine());
        assert!(!spec.env().disturbance().is_zero());
    }

    #[test]
    fn heat_diffuses_between_neighbouring_racks() {
        let env = datacenter_env();
        let d = env.dynamics().derivative(&[1.0, 0.0, 0.0], &[0.0]);
        assert!(d[0] < 0.0, "a hot rack cools towards its neighbours");
        assert!(d[1] > 0.0, "the neighbour of a hot rack warms up");
        assert!((d[2]).abs() < 1e-12, "a non-adjacent rack is unaffected");
    }

    #[test]
    fn diffusion_alone_is_stable_but_slow() {
        let env = datacenter_env();
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(51);
        let t = env.rollout(&zero, &[0.5, 0.5, 0.5], 5000, &mut rng);
        assert!(!t.violates(env.safety()));
        let cooled = LinearPolicy::new(vec![vec![0.5, 0.5, 0.5]]);
        let tc = env.rollout(&cooled, &[0.5, 0.5, 0.5], 5000, &mut rng);
        // Active cooling settles at least as fast as pure diffusion.
        let steady = |s: &[f64]| s.iter().all(|x: &f64| x.abs() <= 0.05);
        let a = tc.steps_to_steady(steady).unwrap_or(usize::MAX);
        let b = t.steps_to_steady(steady).unwrap_or(usize::MAX);
        assert!(a <= b);
    }
}
