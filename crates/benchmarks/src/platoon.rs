//! Vehicle platoon benchmarks: `n` vehicles forming a platoon and maintaining
//! a safe relative distance to one another (Schürmann & Althoff, ACC'17, as
//! cited by the paper).  Table 1 evaluates `n = 4` (8 state variables) and
//! `n = 8` (16 state variables).

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};

/// Builds an `n`-car platoon environment.
///
/// Each follower `i` contributes two states: its spacing error `e_i` to the
/// preceding vehicle and the relative velocity `v_i`; its control input is
/// its own acceleration command `a_i`, which also perturbs the follower
/// behind it:
///
/// ```text
/// ė_i = v_i
/// v̇_i = a_i − a_{i−1}        (a_0 = 0 is the platoon leader)
/// ```
///
/// Safety requires every spacing error to stay within ±1 m of the nominal
/// gap (so vehicles neither collide nor fall behind) and relative velocities
/// to stay bounded.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn platoon_env(n: usize) -> EnvironmentContext {
    assert!(n > 0, "a platoon needs at least one follower");
    let dim = 2 * n;
    let mut a = vec![vec![0.0; dim]; dim];
    let mut b = vec![vec![0.0; n]; dim];
    for i in 0..n {
        a[2 * i][2 * i + 1] = 1.0;
        b[2 * i + 1][i] = 1.0;
        if i > 0 {
            b[2 * i + 1][i - 1] = -1.0;
        }
    }
    let dynamics = PolyDynamics::linear(&a, &b, None);
    let mut safe = Vec::with_capacity(dim);
    for _ in 0..n {
        safe.push(1.0); // spacing error bound
        safe.push(2.0); // relative velocity bound
    }
    let names: Vec<String> = (0..n)
        .flat_map(|i| vec![format!("e{}", i + 1), format!("v{}", i + 1)])
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    EnvironmentContext::new(
        format!("car-platoon-{n}"),
        dynamics,
        0.01,
        BoxRegion::symmetric(&vec![0.3; dim]),
        SafetySpec::inside(BoxRegion::symmetric(&safe)),
    )
    .with_action_bounds(vec![-5.0; n], vec![5.0; n])
    .with_variable_names(&name_refs)
    .with_steady(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.05))
}

/// The Table 1 4-car platoon benchmark (8 state variables, 4 control inputs).
pub fn car_platoon_4() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "car-platoon-4",
        "4-vehicle platoon; every follower keeps a safe relative distance to its predecessor",
        2,
        vec![500, 400, 300],
        platoon_env(4).with_name("car-platoon-4"),
    )
}

/// The Table 1 8-car platoon benchmark (16 state variables, 8 control inputs).
pub fn car_platoon_8() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "car-platoon-8",
        "8-vehicle platoon; every follower keeps a safe relative distance to its predecessor",
        2,
        vec![500, 400, 300],
        platoon_env(8).with_name("car-platoon-8"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    fn per_car_pd(n: usize) -> LinearPolicy {
        // Each car damps its own spacing error: a_i = −2·e_i − 2.5·v_i.
        let mut gains = vec![vec![0.0; 2 * n]; n];
        for (i, row) in gains.iter_mut().enumerate() {
            row[2 * i] = -2.0;
            row[2 * i + 1] = -2.5;
        }
        LinearPolicy::new(gains)
    }

    #[test]
    fn dimensions_match_table1() {
        assert_eq!(car_platoon_4().env().state_dim(), 8);
        assert_eq!(car_platoon_4().env().action_dim(), 4);
        assert_eq!(car_platoon_8().env().state_dim(), 16);
        assert_eq!(car_platoon_8().env().action_dim(), 8);
    }

    #[test]
    fn predecessor_acceleration_perturbs_the_follower() {
        let env = platoon_env(2);
        // Only car 1 accelerates: car 2's relative velocity decreases.
        let d = env.dynamics().derivative(&[0.0; 4], &[1.0, 0.0]);
        assert_eq!(d, vec![0.0, 1.0, 0.0, -1.0]);
    }

    #[test]
    fn per_car_feedback_maintains_spacing_in_both_platoons() {
        let mut rng = SmallRng::seed_from_u64(71);
        for n in [4usize, 8] {
            let env = platoon_env(n);
            let policy = per_car_pd(n);
            let s0 = vec![0.3; 2 * n];
            let t = env.rollout(&policy, &s0, 3000, &mut rng);
            assert!(
                !t.violates(env.safety()),
                "platoon of {n} cars violated spacing"
            );
            assert!(t.final_state().unwrap().iter().all(|x| x.abs() < 0.05));
        }
    }

    #[test]
    fn uncontrolled_platoon_drifts_apart() {
        let env = platoon_env(4);
        let zero = vrl_dynamics::ConstantPolicy::zeros(4);
        let mut rng = SmallRng::seed_from_u64(72);
        let t = env.rollout(&zero, &[0.3; 8], 3000, &mut rng);
        // With nonzero relative velocity and no control the spacing errors
        // grow linearly and leave the safe gap.
        assert!(t.violates(env.safety()));
    }
}
