//! Car steering benchmarks (4 state variables each): Self-Driving and Lane
//! Keeping.
//!
//! Both use a linearized lateral vehicle model.  The Self-Driving benchmark
//! must keep the car out of the canals on either side of the road; the Lane
//! Keeping benchmark additionally experiences road-curvature disturbances.
//! The Table 3 variant of Self-Driving adds an obstacle that must be avoided.

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, Disturbance, EnvironmentContext, PolyDynamics, SafetySpec};

/// Lateral vehicle dynamics shared by both driving benchmarks.
///
/// State `s = [y, v_y, ψ, r]`: lateral offset from the road centre, lateral
/// velocity, heading error and yaw rate; action `a` is the steering command.
///
/// ```text
/// ẏ   = v_y
/// v̇_y = −c_v·v_y + c_ψ·ψ + b_v·a
/// ψ̇   = r
/// ṙ   = −c_r·r + b_r·a
/// ```
fn lateral_env(
    name: &'static str,
    c_v: f64,
    c_psi: f64,
    b_v: f64,
    c_r: f64,
    b_r: f64,
    road_half_width: f64,
) -> EnvironmentContext {
    let a = vec![
        vec![0.0, 1.0, 0.0, 0.0],
        vec![0.0, -c_v, c_psi, 0.0],
        vec![0.0, 0.0, 0.0, 1.0],
        vec![0.0, 0.0, 0.0, -c_r],
    ];
    let b = vec![vec![0.0], vec![b_v], vec![0.0], vec![b_r]];
    let dynamics = PolyDynamics::linear(&a, &b, None);
    EnvironmentContext::new(
        name,
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.5, 0.2, 0.2, 0.2]),
        SafetySpec::inside(BoxRegion::symmetric(&[road_half_width, 2.0, 1.0, 2.0])),
    )
    .with_action_bounds(vec![-8.0], vec![8.0])
    .with_variable_names(&["y", "vy", "psi", "r"])
    .with_steady(|s: &[f64]| s[0].abs() <= 0.05 && s[2].abs() <= 0.05)
}

/// Builds the Self-Driving environment (canal avoidance).
pub fn self_driving_env() -> EnvironmentContext {
    lateral_env("self-driving", 1.0, 5.0, 1.0, 0.5, 2.0, 2.0)
}

/// The Table 1 Self-Driving benchmark: keep the car from veering into the
/// canals found on either side of the road.
pub fn self_driving() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "self-driving",
        "single-car navigation; steering keeps the car away from canals on either side of the road",
        2,
        vec![300, 200],
        self_driving_env(),
    )
}

/// Table 3 environment change: an obstacle occupying the right half of the
/// road (lateral offsets between 1.2 m and 2 m) must additionally be avoided.
pub fn self_driving_with_obstacle() -> BenchmarkSpec {
    let base = self_driving_env();
    let obstacle = BoxRegion::new(vec![1.2, -2.0, -1.0, -2.0], vec![2.0, 2.0, 1.0, 2.0]);
    let safety = SafetySpec::inside(base.safety().safe_box().clone()).with_obstacle(obstacle);
    BenchmarkSpec::new(
        "self-driving-obstacle",
        "Table 3 variant: self-driving with an added obstacle that must be avoided",
        2,
        vec![1200, 900],
        base.with_safety(safety).with_name("self-driving-obstacle"),
    )
}

/// Builds the Lane Keeping environment (curved road modeled as disturbance).
pub fn lane_keeping_env() -> EnvironmentContext {
    lateral_env("lane-keeping", 1.2, 6.0, 1.0, 0.8, 1.5, 1.5)
        .with_disturbance(Disturbance::symmetric(&[0.0, 0.05, 0.0, 0.05]))
}

/// The Table 1 Lane Keeping benchmark: keep the vehicle centred between lane
/// markers on a possibly curved road (curvature enters as a disturbance).
pub fn lane_keeping() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "lane-keeping",
        "lane keeping on a curved road; curvature is a bounded disturbance on the lateral dynamics",
        2,
        vec![240, 200],
        lane_keeping_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::LinearPolicy;

    fn steering_gain() -> LinearPolicy {
        LinearPolicy::new(vec![vec![-2.0, -2.5, -3.0, -1.5]])
    }

    #[test]
    fn both_benchmarks_have_four_states() {
        assert_eq!(self_driving().env().state_dim(), 4);
        assert_eq!(lane_keeping().env().state_dim(), 4);
        assert!(self_driving().env().disturbance().is_zero());
        assert!(!lane_keeping().env().disturbance().is_zero());
    }

    #[test]
    fn steering_gain_keeps_the_car_on_the_road() {
        let mut rng = SmallRng::seed_from_u64(61);
        for env in [self_driving_env(), lane_keeping_env()] {
            for _ in 0..5 {
                let s0 = env.sample_initial(&mut rng);
                let t = env.rollout(&steering_gain(), &s0, 3000, &mut rng);
                assert!(
                    !t.violates(env.safety()),
                    "{} left the road from {s0:?}",
                    env.name()
                );
                assert!(t.final_state().unwrap()[0].abs() < 0.1);
            }
        }
    }

    #[test]
    fn without_steering_the_heading_error_persists() {
        let env = self_driving_env();
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(62);
        let t = env.rollout(&zero, &[0.5, 0.0, 0.2, 0.0], 3000, &mut rng);
        // A constant heading error integrates into lateral drift off the road.
        assert!(t.violates(env.safety()));
    }

    #[test]
    fn obstacle_variant_marks_the_blocked_lane_unsafe() {
        let spec = self_driving_with_obstacle();
        let env = spec.env();
        assert!(
            env.is_unsafe(&[1.5, 0.0, 0.0, 0.0]),
            "states inside the obstacle are unsafe"
        );
        assert!(!env.is_unsafe(&[0.5, 0.0, 0.0, 0.0]));
        assert!(!self_driving_env().is_unsafe(&[1.5, 0.0, 0.0, 0.0]));
        assert_eq!(env.safety().obstacles().len(), 1);
    }
}
