//! Glycemic control benchmark (3 state variables): a minimal model of glucose
//! and insulin interaction in diabetic patients (Bergman et al., 1985), as
//! cited by the paper.
//!
//! The safety property is that the plasma glucose concentration must remain
//! above a threshold (no hypoglycemia).

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl_poly::Polynomial;

/// Builds the glycemic-control environment.
///
/// State `s = [G, X, I]` in deviation coordinates: plasma glucose deviation
/// from basal, remote insulin action, and plasma insulin deviation; action
/// `a` is the insulin infusion rate.  The Bergman minimal model (with rate
/// constants rescaled to the simulation time step) is polynomial thanks to
/// the bilinear `X·G` term:
///
/// ```text
/// Ġ = −p1·G − X·(G + G_b)
/// Ẋ = −p2·X + p3·I
/// İ = −n·I + a
/// ```
pub fn biology_env() -> EnvironmentContext {
    let p1 = 0.5;
    let p2 = 0.5;
    let p3 = 1.0;
    let n = 0.5;
    let g_basal = 1.0;
    // Variables: x0 = G, x1 = X, x2 = I, x3 = a.
    let g = Polynomial::variable(0, 4);
    let x = Polynomial::variable(1, 4);
    let i = Polynomial::variable(2, 4);
    let a = Polynomial::variable(3, 4);
    let gdot = &(&g.scaled(-p1) - &(&x * &g)) - &x.scaled(g_basal);
    let xdot = &x.scaled(-p2) + &i.scaled(p3);
    let idot = &i.scaled(-n) + &a;
    let dynamics =
        PolyDynamics::new(3, 1, vec![gdot, xdot, idot]).expect("biology dynamics are well formed");
    EnvironmentContext::new(
        "biology",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.3, 0.2, 0.2]),
        SafetySpec::inside(BoxRegion::new(vec![-1.0, -1.5, -1.5], vec![2.0, 1.5, 1.5])),
    )
    .with_action_bounds(vec![-4.0], vec![4.0])
    .with_variable_names(&["glucose", "insulin_action", "insulin"])
    .with_steady(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.05))
}

/// The Table 1 glycemic-control benchmark.
pub fn biology() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "biology",
        "Bergman minimal model of glycemic control; keep plasma glucose above the hypoglycemia threshold",
        2,
        vec![240, 200],
        biology_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    #[test]
    fn model_is_nonlinear_with_three_states() {
        let spec = biology();
        assert_eq!(spec.env().state_dim(), 3);
        assert_eq!(spec.env().action_dim(), 1);
        assert!(
            !spec.env().dynamics().is_affine(),
            "the X·G term makes the model bilinear"
        );
        assert_eq!(spec.env().dynamics().degree(), 2);
    }

    #[test]
    fn glucose_threshold_defines_unsafety() {
        let env = biology_env();
        assert!(
            env.is_unsafe(&[-1.1, 0.0, 0.0]),
            "hypoglycemia must be unsafe"
        );
        assert!(!env.is_unsafe(&[1.5, 0.0, 0.0]));
        assert!(env.is_unsafe(&[2.5, 0.0, 0.0]));
    }

    #[test]
    fn derivative_matches_minimal_model() {
        let env = biology_env();
        let d = env.dynamics().derivative(&[0.5, 0.2, -0.1], &[0.3]);
        assert!((d[0] - (-0.5 * 0.5 - 0.2 * 0.5 - 0.2 * 1.0)).abs() < 1e-12);
        assert!((d[1] - (-0.5 * 0.2 + 1.0 * -0.1)).abs() < 1e-12);
        assert!((d[2] - (-0.5 * -0.1 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn proportional_insulin_policy_regulates_glucose() {
        let env = biology_env();
        // Dose insulin proportionally to the glucose excursion.
        let policy = LinearPolicy::new(vec![vec![1.5, 0.0, -0.5]]);
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..5 {
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&policy, &s0, 3000, &mut rng);
            assert!(!t.violates(env.safety()));
            assert!(t.final_state().unwrap().iter().all(|x| x.abs() < 0.3));
        }
    }
}
