//! The inverted pendulum, the paper's running example (Fig. 1) and case study.
//!
//! State `s = [η, ω]` where `η` is the pendulum angle (radians) and `ω` its
//! angular velocity.  A continuous torque `a` keeps the pendulum upright:
//!
//! ```text
//! η̇ = ω
//! ω̇ = (g/l)·(η − η³/6) + a/(m·l²)
//! ```
//!
//! The sine of the gravity torque is replaced by its cubic Taylor expansion,
//! exactly as the paper does ("approximate non-polynomial expressions with
//! their Taylor expansions", Fig. 1 footnote).

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl_poly::Polynomial;

const GRAVITY: f64 = 9.8;

/// Degrees-to-radians helper used throughout the pendulum specifications.
pub fn degrees(d: f64) -> f64 {
    d * std::f64::consts::PI / 180.0
}

/// Builds the pendulum environment for a given mass (kg), length (m) and
/// symmetric safety bounds (radians) on angle and angular velocity.
pub fn pendulum_env(
    mass: f64,
    length: f64,
    eta_bound: f64,
    omega_bound: f64,
) -> EnvironmentContext {
    assert!(
        mass > 0.0 && length > 0.0,
        "mass and length must be positive"
    );
    // Variables: x0 = η, x1 = ω, x2 = a.
    let eta = Polynomial::variable(0, 3);
    let omega = Polynomial::variable(1, 3);
    let torque = Polynomial::variable(2, 3);
    let g_over_l = GRAVITY / length;
    let inertia = mass * length * length;
    // ω̇ = (g/l)(η - η³/6) + a/(m l²)
    let omega_dot = &(&eta.scaled(g_over_l) - &eta.pow(3).scaled(g_over_l / 6.0))
        + &torque.scaled(1.0 / inertia);
    let dynamics =
        PolyDynamics::new(2, 1, vec![omega, omega_dot]).expect("pendulum dynamics are well formed");
    EnvironmentContext::new(
        "pendulum",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[degrees(20.0), degrees(20.0)]),
        SafetySpec::inside(BoxRegion::symmetric(&[eta_bound, omega_bound])),
    )
    .with_action_bounds(vec![-30.0], vec![30.0])
    .with_variable_names(&["eta", "omega"])
    .with_steady(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.05))
}

/// The Table 1 / Sec. 5 case-study pendulum: the system is unsafe when the
/// angle exceeds 23° (angular velocity is bounded by the original 90°).
pub fn pendulum() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "pendulum",
        "inverted pendulum; keep the angle within 23 degrees of upright (Sec. 5 case study)",
        4,
        vec![240, 200],
        pendulum_env(1.0, 1.0, degrees(23.0), degrees(90.0)).with_name("pendulum"),
    )
}

/// The original Sec. 2 specification: both angle and angular velocity must
/// stay within 90° (Fig. 3a).
pub fn pendulum_original() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "pendulum-original",
        "inverted pendulum with the original 90-degree safety bounds of Fig. 1",
        4,
        vec![240, 200],
        pendulum_env(1.0, 1.0, degrees(90.0), degrees(90.0)).with_name("pendulum-original"),
    )
}

/// The Segway-style restricted environment of Sec. 2.2 / Fig. 3b: both angle
/// and angular velocity must stay within 30°.
pub fn pendulum_restricted() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "pendulum-restricted",
        "inverted pendulum restricted to 30 degrees (Segway-style deployment of Sec. 2.2)",
        4,
        vec![240, 200],
        pendulum_env(1.0, 1.0, degrees(30.0), degrees(30.0)).with_name("pendulum-restricted"),
    )
}

/// Table 3 environment change: pendulum mass increased by 0.3 kg.
pub fn pendulum_heavier() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "pendulum-heavier",
        "Table 3 variant: pendulum mass increased by 0.3 kg",
        4,
        vec![1200, 900],
        pendulum_env(1.3, 1.0, degrees(23.0), degrees(90.0)).with_name("pendulum-heavier"),
    )
}

/// Table 3 environment change: pendulum length increased by 0.15 m.
pub fn pendulum_longer() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "pendulum-longer",
        "Table 3 variant: pendulum length increased by 0.15 m",
        4,
        vec![1200, 900],
        pendulum_env(1.0, 1.15, degrees(23.0), degrees(90.0)).with_name("pendulum-longer"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    #[test]
    fn dynamics_match_the_physics() {
        let env = pendulum_env(1.0, 1.0, degrees(90.0), degrees(90.0));
        let d = env.dynamics().derivative(&[0.1, -0.2], &[0.5]);
        assert!((d[0] - (-0.2)).abs() < 1e-12);
        let expected = 9.8 * (0.1 - 0.1f64.powi(3) / 6.0) + 0.5;
        assert!((d[1] - expected).abs() < 1e-12);
        // Heavier pendulum: torque is less effective, gravity term unchanged.
        let heavy = pendulum_env(1.3, 1.0, degrees(90.0), degrees(90.0));
        let dh = heavy.dynamics().derivative(&[0.1, -0.2], &[0.5]);
        assert!(dh[1] < d[1]);
        // Longer pendulum: both gravity and torque terms shrink.
        let long = pendulum_env(1.0, 1.15, degrees(90.0), degrees(90.0));
        let dl = long.dynamics().derivative(&[0.1, 0.0], &[0.0]);
        assert!(dl[1] < d[1]);
    }

    #[test]
    fn specification_matches_the_paper() {
        let spec = pendulum();
        let env = spec.env();
        assert_eq!(env.state_dim(), 2);
        assert_eq!(env.action_dim(), 1);
        assert!((env.init().highs()[0] - degrees(20.0)).abs() < 1e-12);
        assert!((env.safety().safe_box().highs()[0] - degrees(23.0)).abs() < 1e-12);
        assert!(env.is_unsafe(&[degrees(25.0), 0.0]));
        assert!(!env.is_unsafe(&[degrees(20.0), 0.0]));
        assert_eq!(spec.invariant_degree(), 4);
        let original = pendulum_original();
        assert!((original.env().safety().safe_box().highs()[1] - degrees(90.0)).abs() < 1e-12);
        let restricted = pendulum_restricted();
        assert!(restricted.env().is_unsafe(&[degrees(35.0), 0.0]));
    }

    #[test]
    fn paper_synthesized_gains_stabilize_the_pendulum() {
        // The paper's running example synthesizes P(η, ω) = -12.05η - 5.87ω;
        // that program should keep the original pendulum upright from S0.
        let env = pendulum_original().into_env();
        let program = LinearPolicy::new(vec![vec![-12.05, -5.87]]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&program, &s0, 3000, &mut rng);
            assert!(
                !t.violates(env.safety()),
                "paper gains should be safe from {s0:?}"
            );
            let last = t.final_state().unwrap();
            assert!(last[0].abs() < 0.05, "pendulum should settle near upright");
        }
    }

    #[test]
    fn uncontrolled_pendulum_falls() {
        let env = pendulum_original().into_env();
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(4);
        let t = env.rollout(&zero, &[degrees(20.0), degrees(20.0)], 5000, &mut rng);
        assert!(
            t.violates(env.safety()),
            "an uncontrolled inverted pendulum must fall"
        );
    }

    #[test]
    fn table3_variants_use_larger_networks() {
        assert_eq!(pendulum_heavier().hidden_layers(), &[1200, 900]);
        assert_eq!(pendulum_longer().hidden_layers(), &[1200, 900]);
        assert_eq!(degrees(180.0), std::f64::consts::PI);
    }
}
