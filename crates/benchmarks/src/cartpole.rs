//! Cart-pole benchmark (4 state variables): a pole attached to an unactuated
//! joint on a cart moving along a frictionless track.
//!
//! The system is unsafe when the pole's angle exceeds 30° from upright or the
//! cart moves more than 0.3 m from the origin (Sec. 5).

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl_poly::Polynomial;

const GRAVITY: f64 = 9.8;
const CART_MASS: f64 = 1.0;
const POLE_MASS: f64 = 0.1;
/// Default pole half-length used by the Table 1 benchmark (metres).
pub const DEFAULT_POLE_LENGTH: f64 = 0.5;

/// Builds the cart-pole environment for a given pole length.
///
/// State `s = [x, v, θ, ω]`: cart position, cart velocity, pole angle and
/// pole angular velocity; action `a` is the horizontal force on the cart.
/// The dynamics are the standard small-angle (linearized) cart-pole model:
///
/// ```text
/// ẋ = v
/// v̇ = (a − m_p·g·θ) / m_c
/// θ̇ = ω
/// ω̇ = ((m_c + m_p)·g·θ − a) / (m_c·l)
/// ```
pub fn cartpole_env(pole_length: f64) -> EnvironmentContext {
    assert!(pole_length > 0.0, "pole length must be positive");
    // Variables: x0..x3 = state, x4 = action.
    let theta = Polynomial::variable(2, 5);
    let v = Polynomial::variable(1, 5);
    let omega = Polynomial::variable(3, 5);
    let force = Polynomial::variable(4, 5);
    let vdot = &force.scaled(1.0 / CART_MASS) - &theta.scaled(POLE_MASS * GRAVITY / CART_MASS);
    let omega_dot = &theta.scaled((CART_MASS + POLE_MASS) * GRAVITY / (CART_MASS * pole_length))
        - &force.scaled(1.0 / (CART_MASS * pole_length));
    let dynamics = PolyDynamics::new(4, 1, vec![v, vdot, omega, omega_dot])
        .expect("cartpole dynamics are well formed");
    let theta_bound = 30.0f64.to_radians();
    EnvironmentContext::new(
        "cartpole",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.05, 0.05, 0.05, 0.05]),
        SafetySpec::inside(BoxRegion::new(
            vec![-0.3, -1.5, -theta_bound, -1.5],
            vec![0.3, 1.5, theta_bound, 1.5],
        )),
    )
    .with_action_bounds(vec![-10.0], vec![10.0])
    .with_variable_names(&["x", "v", "theta", "omega"])
    .with_steady(|s: &[f64]| s[0].abs() <= 0.05 && s[2].abs() <= 0.05)
}

/// The Table 1 cart-pole benchmark.
pub fn cartpole() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "cartpole",
        "cart-pole; keep the pole within 30 degrees and the cart within 0.3 m of the origin",
        2,
        vec![300, 200],
        cartpole_env(DEFAULT_POLE_LENGTH),
    )
}

/// Table 3 environment change: pole length increased by 0.15 m.
pub fn cartpole_longer_pole() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "cartpole-longer-pole",
        "Table 3 variant: cart-pole with the pole length increased by 0.15 m",
        2,
        vec![1200, 900],
        cartpole_env(DEFAULT_POLE_LENGTH + 0.15).with_name("cartpole-longer-pole"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    #[test]
    fn model_shape_matches_table1() {
        let spec = cartpole();
        assert_eq!(spec.env().state_dim(), 4);
        assert_eq!(spec.env().action_dim(), 1);
        assert!(spec.env().is_unsafe(&[0.31, 0.0, 0.0, 0.0]));
        assert!(spec.env().is_unsafe(&[0.0, 0.0, 0.6, 0.0]));
        assert!(!spec.env().is_unsafe(&[0.0, 0.0, 0.5, 0.0]));
    }

    #[test]
    fn gravity_destabilizes_the_pole_without_control() {
        let env = cartpole_env(DEFAULT_POLE_LENGTH);
        let d = env.dynamics().derivative(&[0.0, 0.0, 0.1, 0.0], &[0.0]);
        assert!(
            d[3] > 0.0,
            "positive angle must accelerate further from upright"
        );
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(31);
        let t = env.rollout(&zero, &[0.0, 0.0, 0.05, 0.0], 3000, &mut rng);
        assert!(t.violates(env.safety()));
    }

    #[test]
    fn lqr_style_feedback_balances_the_pole() {
        let env = cartpole_env(DEFAULT_POLE_LENGTH);
        // Hand-tuned stabilizing gains (position, velocity, angle, rate).
        // Note the positive position/velocity gains: the cart-pole is
        // non-minimum-phase, so the cart must first move *towards* the fall.
        let k = LinearPolicy::new(vec![vec![1.2, 3.9, 79.0, 15.0]]);
        let mut rng = SmallRng::seed_from_u64(32);
        for _ in 0..5 {
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&k, &s0, 3000, &mut rng);
            assert!(
                !t.violates(env.safety()),
                "stabilizing gains failed from {s0:?}"
            );
            assert!(t.final_state().unwrap()[2].abs() < 0.05);
        }
    }

    #[test]
    fn longer_pole_changes_the_dynamics() {
        let short = cartpole_env(DEFAULT_POLE_LENGTH);
        let long = cartpole_env(DEFAULT_POLE_LENGTH + 0.15);
        let ds = short.dynamics().derivative(&[0.0, 0.0, 0.1, 0.0], &[0.0]);
        let dl = long.dynamics().derivative(&[0.0, 0.0, 0.1, 0.0], &[0.0]);
        assert!(dl[3] < ds[3], "a longer pole falls more slowly");
        assert_eq!(cartpole_longer_pole().hidden_layers(), &[1200, 900]);
    }
}
