//! Oscillator benchmark (18 state variables): a two-dimensional oscillator
//! whose displacement drives a 16th-order low-pass filter chain; the filter's
//! single output signal must stay below a safe threshold (Sec. 5).

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};

/// Number of filter stages appended to the two oscillator states.
pub const FILTER_ORDER: usize = 16;

/// Builds the oscillator-plus-filter environment.
///
/// States `s = [x1, x2, f1, …, f16]`: oscillator displacement and velocity
/// followed by the 16 filter stages; action `a` is the force applied to the
/// oscillator:
///
/// ```text
/// ẋ1 = x2
/// ẋ2 = −x1 − 0.1·x2 + a
/// ḟ1 = κ·(x1 − f1)
/// ḟi = κ·(f_{i−1} − f_i)      for i = 2…16
/// ```
///
/// The safety property bounds the filter output `f16` by ±0.9 while the
/// remaining states are only loosely bounded — mirroring the paper, where the
/// neural controller oscillates close to the output threshold and triggers
/// many shield interventions.
pub fn oscillator_env() -> EnvironmentContext {
    let n = 2 + FILTER_ORDER;
    let kappa = 5.0;
    let mut a = vec![vec![0.0; n]; n];
    a[0][1] = 1.0;
    a[1][0] = -1.0;
    a[1][1] = -0.1;
    a[2][0] = kappa;
    a[2][2] = -kappa;
    for i in 3..n {
        a[i][i - 1] = kappa;
        a[i][i] = -kappa;
    }
    let mut b = vec![vec![0.0]; n];
    b[1][0] = 1.0;
    let dynamics = PolyDynamics::linear(&a, &b, None);
    let mut init = vec![0.1; n];
    init[0] = 1.0;
    init[1] = 1.0;
    let mut safe = vec![3.0; n];
    safe[n - 1] = 0.9; // the filter output threshold
    let names: Vec<String> = std::iter::once("x1".to_string())
        .chain(std::iter::once("x2".to_string()))
        .chain((1..=FILTER_ORDER).map(|i| format!("f{i}")))
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    EnvironmentContext::new(
        "oscillator",
        dynamics,
        0.01,
        BoxRegion::symmetric(&init),
        SafetySpec::inside(BoxRegion::symmetric(&safe)),
    )
    .with_action_bounds(vec![-10.0], vec![10.0])
    .with_variable_names(&name_refs)
    .with_steady(|s: &[f64]| s.iter().all(|x| x.abs() <= 0.1))
}

/// The Table 1 oscillator benchmark.
pub fn oscillator() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "oscillator",
        "2-D oscillator driving a 16th-order filter; the filter output must stay below a threshold",
        2,
        vec![240, 200],
        oscillator_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    fn damping_gain() -> LinearPolicy {
        let mut g = vec![0.0; 2 + FILTER_ORDER];
        g[0] = -1.0;
        g[1] = -1.5;
        LinearPolicy::new(vec![g])
    }

    #[test]
    fn dimension_matches_table1() {
        let spec = oscillator();
        assert_eq!(spec.env().state_dim(), 18);
        assert_eq!(spec.env().action_dim(), 1);
        assert!(spec.env().dynamics().is_affine());
    }

    #[test]
    fn filter_output_threshold_defines_safety() {
        let env = oscillator_env();
        let mut near_limit = vec![0.0; 18];
        near_limit[17] = 1.0;
        assert!(env.is_unsafe(&near_limit));
        near_limit[17] = 0.85;
        assert!(!env.is_unsafe(&near_limit));
    }

    #[test]
    fn damping_control_keeps_the_output_below_threshold() {
        let env = oscillator_env();
        let mut rng = SmallRng::seed_from_u64(81);
        let mut s0 = vec![0.1; 18];
        s0[0] = 1.0;
        s0[1] = 1.0;
        let t = env.rollout(&damping_gain(), &s0, 4000, &mut rng);
        assert!(
            !t.violates(env.safety()),
            "damped oscillator stays below the output threshold"
        );
    }

    #[test]
    fn undamped_oscillation_eventually_crosses_the_threshold() {
        let env = oscillator_env();
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(82);
        let mut s0 = vec![0.1; 18];
        s0[0] = 1.0;
        s0[1] = 1.0;
        let t = env.rollout(&zero, &s0, 5000, &mut rng);
        assert!(
            t.violates(env.safety()),
            "the lightly damped oscillator drives the filter output past the threshold"
        );
    }

    #[test]
    fn filter_tracks_a_constant_oscillator_displacement() {
        let env = oscillator_env();
        // Freeze the oscillator at x1 = 0.5 and check the filter chain relaxes
        // towards 0.5 stage by stage.
        let dynamics = env.dynamics();
        let mut s: Vec<f64> = vec![0.0; 18];
        s[0] = 0.5;
        for _ in 0..5000 {
            let d = dynamics.derivative(&s, &[0.0]);
            for i in 2..18 {
                s[i] += 0.01 * d[i];
            }
        }
        assert!(
            (s[17] - 0.5).abs() < 1e-3,
            "filter output should settle at the input value"
        );
    }
}
