//! Benchmark registry: every control system evaluated in the paper.

use vrl_dynamics::EnvironmentContext;

/// A named benchmark: an environment context plus the pipeline settings the
/// evaluation harness uses for it (invariant degree, neural network size).
///
/// The registry mirrors Table 1 of the paper; `Vars` in the table corresponds
/// to [`EnvironmentContext::state_dim`].
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    name: &'static str,
    description: &'static str,
    invariant_degree: u32,
    hidden_layers: Vec<usize>,
    env: EnvironmentContext,
}

impl BenchmarkSpec {
    /// Creates a benchmark specification.
    pub fn new(
        name: &'static str,
        description: &'static str,
        invariant_degree: u32,
        hidden_layers: Vec<usize>,
        env: EnvironmentContext,
    ) -> Self {
        BenchmarkSpec {
            name,
            description,
            invariant_degree,
            hidden_layers,
            env,
        }
    }

    /// Benchmark name as used in Table 1 (lower-case, hyphenated).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the control task and its safety property.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Degree bound for the invariant sketch (Eq. 7) used by default.
    pub fn invariant_degree(&self) -> u32 {
        self.invariant_degree
    }

    /// Hidden-layer sizes of the neural controller (Table 1 "Size" column).
    pub fn hidden_layers(&self) -> &[usize] {
        &self.hidden_layers
    }

    /// The environment context.
    pub fn env(&self) -> &EnvironmentContext {
        &self.env
    }

    /// Consumes the spec and returns the environment context.
    pub fn into_env(self) -> EnvironmentContext {
        self.env
    }
}

/// All Table 1 benchmarks in the order the paper lists them.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        crate::linear::satellite(),
        crate::linear::dcmotor(),
        crate::linear::tape(),
        crate::linear::magnetic_pointer(),
        crate::linear::suspension(),
        crate::biology::biology(),
        crate::datacenter::datacenter_cooling(),
        crate::quadcopter::quadcopter(),
        crate::pendulum::pendulum(),
        crate::cartpole::cartpole(),
        crate::driving::self_driving(),
        crate::driving::lane_keeping(),
        crate::platoon::car_platoon_4(),
        crate::platoon::car_platoon_8(),
        crate::oscillator::oscillator(),
    ]
}

/// Looks up a benchmark by its Table 1 name (case-insensitive).
pub fn benchmark_by_name(name: &str) -> Option<BenchmarkSpec> {
    let needle = name.to_ascii_lowercase();
    all_benchmarks()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 15, "Table 1 lists 15 benchmarks");
        let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "satellite",
                "dcmotor",
                "tape",
                "magnetic-pointer",
                "suspension",
                "biology",
                "datacenter-cooling",
                "quadcopter",
                "pendulum",
                "cartpole",
                "self-driving",
                "lane-keeping",
                "car-platoon-4",
                "car-platoon-8",
                "oscillator",
            ]
        );
    }

    #[test]
    fn state_dimensions_match_vars_column() {
        let expected = [
            ("satellite", 2),
            ("dcmotor", 3),
            ("tape", 3),
            ("magnetic-pointer", 3),
            ("suspension", 4),
            ("biology", 3),
            ("datacenter-cooling", 3),
            ("quadcopter", 2),
            ("pendulum", 2),
            ("cartpole", 4),
            ("self-driving", 4),
            ("lane-keeping", 4),
            ("car-platoon-4", 8),
            ("car-platoon-8", 16),
            ("oscillator", 18),
        ];
        for (name, vars) in expected {
            let b = benchmark_by_name(name).unwrap_or_else(|| panic!("missing benchmark {name}"));
            assert_eq!(b.env().state_dim(), vars, "wrong Vars for {name}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(benchmark_by_name("Pendulum").is_some());
        assert!(benchmark_by_name("PENDULUM").is_some());
        assert!(benchmark_by_name("does-not-exist").is_none());
    }

    #[test]
    fn every_benchmark_is_well_formed() {
        for b in all_benchmarks() {
            let env = b.env();
            assert!(
                !b.description().is_empty(),
                "{} has no description",
                b.name()
            );
            assert!(b.invariant_degree() >= 2, "{} degree too small", b.name());
            assert!(
                !b.hidden_layers().is_empty(),
                "{} has no hidden layers",
                b.name()
            );
            assert!(env.dt() > 0.0);
            assert_eq!(env.init().dim(), env.state_dim());
            assert_eq!(env.safety().dim(), env.state_dim());
            // The initial region must be strictly inside the safe region, as
            // the paper assumes (S0 disjoint from Su).
            for corner in env.init().corners() {
                assert!(
                    env.safety().is_safe(&corner),
                    "{}: initial corner {:?} is unsafe",
                    b.name(),
                    corner
                );
            }
            // The origin (target of regulation) must be safe and steady.
            let origin = vec![0.0; env.state_dim()];
            assert!(env.safety().is_safe(&origin), "{}: origin unsafe", b.name());
            assert!(env.is_steady(&origin), "{}: origin not steady", b.name());
        }
    }

    #[test]
    fn spec_accessors_round_trip() {
        let b = benchmark_by_name("pendulum").unwrap();
        assert_eq!(b.name(), "pendulum");
        assert_eq!(b.env().name(), "pendulum");
        let env = b.clone().into_env();
        assert_eq!(env.state_dim(), 2);
    }
}
