//! The Duffing oscillator of Example 4.3, used to illustrate the CEGIS loop
//! (Fig. 6).
//!
//! ```text
//! ẋ = y
//! ẏ = −0.6·y − x − x³ + a
//! ```
//!
//! The control objective is to regulate the state to the origin from
//! `S0 = [−2.5, 2.5] × [−2, 2]` while avoiding
//! `Su = { (x, y) | ¬(−5 ≤ x ≤ 5 ∧ −5 ≤ y ≤ 5) }`.

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl_poly::Polynomial;

/// Builds the Duffing oscillator environment exactly as specified in
/// Example 4.3 of the paper.
pub fn duffing_env() -> EnvironmentContext {
    // Variables: x0 = x, x1 = y, x2 = a.
    let x = Polynomial::variable(0, 3);
    let y = Polynomial::variable(1, 3);
    let a = Polynomial::variable(2, 3);
    let ydot = &(&(&y.scaled(-0.6) - &x) - &x.pow(3)) + &a;
    let dynamics =
        PolyDynamics::new(2, 1, vec![y.clone(), ydot]).expect("duffing dynamics are well formed");
    EnvironmentContext::new(
        "duffing",
        dynamics,
        0.01,
        BoxRegion::new(vec![-2.5, -2.0], vec![2.5, 2.0]),
        SafetySpec::inside(BoxRegion::symmetric(&[5.0, 5.0])),
    )
    .with_action_bounds(vec![-25.0], vec![25.0])
    .with_variable_names(&["x", "y"])
    .with_steady(|s: &[f64]| s.iter().all(|v| v.abs() <= 0.05))
}

/// The Duffing oscillator benchmark (Example 4.3 / Fig. 6).
pub fn duffing() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "duffing",
        "Duffing oscillator of Example 4.3; regulate to the origin while staying inside the ±5 box",
        4,
        vec![240, 200],
        duffing_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::Dynamics;
    use vrl_dynamics::LinearPolicy;

    #[test]
    fn dynamics_match_example_4_3() {
        let env = duffing_env();
        let d = env.dynamics().derivative(&[1.5, -0.5], &[0.25]);
        assert!((d[0] - (-0.5)).abs() < 1e-12);
        let expected = -0.6 * (-0.5) - 1.5 - 1.5f64.powi(3) + 0.25;
        assert!((d[1] - expected).abs() < 1e-12);
        assert_eq!(env.dynamics().degree(), 3);
        assert!(!env.dynamics().is_affine());
    }

    #[test]
    fn regions_match_example_4_3() {
        let env = duffing_env();
        assert_eq!(env.init().lows(), &[-2.5, -2.0]);
        assert_eq!(env.init().highs(), &[2.5, 2.0]);
        assert!(env.is_unsafe(&[5.5, 0.0]));
        assert!(!env.is_unsafe(&[4.9, -4.9]));
        assert_eq!(duffing().invariant_degree(), 4);
    }

    #[test]
    fn paper_policies_from_fig6_are_safe_on_their_regions() {
        // Example 4.3 synthesizes P1 = 0.39x − 1.41y (covering a sub-region)
        // and P2 = 0.88x − 2.34y.  Rolling either out from the initial state
        // the paper samples for it should stay within the ±5 safe box.
        let env = duffing_env();
        let mut rng = SmallRng::seed_from_u64(9);
        let p1 = LinearPolicy::new(vec![vec![0.39, -1.41]]);
        let t1 = env.rollout(&p1, &[-0.46, -0.36], 4000, &mut rng);
        assert!(!t1.violates(env.safety()));
        let p2 = LinearPolicy::new(vec![vec![0.88, -2.34]]);
        let t2 = env.rollout(&p2, &[2.249, 2.0], 4000, &mut rng);
        assert!(!t2.violates(env.safety()));
    }

    #[test]
    fn uncontrolled_duffing_remains_bounded_but_not_at_origin() {
        // With no control the Duffing oscillator is dissipative: it stays in
        // the safe box but settles at a nonzero equilibrium of x + x³ = 0
        // (the origin) — from large initial conditions it still converges,
        // so this test just documents boundedness.
        let env = duffing_env();
        let zero = vrl_dynamics::ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(10);
        let t = env.rollout(&zero, &[2.5, 2.0], 5000, &mut rng);
        assert!(!t.violates(env.safety()));
        assert!(t.final_state().unwrap().iter().all(|x| x.is_finite()));
    }
}
