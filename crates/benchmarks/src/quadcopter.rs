//! Quadcopter altitude-hold benchmark (2 state variables).
//!
//! The paper's Quadcopter environment "tests whether a controlled quadcopter
//! can realize stable flight" with a 2-dimensional state.  We model the
//! vertical axis: altitude error and vertical velocity, with the net thrust
//! deviation as the control input.

use crate::spec::BenchmarkSpec;
use vrl_dynamics::{BoxRegion, Disturbance, EnvironmentContext, PolyDynamics, SafetySpec};
use vrl_poly::Polynomial;

/// Builds the quadcopter altitude-hold environment.
///
/// State `s = [h, v]`: altitude error (m) and vertical velocity (m/s);
/// action `a`: normalized net thrust deviation.
///
/// ```text
/// ḣ = v
/// v̇ = −0.3·v + a        (small aerodynamic drag)
/// ```
pub fn quadcopter_env() -> EnvironmentContext {
    let v = Polynomial::variable(1, 3);
    let a = Polynomial::variable(2, 3);
    let vdot = &v.scaled(-0.3) + &a;
    let dynamics =
        PolyDynamics::new(2, 1, vec![v, vdot]).expect("quadcopter dynamics are well formed");
    EnvironmentContext::new(
        "quadcopter",
        dynamics,
        0.01,
        BoxRegion::symmetric(&[0.4, 0.4]),
        SafetySpec::inside(BoxRegion::symmetric(&[1.0, 1.5])),
    )
    .with_action_bounds(vec![-8.0], vec![8.0])
    .with_disturbance(Disturbance::symmetric(&[0.0, 0.05]))
    .with_variable_names(&["h", "v"])
}

/// The Table 1 quadcopter benchmark.
pub fn quadcopter() -> BenchmarkSpec {
    BenchmarkSpec::new(
        "quadcopter",
        "quadcopter altitude hold under thrust disturbance; keep altitude error and climb rate bounded",
        2,
        vec![300, 200],
        quadcopter_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::LinearPolicy;

    #[test]
    fn model_shape_matches_table1() {
        let spec = quadcopter();
        assert_eq!(spec.env().state_dim(), 2);
        assert_eq!(spec.env().action_dim(), 1);
        assert_eq!(spec.hidden_layers(), &[300, 200]);
        assert!(spec.env().dynamics().is_affine());
        assert!(!spec.env().disturbance().is_zero());
    }

    #[test]
    fn pd_feedback_holds_altitude() {
        let env = quadcopter_env();
        let pd = LinearPolicy::new(vec![vec![-3.0, -2.5]]);
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..5 {
            let s0 = env.sample_initial(&mut rng);
            let t = env.rollout(&pd, &s0, 3000, &mut rng);
            assert!(!t.violates(env.safety()));
            assert!(t.final_state().unwrap()[0].abs() < 0.2);
        }
    }

    #[test]
    fn aggressive_thrust_violates_safety() {
        let env = quadcopter_env();
        let bad = vrl_dynamics::ConstantPolicy::new(vec![8.0]);
        let mut rng = SmallRng::seed_from_u64(22);
        let t = env.rollout(&bad, &[0.4, 0.4], 2000, &mut rng);
        assert!(t.violates(env.safety()));
    }
}
