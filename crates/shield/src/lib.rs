//! Shield synthesis and runtime enforcement (Secs. 4.2–4.3 of the paper).
//!
//! This crate combines the program synthesizer (`vrl-synth`) and the
//! verifier (`vrl-verify`) into:
//!
//! * [`synthesize_shield`] — Algorithm 2, the counterexample-guided loop that
//!   covers the initial state space with verified `(program, invariant)`
//!   pairs;
//! * [`Shield`] / [`ShieldedPolicy`] — Algorithm 3, the runtime monitor that
//!   lets the neural policy act freely while its proposed actions keep the
//!   system inside a proven invariant, and overrides them otherwise;
//! * [`DecisionTable`] — a deploy-time precomputed grid over the safe box
//!   whose interval-certified cells answer most decisions in O(1)
//!   ([`Shield::with_table`]), falling back to the exact compiled path on
//!   boundary cells so table decisions stay bit-identical;
//! * [`evaluate_shielded_system`] — the measurement harness behind the
//!   failures / interventions / overhead / performance columns of Tables 1–3.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use vrl_dynamics::{BoxRegion, ClosurePolicy, EnvironmentContext, PolyDynamics, SafetySpec};
//! use vrl_poly::Polynomial;
//! use vrl_shield::{synthesize_shield, CegisConfig};
//! use vrl_verify::VerificationConfig;
//!
//! // ẋ = a, oracle a = -2x, safe |x| ≤ 1.
//! let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
//! let env = EnvironmentContext::new(
//!     "scalar", dynamics, 0.01,
//!     BoxRegion::symmetric(&[0.3]),
//!     SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
//! );
//! let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-2.0 * s[0]]);
//! let mut rng = SmallRng::seed_from_u64(0);
//! let config = CegisConfig { verification: VerificationConfig::with_degree(2), ..CegisConfig::smoke_test() };
//! let (shield, report) = synthesize_shield(&env, &oracle, &config, &mut rng).unwrap();
//! assert!(report.pieces >= 1);
//! assert!(shield.covers(&[0.2]));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cegis;
mod metrics;
mod obs;
mod shield;
mod table;

pub use cegis::{
    find_uncovered_initial_state, synthesize_shield, CegisConfig, CegisError, CegisReport,
};
pub use metrics::{evaluate_shielded_system, ShieldEvaluation};
pub use obs::{decide_table_build_fallback_count, decide_table_traffic, install_metrics};
pub use shield::{
    PortableShield, PortableShieldPiece, Shield, ShieldDecision, ShieldPiece, ShieldedPolicy,
};
pub use table::{CellClass, DecisionTable, TableConfig, TableError, TableStats};
