//! Algorithm 2: counterexample-guided inductive synthesis of a shield.
//!
//! The driver repeatedly (1) picks an initial state not yet covered by any
//! learned invariant, (2) synthesizes a candidate program around it with
//! Algorithm 1 (`vrl-synth`), (3) attempts to verify it (`vrl-verify`), and
//! (4) on failure shrinks the initial region around the counterexample and
//! retries.  Each success contributes a `(program, invariant)` pair; the
//! union of the invariants must cover the whole initial state space `S0`
//! before the loop terminates (Theorem 4.2).

use crate::{Shield, ShieldPiece};
use rand::Rng;
use std::fmt;
use std::time::{Duration, Instant};
use vrl_dynamics::{BoxRegion, EnvironmentContext, Policy};
use vrl_synth::{synthesize_program, DistillConfig, ProgramSketch};
use vrl_verify::{verify_program, BarrierCertificate, VerificationConfig};

/// Configuration of the CEGIS shield synthesis loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CegisConfig {
    /// Degree of the program sketch (1 = the affine sketch of Eq. 4).
    pub program_degree: u32,
    /// Algorithm 1 (oracle distillation) settings.
    pub distill: DistillConfig,
    /// Verification settings, including the invariant degree of Eq. 7.
    pub verification: VerificationConfig,
    /// Maximum number of `(program, invariant)` pieces to synthesize.
    pub max_pieces: usize,
    /// Maximum number of radius halvings around a counterexample.
    pub max_shrink_steps: usize,
    /// Random samples (plus corners and centre) used to search for uncovered
    /// initial states.
    pub coverage_samples: usize,
}

impl Default for CegisConfig {
    fn default() -> Self {
        CegisConfig {
            program_degree: 1,
            distill: DistillConfig::default(),
            verification: VerificationConfig::default(),
            max_pieces: 8,
            max_shrink_steps: 6,
            coverage_samples: 500,
        }
    }
}

impl CegisConfig {
    /// A deliberately small budget for unit tests and smoke runs.
    pub fn smoke_test() -> Self {
        CegisConfig {
            distill: DistillConfig::smoke_test(),
            max_pieces: 4,
            max_shrink_steps: 4,
            coverage_samples: 200,
            ..CegisConfig::default()
        }
    }

    /// Sets the invariant degree (the Table 2 knob).
    pub fn with_invariant_degree(mut self, degree: u32) -> Self {
        self.verification.invariant_degree = degree;
        self
    }
}

/// Diagnostics of a CEGIS run.
#[derive(Debug, Clone, PartialEq)]
pub struct CegisReport {
    /// Number of verified pieces in the final shield.
    pub pieces: usize,
    /// Total wall-clock time spent synthesizing and verifying.
    pub synthesis_time: Duration,
    /// Total number of synthesize/verify attempts, including failed ones.
    pub attempts: usize,
}

/// Why shield synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CegisError {
    /// An initial state remained uncovered after exhausting the budget.
    CouldNotCoverInitialStates {
        /// The uncovered initial state that defeated the loop.
        uncovered: Vec<f64>,
        /// Number of pieces successfully synthesized before giving up.
        pieces_synthesized: usize,
    },
}

impl fmt::Display for CegisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CegisError::CouldNotCoverInitialStates {
                uncovered,
                pieces_synthesized,
            } => write!(
                f,
                "could not cover initial state {uncovered:?} after synthesizing {pieces_synthesized} pieces"
            ),
        }
    }
}

impl std::error::Error for CegisError {}

/// Algorithm 2: synthesizes a runtime shield for `oracle` in `env`.
///
/// # Errors
///
/// Returns [`CegisError::CouldNotCoverInitialStates`] when some initial state
/// cannot be covered by a verified invariant within the configured budget.
pub fn synthesize_shield<O, R>(
    env: &EnvironmentContext,
    oracle: &O,
    config: &CegisConfig,
    rng: &mut R,
) -> Result<(Shield, CegisReport), CegisError>
where
    O: Policy + ?Sized,
    R: Rng + ?Sized,
{
    let start = Instant::now();
    crate::obs::cegis_runs().inc();
    let _run_span = vrl_obs::span("cegis.run");
    let sketch =
        ProgramSketch::polynomial(env.state_dim(), env.action_dim(), config.program_degree);
    let mut pieces: Vec<ShieldPiece> = Vec::new();
    let mut covers: Vec<BarrierCertificate> = Vec::new();
    let mut attempts = 0usize;
    let mut warm_theta: Option<Vec<f64>> = None;

    for _outer in 0..config.max_pieces {
        let coverage_probe = {
            let _span = vrl_obs::span("cegis.coverage");
            find_uncovered_initial_state(env.init(), &covers, config.coverage_samples, rng)
        };
        let Some(counterexample) = coverage_probe else {
            break; // S0 ⊆ covers: done.
        };
        let mut radius = env.init().diameter().max(1e-6);
        let mut covered_this_counterexample = false;
        for _shrink in 0..=config.max_shrink_steps {
            // The restricted initial region around the counterexample (line 7
            // of Algorithm 2), clipped to S0.
            let region = BoxRegion::ball(&counterexample, radius)
                .intersection(env.init())
                .unwrap_or_else(|| BoxRegion::ball(&counterexample, 1e-9));
            attempts += 1;
            crate::obs::cegis_attempts().inc();
            let synthesized = {
                let _span = vrl_obs::span("cegis.synthesize");
                synthesize_program(
                    env,
                    oracle,
                    &sketch,
                    &region,
                    warm_theta.as_deref(),
                    &config.distill,
                    rng,
                )
            };
            let verdict = {
                let _span = vrl_obs::span("cegis.verify");
                verify_program(
                    env,
                    &synthesized.action_polynomials,
                    &region,
                    &config.verification,
                )
            };
            match verdict {
                Ok(invariant) => {
                    crate::obs::cegis_pieces().inc();
                    // Later pieces continue the random search from the last
                    // *verified* parameters rather than restarting from zero.
                    warm_theta = Some(synthesized.theta.clone());
                    covers.push(invariant.clone());
                    pieces.push(ShieldPiece::new(synthesized.to_program(), invariant));
                    covered_this_counterexample = true;
                    break;
                }
                Err(_failure) => {
                    crate::obs::cegis_counterexamples().inc();
                    radius /= 2.0;
                }
            }
        }
        if !covered_this_counterexample {
            crate::obs::cegis_failures().inc();
            crate::obs::cegis_seconds().observe(start.elapsed());
            return Err(CegisError::CouldNotCoverInitialStates {
                uncovered: counterexample,
                pieces_synthesized: pieces.len(),
            });
        }
    }

    if let Some(uncovered) =
        find_uncovered_initial_state(env.init(), &covers, config.coverage_samples, rng)
    {
        crate::obs::cegis_failures().inc();
        crate::obs::cegis_seconds().observe(start.elapsed());
        return Err(CegisError::CouldNotCoverInitialStates {
            uncovered,
            pieces_synthesized: pieces.len(),
        });
    }
    let report = CegisReport {
        pieces: pieces.len(),
        synthesis_time: start.elapsed(),
        attempts,
    };
    crate::obs::cegis_seconds().observe(report.synthesis_time);
    Ok((Shield::new(env.clone(), pieces), report))
}

/// Searches for an initial state not covered by any of the invariants, by
/// probing the corners, the centre, and `samples` random points of `S0`
/// (line 3–4 of Algorithm 2; Z3 plays this role in the paper's toolchain).
pub fn find_uncovered_initial_state<R: Rng + ?Sized>(
    init: &BoxRegion,
    covers: &[BarrierCertificate],
    samples: usize,
    rng: &mut R,
) -> Option<Vec<f64>> {
    let uncovered = |state: &[f64]| covers.iter().all(|c| !c.contains(state));
    if covers.is_empty() {
        return Some(init.center());
    }
    let center = init.center();
    if uncovered(&center) {
        return Some(center);
    }
    if init.dim() <= 16 {
        for corner in init.corners() {
            if uncovered(&corner) {
                return Some(corner);
            }
        }
    }
    for _ in 0..samples {
        let state = init.sample(rng);
        if uncovered(&state) {
            return Some(state);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{ClosurePolicy, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;

    fn double_integrator_env() -> EnvironmentContext {
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap();
        EnvironmentContext::new(
            "double-integrator",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.3, 0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0])),
        )
        .with_action_bounds(vec![-6.0], vec![6.0])
    }

    #[test]
    fn cegis_builds_a_shield_for_a_good_oracle() {
        let env = double_integrator_env();
        let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-2.0 * s[0] - 3.0 * s[1]]);
        let mut rng = SmallRng::seed_from_u64(42);
        let config = CegisConfig {
            verification: VerificationConfig::with_degree(2),
            ..CegisConfig::smoke_test()
        };
        let (shield, report) = synthesize_shield(&env, &oracle, &config, &mut rng)
            .expect("a stabilizing oracle must yield a shield");
        assert!(report.pieces >= 1);
        assert_eq!(report.pieces, shield.num_pieces());
        assert!(report.attempts >= report.pieces);
        assert!(report.synthesis_time.as_nanos() > 0);
        // Every initial state sampled is covered by the shield.
        for _ in 0..100 {
            let s = env.sample_initial(&mut rng);
            assert!(shield.covers(&s), "initial state {s:?} not covered");
        }
        // The flattened program of Theorem 4.2 is defined on initial states.
        let program = shield.to_program();
        assert!(program.evaluate(&env.init().center()).is_some());
    }

    #[test]
    fn coverage_search_finds_holes_and_reports_completion() {
        let init = BoxRegion::symmetric(&[1.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(7);
        // No covers yet: the centre is returned.
        assert_eq!(
            find_uncovered_initial_state(&init, &[], 10, &mut rng),
            Some(vec![0.0, 0.0])
        );
        // A circle of radius ~0.8 leaves the corners uncovered.
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let small =
            BarrierCertificate::new(&(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(0.64, 2));
        let hole = find_uncovered_initial_state(&init, std::slice::from_ref(&small), 50, &mut rng)
            .expect("corners are uncovered");
        assert!(!small.contains(&hole));
        // A big circle covers the whole box and the search reports None.
        let big =
            BarrierCertificate::new(&(&(&x * &x) + &(&y * &y)) - &Polynomial::constant(10.0, 2));
        assert_eq!(
            find_uncovered_initial_state(&init, &[big], 50, &mut rng),
            None
        );
    }

    #[test]
    fn cegis_fails_cleanly_for_a_hopeless_oracle() {
        let env = double_integrator_env();
        // An oracle that actively destabilizes the system: distillation will
        // track it, verification must keep rejecting, and the loop reports
        // the uncovered initial state.
        let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![4.0 * s[0] + 4.0 * s[1]]);
        let mut rng = SmallRng::seed_from_u64(43);
        let config = CegisConfig {
            distill: DistillConfig {
                iterations: 5,
                ..DistillConfig::smoke_test()
            },
            verification: VerificationConfig::with_degree(2),
            max_pieces: 2,
            max_shrink_steps: 2,
            coverage_samples: 50,
            ..CegisConfig::smoke_test()
        };
        let result = synthesize_shield(&env, &oracle, &config, &mut rng);
        match result {
            Err(CegisError::CouldNotCoverInitialStates { uncovered, .. }) => {
                assert_eq!(uncovered.len(), 2);
            }
            Ok((shield, _)) => {
                // If distillation happened to produce a safe program despite
                // the bad oracle, the shield must still be sound.
                assert!(shield.num_pieces() >= 1);
            }
        }
        let display = CegisError::CouldNotCoverInitialStates {
            uncovered: vec![0.1],
            pieces_synthesized: 3,
        }
        .to_string();
        assert!(display.contains("3 pieces"));
    }
}
