//! Algorithm 3: the runtime safety shield.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vrl_dynamics::{EnvironmentContext, Policy, PortableEnvironment};
use vrl_poly::BatchPoints;
use vrl_synth::{GuardedPolicy, PolicyProgram, PortableProgram};
use vrl_verify::{BarrierCertificate, PortableCertificate};

use crate::table::{DecisionTable, TableConfig, TableError};

/// Reusable per-thread buffers for [`Shield::decide_batch`]: the predicted
/// successor lanes, one row-assembly buffer for the per-lane safety check,
/// the coverage flags, plus the decision-table lane partition, so batched
/// serving performs no per-request allocation beyond the returned decisions.
#[derive(Default)]
struct BatchScratch {
    predicted: BatchPoints,
    row: Vec<f64>,
    safe: Vec<bool>,
    covered: Vec<bool>,
    contained: Vec<bool>,
    table_cover: Vec<Option<bool>>,
    fallback: BatchPoints,
}

thread_local! {
    static BATCH_SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::default());
}

/// One verified piece of a shield: a deterministic program together with the
/// inductive invariant proving it safe on the region the invariant covers.
#[derive(Debug, Clone)]
pub struct ShieldPiece {
    program: PolicyProgram,
    invariant: BarrierCertificate,
}

impl ShieldPiece {
    /// Creates a piece from a verified program and its invariant.
    ///
    /// # Panics
    ///
    /// Panics if the program and invariant dimensions disagree.
    pub fn new(program: PolicyProgram, invariant: BarrierCertificate) -> Self {
        assert_eq!(
            program.state_dim(),
            invariant.state_dim(),
            "program and invariant must range over the same state variables"
        );
        ShieldPiece { program, invariant }
    }

    /// The verified deterministic program.
    pub fn program(&self) -> &PolicyProgram {
        &self.program
    }

    /// The inductive invariant `φ ::= E ≤ 0`.
    pub fn invariant(&self) -> &BarrierCertificate {
        &self.invariant
    }
}

/// A runtime safety shield (Sec. 4.3): the collection of verified
/// `(program, invariant)` pairs produced by the CEGIS loop, together with the
/// environment model used to predict the effect of proposed actions.
///
/// The shield lets a high-performing neural policy act freely as long as the
/// *predicted* next state stays within a proven invariant; otherwise it
/// overrides the action with the verified program of the piece covering the
/// current state.
///
/// # Serving performance
///
/// Every polynomial a decision touches is held in compiled (flat-array)
/// form, cached at construction time by the components the shield is built
/// from: invariant membership tests run on
/// [`BarrierCertificate`]'s compiled barrier, the one-step prediction runs
/// on [`vrl_dynamics::PolyDynamics`]'s compiled vector field, and override
/// actions run on the compiled branches of
/// [`PolicyProgram`].  The serving hot path
/// ([`Shield::decide`] and everything below it) therefore never iterates
/// the sparse `BTreeMap` polynomial representation, and all *evaluation*
/// scratch (per-variable power tables, integrator stage buffers, the
/// oracle's forward-pass buffers upstream in `vrl-runtime`) lives in
/// per-thread reusable storage.  The remaining steady-state allocations
/// per decision are the handful of small output vectors (the clamped and
/// returned actions and the predicted successor state).  Compiled forms
/// are snapshots: they are rebuilt automatically whenever a new shield
/// (or piece, certificate, or program) is constructed, e.g. on hot
/// redeploys.
///
/// Optionally ([`Shield::with_table`]) a shield carries a precomputed
/// [`DecisionTable`]: decisions whose predicted successor lands in an
/// interval-certified cell are answered in O(1) with no certificate
/// evaluation at all, and only boundary cells route through the exact
/// compiled path above.  Table dispatch is bit-identical to the exact path
/// (debug builds assert every table-resolved decision against it).
#[derive(Debug, Clone)]
pub struct Shield {
    env: EnvironmentContext,
    pieces: Vec<ShieldPiece>,
    table: Option<Arc<DecisionTable>>,
}

/// The decision taken by the shield for one step.
#[derive(Debug, Clone, PartialEq)]
pub struct ShieldDecision {
    /// The action actually applied.
    pub action: Vec<f64>,
    /// True when the neural action was overridden.
    pub intervened: bool,
}

impl Shield {
    /// Creates a shield from verified pieces.
    ///
    /// # Panics
    ///
    /// Panics if `pieces` is empty or a piece's dimensions disagree with the
    /// environment.
    pub fn new(env: EnvironmentContext, pieces: Vec<ShieldPiece>) -> Self {
        assert!(
            !pieces.is_empty(),
            "a shield needs at least one verified piece"
        );
        for piece in &pieces {
            assert_eq!(
                piece.invariant().state_dim(),
                env.state_dim(),
                "piece dimension must match the environment"
            );
        }
        Shield {
            env,
            pieces,
            table: None,
        }
    }

    /// Returns this shield with a freshly built precomputed decision table
    /// (replacing any previous one; the pieces and environment are
    /// unchanged, so decisions are unchanged — only their cost is).
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] when the table cannot be built for this
    /// shield and config (see [`DecisionTable::build`]).
    pub fn with_table(mut self, config: &TableConfig) -> Result<Shield, TableError> {
        let table = DecisionTable::build(&self.env, &self.pieces, config)?;
        self.table = Some(Arc::new(table));
        Ok(self)
    }

    /// Returns this shield with any precomputed decision table removed
    /// (every decision runs the exact compiled path again).
    pub fn without_table(mut self) -> Shield {
        self.table = None;
        self
    }

    /// Like [`Shield::with_table`], but degrades gracefully: when the table
    /// cannot be built (degenerate domain, over-budget grid — typical for
    /// high-dimensional state spaces where a dense grid cannot certify
    /// anything), the shield is returned unchanged on the exact compiled
    /// path, and the `vrl_shield_decide_table_build_fallbacks_total`
    /// counter records the fallback.  Decisions are identical either way;
    /// only their cost differs.
    pub fn with_table_or_fallback(mut self, config: &TableConfig) -> Shield {
        match DecisionTable::build(&self.env, &self.pieces, config) {
            Ok(table) => {
                self.table = Some(Arc::new(table));
                self
            }
            Err(_) => {
                crate::obs::decide_table_build_fallbacks().inc();
                self.table = None;
                self
            }
        }
    }

    /// The precomputed decision table, when one was built.
    pub fn table(&self) -> Option<&DecisionTable> {
        self.table.as_deref()
    }

    /// The verified pieces.
    pub fn pieces(&self) -> &[ShieldPiece] {
        &self.pieces
    }

    /// Number of pieces (the "Size" column for the deterministic program in
    /// Table 1).
    pub fn num_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// The environment model the shield predicts with.
    pub fn env(&self) -> &EnvironmentContext {
        &self.env
    }

    /// Returns true when `state` lies inside some proven invariant *and* is
    /// safe according to the environment's safety specification.
    pub fn covers(&self, state: &[f64]) -> bool {
        self.env.safety().is_safe(state)
            && self.pieces.iter().any(|p| p.invariant().contains(state))
    }

    /// Algorithm 3: decides the action to apply at `state` given the action
    /// `proposed` by the neural policy.
    ///
    /// The proposed action is kept when the predicted successor remains
    /// within a proven invariant (and the safe region); otherwise the shield
    /// substitutes the action of the verified program covering the current
    /// state (falling back to the piece whose invariant value is smallest if
    /// none formally covers it).
    ///
    /// With a precomputed table ([`Shield::with_table`]) the coverage
    /// question is answered by the predicted successor's certified cell when
    /// possible — O(1), no certificate evaluation — and by the exact
    /// compiled path on boundary cells.  Both routes produce bit-identical
    /// decisions (asserted in debug builds).
    pub fn decide(&self, state: &[f64], proposed: &[f64]) -> ShieldDecision {
        let predicted = self.env.step_deterministic(state, proposed);
        if let Some(table) = &self.table {
            if let Some(covered) = table.coverage(&predicted) {
                crate::obs::decide_table_hits().inc();
                let decision = if covered {
                    ShieldDecision {
                        action: self.env.clamp_action(proposed),
                        intervened: false,
                    }
                } else {
                    ShieldDecision {
                        action: self.table_intervention_action(state),
                        intervened: true,
                    }
                };
                debug_assert_eq!(
                    decision,
                    self.decide_exact(state, proposed),
                    "table-resolved decision diverged from the exact path"
                );
                return decision;
            }
            crate::obs::decide_table_fallbacks().inc();
        }
        self.decide_from_predicted(state, proposed, &predicted)
    }

    /// The exact decision procedure, bypassing any precomputed table (the
    /// conformance reference for table dispatch).
    pub fn decide_exact(&self, state: &[f64], proposed: &[f64]) -> ShieldDecision {
        let predicted = self.env.step_deterministic(state, proposed);
        self.decide_from_predicted(state, proposed, &predicted)
    }

    /// The exact keep/override choice given an already-predicted successor.
    fn decide_from_predicted(
        &self,
        state: &[f64],
        proposed: &[f64],
        predicted: &[f64],
    ) -> ShieldDecision {
        if self.covers(predicted) {
            return ShieldDecision {
                action: self.env.clamp_action(proposed),
                intervened: false,
            };
        }
        ShieldDecision {
            action: self.intervention_action(state),
            intervened: true,
        }
    }

    /// The override action for `state` when the decision was resolved by
    /// the table: uses the current state's certified constant piece when the
    /// table pinned one (skipping the piece-selection scan), and the exact
    /// [`Shield::intervention_action`] otherwise.  By the table's
    /// construction the pinned piece is exactly the piece the scan would
    /// select, so both routes clamp the same program's action.
    fn table_intervention_action(&self, state: &[f64]) -> Vec<f64> {
        if let Some(table) = &self.table {
            if let Some(j) = table.intervention_piece(state) {
                return self
                    .env
                    .clamp_action(&self.pieces[j].program().action(state));
            }
        }
        self.intervention_action(state)
    }

    /// The override action for `state`: the verified program of the piece
    /// responsible for the current state (by construction its action keeps
    /// the system inside that piece's invariant), falling back to the piece
    /// whose invariant value is smallest when none formally covers it.
    ///
    /// Shared by [`Shield::decide`] and [`Shield::decide_batch`] so both
    /// paths intervene with byte-identical actions.
    fn intervention_action(&self, state: &[f64]) -> Vec<f64> {
        let piece = self
            .pieces
            .iter()
            .find(|p| p.invariant().contains(state))
            .unwrap_or_else(|| {
                self.pieces
                    .iter()
                    .min_by(|a, b| {
                        a.invariant()
                            .value(state)
                            .partial_cmp(&b.invariant().value(state))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("a shield always has at least one piece")
            });
        self.env.clamp_action(&piece.program().action(state))
    }

    /// Algorithm 3 for a whole batch of independent `(state, proposal)`
    /// pairs: predicts every successor through the lane-batched integrator
    /// step ([`EnvironmentContext::step_deterministic_batch`] — one sweep of
    /// the compiled dynamics family for the whole batch instead of one
    /// integrator call per state), classifies the entire lane against the
    /// certificates through the lane-batched compiled kernels (one
    /// power-table fill per variable per [`vrl_poly::LANE_WIDTH`]-lane
    /// sweep), and only falls back to the per-state intervention path for
    /// the lanes whose predicted successor is uncovered.
    ///
    /// With a precomputed table ([`Shield::with_table`]) the batch is first
    /// partitioned by the table: lanes whose predicted successor lands in a
    /// certified cell are decided in O(1), and only boundary-cell lanes run
    /// the certificate sweep.
    ///
    /// Decision-for-decision identical to calling [`Shield::decide`] per
    /// pair (debug builds assert this): batched membership values are
    /// bit-exact, and interventions run the same
    /// (piece-selection, program, clamp) code as the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `proposed` have different lengths or any
    /// state/action has the wrong dimension.
    pub fn decide_batch(&self, states: &[Vec<f64>], proposed: &[Vec<f64>]) -> Vec<ShieldDecision> {
        assert_eq!(
            states.len(),
            proposed.len(),
            "one proposed action per state is required"
        );
        if states.is_empty() {
            return Vec::new();
        }
        BATCH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let BatchScratch {
                predicted,
                row,
                safe,
                covered,
                contained,
                table_cover,
                fallback,
            } = &mut *scratch;
            // One lane-batched sweep of the compiled dynamics predicts the
            // whole batch's successors (bit-identical to per-state
            // `step_deterministic`, asserted in debug builds).
            self.env
                .step_deterministic_batch(states, proposed, predicted);
            // With a precomputed table, partition the lanes: certified
            // cells are decided in O(1); only the boundary-cell lanes run
            // the certificate machinery below.  Without a table every lane
            // is a "fallback" lane.
            table_cover.clear();
            if fallback.nvars() != predicted.nvars() {
                *fallback = BatchPoints::new(predicted.nvars());
            } else {
                fallback.clear();
            }
            if let Some(table) = &self.table {
                for lane in 0..states.len() {
                    predicted.state_into(lane, row);
                    let cover = table.coverage(row);
                    if cover.is_none() {
                        fallback.push(row);
                    }
                    table_cover.push(cover);
                }
                crate::obs::decide_table_hits().add((states.len() - fallback.len()) as u64);
                crate::obs::decide_table_fallbacks().add(fallback.len() as u64);
            } else {
                table_cover.resize(states.len(), None);
                for lane in 0..states.len() {
                    predicted.state_into(lane, row);
                    fallback.push(row);
                }
            }
            safe.clear();
            for lane in 0..fallback.len() {
                fallback.state_into(lane, row);
                safe.push(self.env.safety().is_safe(row));
            }
            // Lane-parallel certificate classification: a fallback lane is
            // covered when its predicted successor is safe and inside some
            // piece's invariant.
            covered.clear();
            covered.resize(fallback.len(), false);
            if !fallback.is_empty() {
                for piece in &self.pieces {
                    piece.invariant().contains_batch(fallback, contained);
                    for (c, &inside) in covered.iter_mut().zip(contained.iter()) {
                        *c = *c || inside;
                    }
                }
            }
            let mut next_fallback = 0usize;
            let decisions: Vec<ShieldDecision> = states
                .iter()
                .zip(proposed.iter())
                .zip(table_cover.iter())
                .map(|((state, action), cover)| {
                    let (keep, table_resolved) = match cover {
                        Some(keep) => (*keep, true),
                        None => {
                            let i = next_fallback;
                            next_fallback += 1;
                            (covered[i] && safe[i], false)
                        }
                    };
                    if keep {
                        ShieldDecision {
                            action: self.env.clamp_action(action),
                            intervened: false,
                        }
                    } else if table_resolved {
                        ShieldDecision {
                            action: self.table_intervention_action(state),
                            intervened: true,
                        }
                    } else {
                        ShieldDecision {
                            action: self.intervention_action(state),
                            intervened: true,
                        }
                    }
                })
                .collect();
            #[cfg(debug_assertions)]
            for (i, ((state, action), decision)) in states
                .iter()
                .zip(proposed.iter())
                .zip(decisions.iter())
                .enumerate()
            {
                debug_assert_eq!(
                    decision,
                    &self.decide(state, action),
                    "batch lane {i} diverged from the scalar decide path"
                );
            }
            decisions
        })
    }

    /// Extracts the plain-data form of this shield (environment model plus
    /// every `(program, invariant)` pair) for artifact persistence.
    ///
    /// The environment's reward and steady-state closures are not captured;
    /// see [`PortableEnvironment`] — the shield's decision procedure never
    /// consults them.
    pub fn to_portable(&self) -> PortableShield {
        PortableShield {
            env: self.env.to_portable(),
            pieces: self
                .pieces
                .iter()
                .map(|p| PortableShieldPiece {
                    program: p.program().to_portable(),
                    invariant: p.invariant().to_portable(),
                })
                .collect(),
        }
    }

    /// Rebuilds a shield from its plain-data form.
    ///
    /// # Errors
    ///
    /// Returns a message when the stored pieces are empty or any piece's
    /// dimensions disagree with the environment.
    pub fn from_portable(portable: &PortableShield) -> Result<Shield, String> {
        let env = EnvironmentContext::from_portable(&portable.env)?;
        if portable.pieces.is_empty() {
            return Err("a shield needs at least one verified piece".to_string());
        }
        let mut pieces = Vec::with_capacity(portable.pieces.len());
        for piece in &portable.pieces {
            let program = PolicyProgram::from_portable(&piece.program)?;
            let invariant = BarrierCertificate::from_portable(&piece.invariant)?;
            if program.state_dim() != invariant.state_dim() {
                return Err(format!(
                    "piece program ranges over {} state variables but its invariant over {}",
                    program.state_dim(),
                    invariant.state_dim()
                ));
            }
            if invariant.state_dim() != env.state_dim() {
                return Err(format!(
                    "piece dimension {} disagrees with the environment dimension {}",
                    invariant.state_dim(),
                    env.state_dim()
                ));
            }
            pieces.push(ShieldPiece::new(program, invariant));
        }
        Ok(Shield::new(env, pieces))
    }

    /// Flattens the shield into the single deterministic program of
    /// Theorem 4.2: `if φ₁: P₁ else if φ₂: P₂ … else abort`.
    pub fn to_program(&self) -> PolicyProgram {
        let mut branches = Vec::with_capacity(self.pieces.len());
        for piece in &self.pieces {
            let actions = piece
                .program()
                .branches()
                .first()
                .expect("programs always have at least one branch")
                .actions()
                .to_vec();
            branches.push(GuardedPolicy::guarded(
                piece.invariant().polynomial().clone(),
                actions,
            ));
        }
        PolicyProgram::from_branches(branches)
    }
}

/// Plain-data form of one [`ShieldPiece`] used by artifact persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableShieldPiece {
    /// The verified deterministic program.
    pub program: PortableProgram,
    /// The inductive invariant proving it safe.
    pub invariant: PortableCertificate,
}

/// Plain-data form of a [`Shield`] used by artifact persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableShield {
    /// The environment model the shield predicts with.
    pub env: PortableEnvironment,
    /// Every verified `(program, invariant)` pair.
    pub pieces: Vec<PortableShieldPiece>,
}

/// A policy that runs a neural oracle under a shield, counting interventions.
///
/// The wrapper implements [`Policy`], so it can be dropped into any
/// environment rollout in place of the raw neural network.
///
/// # Counter semantics
///
/// The intervention/decision counters are `AtomicUsize`s so that concurrent
/// rollouts can share one wrapper.  `Clone` is implemented **explicitly**
/// (never derived — deriving `Clone` next to atomics silently picks one of
/// two reasonable semantics): a clone *snapshots* the counter values at
/// clone time and counts independently afterwards.  Call
/// [`ShieldedPolicy::reset_counters`] on the clone for a fresh meter.
#[derive(Debug)]
pub struct ShieldedPolicy<'a, P: Policy + ?Sized> {
    shield: &'a Shield,
    oracle: &'a P,
    interventions: AtomicUsize,
    decisions: AtomicUsize,
}

impl<P: Policy + ?Sized> Clone for ShieldedPolicy<'_, P> {
    /// Snapshot semantics: the clone starts from the counter values observed
    /// at clone time (see the type-level documentation).
    fn clone(&self) -> Self {
        ShieldedPolicy {
            shield: self.shield,
            oracle: self.oracle,
            interventions: AtomicUsize::new(self.interventions()),
            decisions: AtomicUsize::new(self.decisions()),
        }
    }
}

impl<'a, P: Policy + ?Sized> ShieldedPolicy<'a, P> {
    /// Wraps `oracle` with `shield`.
    pub fn new(shield: &'a Shield, oracle: &'a P) -> Self {
        ShieldedPolicy {
            shield,
            oracle,
            interventions: AtomicUsize::new(0),
            decisions: AtomicUsize::new(0),
        }
    }

    /// Number of times the shield overrode the oracle so far.
    pub fn interventions(&self) -> usize {
        self.interventions.load(Ordering::Relaxed)
    }

    /// Total number of decisions made so far.
    pub fn decisions(&self) -> usize {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Fraction of decisions that were interventions.
    pub fn intervention_rate(&self) -> f64 {
        let decisions = self.decisions();
        if decisions == 0 {
            0.0
        } else {
            self.interventions() as f64 / decisions as f64
        }
    }

    /// Resets the intervention counters.
    pub fn reset_counters(&self) {
        self.interventions.store(0, Ordering::Relaxed);
        self.decisions.store(0, Ordering::Relaxed);
    }
}

impl<P: Policy + ?Sized> Policy for ShieldedPolicy<'_, P> {
    fn action_dim(&self) -> usize {
        self.oracle.action_dim()
    }

    fn action(&self, state: &[f64]) -> Vec<f64> {
        let proposed = self.oracle.action(state);
        let decision = self.shield.decide(state, &proposed);
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if decision.intervened {
            self.interventions.fetch_add(1, Ordering::Relaxed);
        }
        decision.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{BoxRegion, ConstantPolicy, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;

    /// ẋ = a with safe |x| ≤ 1; invariant x² − 0.81 ≤ 0 (|x| ≤ 0.9) verified
    /// for the program a = −2x.
    fn toy_shield() -> Shield {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "toy",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        );
        let program = PolicyProgram::linear(&[vec![-2.0]], &[0.0]);
        let x = Polynomial::variable(0, 1);
        let invariant = BarrierCertificate::new(&(&x * &x) - &Polynomial::constant(0.81, 1));
        Shield::new(env, vec![ShieldPiece::new(program, invariant)])
    }

    #[test]
    fn shield_accessors() {
        let shield = toy_shield();
        assert_eq!(shield.num_pieces(), 1);
        assert_eq!(shield.pieces().len(), 1);
        assert!(shield.covers(&[0.5]));
        assert!(!shield.covers(&[0.95]));
        assert!(!shield.covers(&[1.5]));
        let program = shield.to_program();
        assert_eq!(program.num_branches(), 1);
        assert!(program.evaluate(&[0.5]).is_some());
        assert!(program.evaluate(&[0.95]).is_none());
    }

    #[test]
    fn shield_allows_safe_proposals_and_blocks_unsafe_ones() {
        let shield = toy_shield();
        // A small action keeps the next state inside the invariant: allowed.
        let keep = shield.decide(&[0.0], &[1.0]);
        assert!(!keep.intervened);
        assert_eq!(keep.action, vec![1.0]);
        // A huge action from near the boundary would leave the invariant:
        // the shield overrides with the verified program's action.
        let block = shield.decide(&[0.89], &[50.0]);
        assert!(block.intervened);
        assert!((block.action[0] - (-2.0 * 0.89)).abs() < 1e-12);
        // Even from an uncovered state the shield still produces an action.
        let fallback = shield.decide(&[0.95], &[50.0]);
        assert!(fallback.intervened);
        assert!((fallback.action[0] - (-2.0 * 0.95)).abs() < 1e-12);
    }

    #[test]
    fn decide_batch_matches_sequential_decides() {
        let shield = toy_shield();
        // A grid of states spanning covered, boundary, and uncovered
        // regions, with proposals spanning benign and adversarial actions:
        // 30 pairs, so the certificate sweep sees full lanes and a tail.
        let mut states = Vec::new();
        let mut proposed = Vec::new();
        for (i, &x) in [-0.95, -0.5, 0.0, 0.5, 0.89, 0.95].iter().enumerate() {
            for &a in &[-50.0, -1.0, 0.0, 1.0, 50.0] {
                states.push(vec![x + 0.001 * i as f64]);
                proposed.push(vec![a]);
            }
        }
        let batch = shield.decide_batch(&states, &proposed);
        assert_eq!(batch.len(), states.len());
        for ((state, action), decision) in states.iter().zip(proposed.iter()).zip(batch.iter()) {
            assert_eq!(decision, &shield.decide(state, action));
        }
        assert!(batch.iter().any(|d| d.intervened));
        assert!(batch.iter().any(|d| !d.intervened));
        // An empty batch is fine.
        assert_eq!(shield.decide_batch(&[], &[]), Vec::new());
    }

    #[test]
    fn decide_batch_handles_dimension_changes_across_calls() {
        // The per-thread batch scratch must rebuild when a differently
        // shaped shield uses it on the same thread.
        let shield_1d = toy_shield();
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![
                vrl_poly::Polynomial::variable(1, 3),
                vrl_poly::Polynomial::variable(2, 3),
            ],
        )
        .unwrap();
        let env = EnvironmentContext::new(
            "toy-2d",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.3, 0.3]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0, 1.0])),
        );
        let program = PolicyProgram::linear(&[vec![-2.0, -2.0]], &[0.0]);
        let x = Polynomial::variable(0, 2);
        let v = Polynomial::variable(1, 2);
        let invariant =
            BarrierCertificate::new(&(&(&x * &x) + &(&v * &v)) - &Polynomial::constant(0.81, 2));
        let shield_2d = Shield::new(env, vec![ShieldPiece::new(program, invariant)]);
        for _ in 0..2 {
            let d1 = shield_1d.decide_batch(&[vec![0.1]], &[vec![0.5]]);
            assert_eq!(d1[0], shield_1d.decide(&[0.1], &[0.5]));
            let d2 = shield_2d.decide_batch(&[vec![0.1, -0.2]], &[vec![0.5]]);
            assert_eq!(d2[0], shield_2d.decide(&[0.1, -0.2], &[0.5]));
        }
    }

    #[test]
    fn table_dispatch_is_bit_identical_to_the_exact_path() {
        let exact = toy_shield();
        let tabled = toy_shield()
            .with_table(&crate::TableConfig::uniform(64))
            .expect("the toy safe box grids cleanly");
        assert!(tabled.table().is_some());
        let mut states = Vec::new();
        let mut proposed = Vec::new();
        let mut x = -1.2;
        while x <= 1.2 {
            for &a in &[-50.0, -1.0, 0.0, 1.0, 50.0] {
                states.push(vec![x]);
                proposed.push(vec![a]);
            }
            x += 0.0173;
        }
        for (state, action) in states.iter().zip(proposed.iter()) {
            let fast = tabled.decide(state, action);
            assert_eq!(fast, exact.decide(state, action), "state {state:?}");
            assert_eq!(fast, tabled.decide_exact(state, action), "state {state:?}");
        }
        // The batched path partitions lanes through the same table.
        let batch = tabled.decide_batch(&states, &proposed);
        for ((state, action), decision) in states.iter().zip(proposed.iter()).zip(batch.iter()) {
            assert_eq!(decision, &exact.decide(state, action), "state {state:?}");
        }
        // Removing the table restores the plain shield.
        let stripped = tabled.without_table();
        assert!(stripped.table().is_none());
        assert_eq!(
            stripped.decide(&[0.1], &[1.0]),
            exact.decide(&[0.1], &[1.0])
        );
    }

    #[test]
    fn table_dispatch_counts_hits_and_fallbacks() {
        let tabled = toy_shield()
            .with_table(&crate::TableConfig::uniform(64))
            .unwrap();
        let hits_before = crate::obs::decide_table_hits().get();
        // Deep inside the invariant with a tiny action: the predicted
        // successor lands well away from the ±0.9 decision surface, in a
        // certified cell.
        let _ = tabled.decide(&[0.0], &[0.0]);
        assert!(crate::obs::decide_table_hits().get() > hits_before);
    }

    #[test]
    #[should_panic(expected = "one proposed action per state")]
    fn decide_batch_rejects_mismatched_lengths() {
        let shield = toy_shield();
        let _ = shield.decide_batch(&[vec![0.0]], &[]);
    }

    #[test]
    fn shielded_policy_counts_interventions_and_stays_safe() {
        let shield = toy_shield();
        // An adversarial "neural policy" that always pushes outward.
        let adversary = ConstantPolicy::new(vec![5.0]);
        let shielded = ShieldedPolicy::new(&shield, &adversary);
        let env = shield.env().clone();
        let mut rng = SmallRng::seed_from_u64(1);
        let trajectory = env.rollout(&shielded, &[0.0], 2000, &mut rng);
        assert!(
            !trajectory.violates(env.safety()),
            "the shield must keep the system safe"
        );
        assert!(shielded.interventions() > 0);
        assert_eq!(shielded.decisions(), 2000);
        assert!(shielded.intervention_rate() > 0.0 && shielded.intervention_rate() <= 1.0);
        shielded.reset_counters();
        assert_eq!(shielded.interventions(), 0);
        assert_eq!(shielded.decisions(), 0);
    }

    #[test]
    fn benign_oracle_is_never_interrupted() {
        let shield = toy_shield();
        let benign = vrl_dynamics::ClosurePolicy::new(1, |s: &[f64]| vec![-1.5 * s[0]]);
        let shielded = ShieldedPolicy::new(&shield, &benign);
        let env = shield.env().clone();
        let mut rng = SmallRng::seed_from_u64(2);
        let trajectory = env.rollout(&shielded, &[0.4], 2000, &mut rng);
        assert!(!trajectory.violates(env.safety()));
        assert_eq!(
            shielded.interventions(),
            0,
            "a well-behaved oracle needs no interventions"
        );
    }

    #[test]
    fn portable_round_trip_preserves_decisions() {
        let shield = toy_shield();
        let portable = shield.to_portable();
        let back = Shield::from_portable(&portable).expect("round trip succeeds");
        assert_eq!(back.num_pieces(), shield.num_pieces());
        for state in [[-0.95], [-0.5], [0.0], [0.5], [0.89], [0.95]] {
            for proposed in [[-50.0], [-1.0], [0.0], [1.0], [50.0]] {
                assert_eq!(
                    back.decide(&state, &proposed),
                    shield.decide(&state, &proposed)
                );
            }
            assert_eq!(back.covers(&state), shield.covers(&state));
        }
    }

    #[test]
    fn corrupted_portable_shields_are_rejected() {
        let shield = toy_shield();
        let mut empty = shield.to_portable();
        empty.pieces.clear();
        assert!(Shield::from_portable(&empty).is_err());
        let mut wrong_dim = shield.to_portable();
        wrong_dim.env.state_dim = 2;
        assert!(Shield::from_portable(&wrong_dim).is_err());
    }

    #[test]
    fn shielded_policy_clone_snapshots_counters() {
        let shield = toy_shield();
        let adversary = ConstantPolicy::new(vec![5.0]);
        let shielded = ShieldedPolicy::new(&shield, &adversary);
        let _ = shielded.action(&[0.89]);
        assert_eq!(shielded.decisions(), 1);
        let cloned = shielded.clone();
        // Snapshot semantics: the clone starts from the observed values…
        assert_eq!(cloned.decisions(), 1);
        assert_eq!(cloned.interventions(), shielded.interventions());
        // …and counts independently afterwards.
        let _ = cloned.action(&[0.89]);
        assert_eq!(cloned.decisions(), 2);
        assert_eq!(shielded.decisions(), 1);
        cloned.reset_counters();
        assert_eq!(cloned.decisions(), 0);
        assert_eq!(shielded.decisions(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one verified piece")]
    fn empty_shield_rejected() {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "toy",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        );
        let _ = Shield::new(env, vec![]);
    }
}
