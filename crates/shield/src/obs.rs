//! CEGIS and decision-table metrics: per-run counters, the
//! synthesis-latency histogram, and the decide-table traffic counters,
//! registered in the process-wide [`vrl_obs`] registry.
//!
//! Algorithm 2 already tracks its own attempts for [`crate::CegisReport`];
//! these counters mirror that bookkeeping (plus verify rejections and
//! terminal failures) into the registry so a serving process that
//! resynthesizes shields exposes its synthesis cost at `GET /metrics`.
//! The precomputed [`crate::DecisionTable`] adds three series: decide
//! lanes resolved by a certified cell, lanes routed through the exact
//! fallback, and the build-time cell-class census (labeled by class).
//! The loop's control flow and the synthesized shields are untouched —
//! instrumentation observes, never decides.

use std::sync::LazyLock;
use vrl_obs::{registry, Counter, CounterVec, Histogram};

macro_rules! cegis_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Lazily registered handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: LazyLock<&'static Counter> =
                LazyLock::new(|| registry().counter($metric, $help));
            *HANDLE
        }
    };
}

cegis_counter!(
    cegis_runs,
    "vrl_synth_cegis_runs_total",
    "Algorithm 2 shield-synthesis runs started."
);
cegis_counter!(
    cegis_attempts,
    "vrl_synth_cegis_attempts_total",
    "Synthesize/verify attempts across all CEGIS runs."
);
cegis_counter!(
    cegis_pieces,
    "vrl_synth_cegis_pieces_total",
    "Verified (program, invariant) pieces admitted into shields."
);
cegis_counter!(
    cegis_counterexamples,
    "vrl_synth_cegis_counterexamples_total",
    "Verification rejections that shrank the region around a counterexample."
);
cegis_counter!(
    cegis_failures,
    "vrl_synth_cegis_failures_total",
    "CEGIS runs that gave up with an uncovered initial state."
);

cegis_counter!(
    decide_table_hits,
    "vrl_shield_decide_table_hits_total",
    "Shield decisions resolved by a precomputed decision-table cell."
);
cegis_counter!(
    decide_table_fallbacks,
    "vrl_shield_decide_table_fallbacks_total",
    "Shield decisions routed through the exact path from a boundary cell."
);
cegis_counter!(
    decide_table_build_fallbacks,
    "vrl_shield_decide_table_build_fallbacks_total",
    "Decision-table builds that failed and fell back to the exact path."
);

/// Per-class census of decision-table cells classified at build time
/// (`class` is `covered`, `uncovered`, or `boundary`).
pub(crate) fn decide_table_cells(class: &str) -> &'static Counter {
    static HANDLE: LazyLock<&'static CounterVec> = LazyLock::new(|| {
        registry().counter_vec(
            "vrl_shield_decide_table_cells",
            "class",
            "Decision-table cells classified at build time, by certification class.",
        )
    });
    HANDLE.with(class)
}

/// Total decisions routed through a decision table so far (certified-cell
/// hits plus boundary-cell fallbacks) — a convenience for tests and serving
/// health checks that only need "is the table in the path at all?".
pub fn decide_table_traffic() -> u64 {
    decide_table_hits().get() + decide_table_fallbacks().get()
}

/// Total decision-table builds that failed and fell back to the exact
/// path ([`crate::Shield::with_table_or_fallback`]) — a convenience for
/// tests asserting graceful degradation on high-dimensional instances.
pub fn decide_table_build_fallback_count() -> u64 {
    decide_table_build_fallbacks().get()
}

/// Wall-clock duration of completed CEGIS runs (success or failure).
pub(crate) fn cegis_seconds() -> &'static Histogram {
    static HANDLE: LazyLock<&'static Histogram> = LazyLock::new(|| {
        registry().histogram(
            "vrl_synth_cegis_seconds",
            "Wall-clock duration of CEGIS shield-synthesis runs.",
        )
    });
    *HANDLE
}

/// Forces registration of every CEGIS metric so a scrape shows the full
/// series set (at zero) before any synthesis has run.
pub fn install_metrics() {
    let _ = cegis_runs();
    let _ = cegis_attempts();
    let _ = cegis_pieces();
    let _ = cegis_counterexamples();
    let _ = cegis_failures();
    let _ = cegis_seconds();
    let _ = decide_table_hits();
    let _ = decide_table_fallbacks();
    let _ = decide_table_build_fallbacks();
    for class in ["covered", "uncovered", "boundary"] {
        let _ = decide_table_cells(class);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_registers_all_series() {
        super::install_metrics();
        let text = vrl_obs::registry().render_prometheus();
        for series in [
            "vrl_synth_cegis_runs_total",
            "vrl_synth_cegis_attempts_total",
            "vrl_synth_cegis_pieces_total",
            "vrl_synth_cegis_counterexamples_total",
            "vrl_synth_cegis_failures_total",
            "vrl_synth_cegis_seconds",
            "vrl_shield_decide_table_hits_total",
            "vrl_shield_decide_table_fallbacks_total",
            "vrl_shield_decide_table_build_fallbacks_total",
            "vrl_shield_decide_table_cells{class=\"covered\"}",
            "vrl_shield_decide_table_cells{class=\"uncovered\"}",
            "vrl_shield_decide_table_cells{class=\"boundary\"}",
        ] {
            assert!(text.contains(series), "missing series {series}");
        }
    }
}
