//! CEGIS metrics: per-run counters and the synthesis-latency histogram,
//! registered in the process-wide [`vrl_obs`] registry.
//!
//! Algorithm 2 already tracks its own attempts for [`crate::CegisReport`];
//! these counters mirror that bookkeeping (plus verify rejections and
//! terminal failures) into the registry so a serving process that
//! resynthesizes shields exposes its synthesis cost at `GET /metrics`.
//! The loop's control flow and the synthesized shields are untouched —
//! instrumentation observes, never decides.

use std::sync::LazyLock;
use vrl_obs::{registry, Counter, Histogram};

macro_rules! cegis_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Lazily registered handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: LazyLock<&'static Counter> =
                LazyLock::new(|| registry().counter($metric, $help));
            *HANDLE
        }
    };
}

cegis_counter!(
    cegis_runs,
    "vrl_synth_cegis_runs_total",
    "Algorithm 2 shield-synthesis runs started."
);
cegis_counter!(
    cegis_attempts,
    "vrl_synth_cegis_attempts_total",
    "Synthesize/verify attempts across all CEGIS runs."
);
cegis_counter!(
    cegis_pieces,
    "vrl_synth_cegis_pieces_total",
    "Verified (program, invariant) pieces admitted into shields."
);
cegis_counter!(
    cegis_counterexamples,
    "vrl_synth_cegis_counterexamples_total",
    "Verification rejections that shrank the region around a counterexample."
);
cegis_counter!(
    cegis_failures,
    "vrl_synth_cegis_failures_total",
    "CEGIS runs that gave up with an uncovered initial state."
);

/// Wall-clock duration of completed CEGIS runs (success or failure).
pub(crate) fn cegis_seconds() -> &'static Histogram {
    static HANDLE: LazyLock<&'static Histogram> = LazyLock::new(|| {
        registry().histogram(
            "vrl_synth_cegis_seconds",
            "Wall-clock duration of CEGIS shield-synthesis runs.",
        )
    });
    *HANDLE
}

/// Forces registration of every CEGIS metric so a scrape shows the full
/// series set (at zero) before any synthesis has run.
pub fn install_metrics() {
    let _ = cegis_runs();
    let _ = cegis_attempts();
    let _ = cegis_pieces();
    let _ = cegis_counterexamples();
    let _ = cegis_failures();
    let _ = cegis_seconds();
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_registers_all_series() {
        super::install_metrics();
        let text = vrl_obs::registry().render_prometheus();
        for series in [
            "vrl_synth_cegis_runs_total",
            "vrl_synth_cegis_attempts_total",
            "vrl_synth_cegis_pieces_total",
            "vrl_synth_cegis_counterexamples_total",
            "vrl_synth_cegis_failures_total",
            "vrl_synth_cegis_seconds",
        ] {
            assert!(text.contains(series), "missing series {series}");
        }
    }
}
