//! Evaluation harness producing the measurements reported in Tables 1–3:
//! failures of the bare neural controller, interventions and overhead of the
//! shielded controller, and convergence performance of both the shielded
//! neural policy and the purely programmatic policy.

use crate::{Shield, ShieldedPolicy};
use rand::Rng;
use std::time::Instant;
use vrl_dynamics::{EnvironmentContext, Policy};

/// Measurements of running a benchmark with and without its shield.
#[derive(Debug, Clone, PartialEq)]
pub struct ShieldEvaluation {
    /// Benchmark / environment name.
    pub name: String,
    /// Number of simulated episodes.
    pub episodes: usize,
    /// Steps per episode.
    pub steps_per_episode: usize,
    /// Episodes in which the *unshielded* neural controller reached an unsafe
    /// state (the "Failures" column of Table 1).
    pub neural_failures: usize,
    /// Episodes in which the *shielded* controller reached an unsafe state
    /// (expected to be zero).
    pub shielded_failures: usize,
    /// Total number of shield interventions across all shielded episodes.
    pub interventions: usize,
    /// Total number of shielded decisions taken.
    pub decisions: usize,
    /// Number of pieces in the shield (program "Size" in Table 1).
    pub shield_pieces: usize,
    /// Relative wall-clock overhead of running shielded vs. unshielded, in
    /// percent (the "Overhead" column).
    pub overhead_percent: f64,
    /// Mean steps to reach and keep a steady state for the shielded neural
    /// policy (the "NN" performance column), over episodes that settled.
    pub shielded_steps_to_steady: Option<f64>,
    /// Mean steps to steady state for the purely programmatic policy (the
    /// "Program" performance column).
    pub program_steps_to_steady: Option<f64>,
}

impl ShieldEvaluation {
    /// Fraction of shielded decisions that were interventions.
    pub fn intervention_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.interventions as f64 / self.decisions as f64
        }
    }

    /// Formats the evaluation as one row in the style of Table 1.
    pub fn to_table_row(&self) -> String {
        format!(
            "{:<22} {:>8} {:>6} {:>10} {:>13} {:>10.2}% {:>9} {:>9}",
            self.name,
            self.neural_failures,
            self.shield_pieces,
            self.interventions,
            self.shielded_failures,
            self.overhead_percent,
            self.shielded_steps_to_steady
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            self.program_steps_to_steady
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
        )
    }
}

/// Runs `episodes` episodes of `steps` transitions each, three ways — the
/// bare oracle, the shielded oracle, and the programmatic policy alone — and
/// aggregates the Table 1 measurements.
pub fn evaluate_shielded_system<O, R>(
    env: &EnvironmentContext,
    oracle: &O,
    shield: &Shield,
    episodes: usize,
    steps: usize,
    rng: &mut R,
) -> ShieldEvaluation
where
    O: Policy + ?Sized,
    R: Rng + ?Sized,
{
    let mut neural_failures = 0usize;
    let mut shielded_failures = 0usize;
    let mut interventions = 0usize;
    let mut decisions = 0usize;
    let mut shielded_settle = Vec::new();
    let mut program_settle = Vec::new();
    let mut neural_time = 0.0f64;
    let mut shielded_time = 0.0f64;
    let program = shield.to_program();
    for _ in 0..episodes {
        let start_state = env.sample_initial(rng);
        // Bare neural controller.
        let t0 = Instant::now();
        let bare = env.rollout(oracle, &start_state, steps, rng);
        neural_time += t0.elapsed().as_secs_f64();
        if bare.violates(env.safety()) {
            neural_failures += 1;
        }
        // Shielded neural controller.
        let shielded_policy = ShieldedPolicy::new(shield, oracle);
        let t1 = Instant::now();
        let guarded = env.rollout(&shielded_policy, &start_state, steps, rng);
        shielded_time += t1.elapsed().as_secs_f64();
        if guarded.violates(env.safety()) {
            shielded_failures += 1;
        }
        interventions += shielded_policy.interventions();
        decisions += shielded_policy.decisions();
        if let Some(n) = guarded.steps_to_steady(|s| env.is_steady(s)) {
            shielded_settle.push(n as f64);
        }
        // Purely programmatic policy.
        let programmatic = env.rollout(&program, &start_state, steps, rng);
        if let Some(n) = programmatic.steps_to_steady(|s| env.is_steady(s)) {
            program_settle.push(n as f64);
        }
    }
    let overhead_percent = if neural_time > 0.0 {
        ((shielded_time - neural_time) / neural_time * 100.0).max(0.0)
    } else {
        0.0
    };
    ShieldEvaluation {
        name: env.name().to_string(),
        episodes,
        steps_per_episode: steps,
        neural_failures,
        shielded_failures,
        interventions,
        decisions,
        shield_pieces: shield.num_pieces(),
        overhead_percent,
        shielded_steps_to_steady: mean(&shielded_settle),
        program_steps_to_steady: mean(&program_settle),
    }
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShieldPiece;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{BoxRegion, ClosurePolicy, ConstantPolicy, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;
    use vrl_synth::PolicyProgram;
    use vrl_verify::BarrierCertificate;

    fn toy_shield() -> Shield {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "toy",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        )
        .with_steady(|s: &[f64]| s[0].abs() <= 0.05);
        let program = PolicyProgram::linear(&[vec![-2.0]], &[0.0]);
        let x = Polynomial::variable(0, 1);
        let invariant = BarrierCertificate::new(&(&x * &x) - &Polynomial::constant(0.81, 1));
        Shield::new(env, vec![ShieldPiece::new(program, invariant)])
    }

    #[test]
    fn well_behaved_oracle_has_no_failures_or_interventions() {
        let shield = toy_shield();
        let env = shield.env().clone();
        let oracle = ClosurePolicy::new(1, |s: &[f64]| vec![-1.8 * s[0]]);
        let mut rng = SmallRng::seed_from_u64(1);
        let eval = evaluate_shielded_system(&env, &oracle, &shield, 5, 800, &mut rng);
        assert_eq!(eval.neural_failures, 0);
        assert_eq!(eval.shielded_failures, 0);
        assert_eq!(eval.interventions, 0);
        assert_eq!(eval.intervention_rate(), 0.0);
        assert_eq!(eval.decisions, 5 * 800);
        assert!(eval.shielded_steps_to_steady.is_some());
        assert!(eval.program_steps_to_steady.is_some());
        assert!(eval.to_table_row().contains("toy"));
    }

    #[test]
    fn adversarial_oracle_fails_unshielded_but_not_shielded() {
        let shield = toy_shield();
        let env = shield.env().clone();
        let oracle = ConstantPolicy::new(vec![5.0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let eval = evaluate_shielded_system(&env, &oracle, &shield, 4, 1500, &mut rng);
        assert_eq!(
            eval.neural_failures, 4,
            "the runaway oracle must fail every episode"
        );
        assert_eq!(
            eval.shielded_failures, 0,
            "the shield must prevent every failure"
        );
        assert!(eval.interventions > 0);
        assert!(eval.intervention_rate() > 0.0);
        assert_eq!(eval.shield_pieces, 1);
        assert!(eval.overhead_percent >= 0.0);
    }
}
