//! Precomputed O(1) decision tables for the runtime shield.
//!
//! [`Shield::decide`](crate::Shield::decide) spends almost all of its time
//! evaluating barrier certificates at the predicted successor state.  For a
//! deployed shield that work is the *same question asked over and over*
//! across a bounded region — the safety specification's safe box — so it can
//! be answered once, at deploy time, for whole regions of state space:
//!
//! 1. Grid the safe box into axis-aligned cells ([`TableConfig::resolution`]
//!    per dimension, ragged resolutions allowed).
//! 2. Run the existing lane-batched interval kernels over every cell for the
//!    whole certificate family at once.
//! 3. Classify each cell: **covered** (every point of the cell is provably
//!    inside some invariant and outside every obstacle — proposals landing
//!    here are kept), **uncovered** (every point provably escapes all
//!    invariants or sits wholly inside an obstacle — proposals landing here
//!    are overridden), or **boundary** (the interval enclosure straddles a
//!    decision surface — these cells fall back to the exact compiled path).
//!
//! A table lookup is two float compares and one fix-up per dimension, so
//! table-resolved decisions skip every certificate evaluation at the
//! predicted state; the exact path remains the authority on boundary cells
//! and the table is **bit-identical** to it everywhere else.
//!
//! # Soundness margin
//!
//! The interval kernels do not perform directed rounding (see
//! `vrl_poly::Interval`); enclosure endpoints carry ordinary double-precision
//! rounding error.  Cell certification therefore demands a *margin*: a cell
//! counts as inside an invariant only when the enclosure's upper bound
//! clears zero by `1e-9 · (1 + |enclosure|)` — many orders of magnitude
//! wider than accumulated rounding error, exactly the slack argument the
//! branch-and-bound verifier itself relies on.  Enclosures inside the margin
//! band classify as boundary and keep the exact path in charge.  Debug
//! builds additionally assert every table-resolved decision against the
//! exact path, and `tests/decide_table_conformance.rs` pins bit-identity
//! across all fifteen paper benchmarks.
//!
//! The grid's outer boundaries are pinned to the safe box's exact bounds, so
//! a predicted state outside the grid is outside the safe box — uncovered by
//! definition, answered in O(1) without any certificate work.

use vrl_dynamics::{BoxRegion, EnvironmentContext};
use vrl_poly::{BatchBoxes, Interval, LANE_WIDTH};
use vrl_solver::with_query_cache;

use crate::ShieldPiece;

/// Sentinel in the per-cell piece array: no constant intervention piece.
const NO_PIECE: u16 = u16::MAX;

/// Relative margin separating a certified enclosure bound from zero.
///
/// Mirrors the slack reasoning of the branch-and-bound verifier: the
/// un-directed interval kernels carry ~1e-16 relative rounding error, so a
/// `1e-9 · (1 + |enclosure|)` gap can never be crossed by rounding alone.
const CERT_MARGIN: f64 = 1e-9;

/// Deploy-time configuration for a precomputed decision table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableConfig {
    /// Cells per dimension.  A single entry broadcasts to every state
    /// dimension; otherwise the length must equal the state dimension
    /// (ragged grids let callers spend resolution where the certificate
    /// geometry is tight).
    pub resolution: Vec<usize>,
    /// Hard cap on the total cell count; [`DecisionTable::build`] refuses
    /// (rather than silently truncating) when the grid would exceed it.
    pub max_cells: usize,
    /// Build budget: number of cells actually certified by interval
    /// evaluation.  Cells past the budget (in row-major order) classify as
    /// boundary — deterministically, so a budget-truncated table is still
    /// exact, just less effective.
    pub build_budget: usize,
}

impl TableConfig {
    /// A config gridding every dimension into `resolution` cells with the
    /// default memory cap and an unlimited build budget.
    pub fn uniform(resolution: usize) -> Self {
        TableConfig {
            resolution: vec![resolution],
            ..TableConfig::default()
        }
    }
}

impl Default for TableConfig {
    /// 16 cells per dimension, a 4-million-cell memory cap, no build budget.
    fn default() -> Self {
        TableConfig {
            resolution: vec![16],
            max_cells: 1 << 22,
            build_budget: usize::MAX,
        }
    }
}

/// Why a decision table could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The safe box is unbounded, NaN, or has zero width in `dim` — no
    /// finite grid can span it.
    InvalidDomain {
        /// The offending state dimension.
        dim: usize,
    },
    /// The config's resolution vector is neither one entry (broadcast) nor
    /// one entry per state dimension.
    ResolutionMismatch {
        /// The state dimension the shield ranges over.
        expected: usize,
        /// The number of resolution entries supplied.
        got: usize,
    },
    /// A dimension was assigned zero cells.
    ZeroResolution {
        /// The offending state dimension.
        dim: usize,
    },
    /// The grid would exceed [`TableConfig::max_cells`].
    TooManyCells {
        /// The requested cell count (saturating on overflow).
        cells: usize,
        /// The configured cap.
        max_cells: usize,
    },
    /// The shield has more pieces than the table's compact piece index can
    /// address.
    TooManyPieces {
        /// The number of pieces in the shield.
        pieces: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::InvalidDomain { dim } => write!(
                f,
                "safe box is unbounded or degenerate in dimension {dim}; \
                 a decision table needs a finite positive-width domain"
            ),
            TableError::ResolutionMismatch { expected, got } => write!(
                f,
                "resolution has {got} entries but the state space has \
                 {expected} dimensions (one entry broadcasts)"
            ),
            TableError::ZeroResolution { dim } => {
                write!(f, "dimension {dim} was assigned zero cells")
            }
            TableError::TooManyCells { cells, max_cells } => write!(
                f,
                "grid would hold {cells} cells, exceeding the configured \
                 cap of {max_cells}"
            ),
            TableError::TooManyPieces { pieces } => write!(
                f,
                "shield has {pieces} pieces, more than the table's compact \
                 piece index can address"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// How a cell was classified at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CellClass {
    /// Every point of the cell is provably covered: proposals predicted
    /// into this cell are kept.
    Covered = 0,
    /// Every point of the cell is provably uncovered: proposals predicted
    /// into this cell are overridden.
    Uncovered = 1,
    /// The enclosure straddles a decision surface (or the cell fell past
    /// the build budget): decisions fall back to the exact path.
    Boundary = 2,
}

/// Build-time census and footprint of a [`DecisionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Total cells in the grid.
    pub cells: usize,
    /// Cells classified [`CellClass::Covered`].
    pub covered: usize,
    /// Cells classified [`CellClass::Uncovered`].
    pub uncovered: usize,
    /// Cells classified [`CellClass::Boundary`].
    pub boundary: usize,
    /// Approximate resident size of the table's arrays in bytes.
    pub memory_bytes: usize,
}

impl TableStats {
    /// Fraction of cells that must fall back to the exact path.
    pub fn boundary_fraction(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.boundary as f64 / self.cells as f64
        }
    }
}

/// A precomputed, interval-certified decision table over the safe box.
///
/// Built by [`DecisionTable::build`] (or via
/// [`Shield::with_table`](crate::Shield::with_table)); queried through
/// [`DecisionTable::coverage`] for the predicted successor and
/// [`DecisionTable::intervention_piece`] for the current state.  Tables are
/// derived data: artifacts persist only the [`TableConfig`] and rebuild the
/// table on load, so a table can never go stale against its shield.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTable {
    lows: Vec<f64>,
    highs: Vec<f64>,
    resolution: Vec<usize>,
    strides: Vec<usize>,
    /// `boundaries[d]` has `resolution[d] + 1` monotone entries spanning
    /// exactly `[lows[d], highs[d]]`; cell `i` in dimension `d` is the
    /// closed interval `[boundaries[d][i], boundaries[d][i + 1]]`.
    boundaries: Vec<Vec<f64>>,
    /// Row-major cell classes ([`CellClass`] as `u8`).
    class: Vec<u8>,
    /// Row-major constant intervention piece per cell (`NO_PIECE` when the
    /// first containing piece is not constant across the cell).
    piece: Vec<u16>,
    stats: TableStats,
    config: TableConfig,
}

impl DecisionTable {
    /// Grids the environment's safe box and certifies every cell against
    /// the pieces' invariants with one lane-batched interval sweep per
    /// [`LANE_WIDTH`] cells.
    ///
    /// The whole build runs under a `shield.table_build` tracing span and
    /// reports its cell census to the `vrl_shield_decide_table_cells`
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] when the safe box cannot carry a finite
    /// grid, the resolution vector is malformed, or the grid would exceed
    /// [`TableConfig::max_cells`].
    pub fn build(
        env: &EnvironmentContext,
        pieces: &[ShieldPiece],
        config: &TableConfig,
    ) -> Result<DecisionTable, TableError> {
        let _span = vrl_obs::span("shield.table_build");
        let dim = env.state_dim();
        let safety = env.safety();
        let safe_box = safety.safe_box();
        if pieces.len() >= NO_PIECE as usize {
            return Err(TableError::TooManyPieces {
                pieces: pieces.len(),
            });
        }
        for d in 0..dim {
            let (lo, hi) = (safe_box.low(d), safe_box.high(d));
            if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                return Err(TableError::InvalidDomain { dim: d });
            }
        }
        let resolution: Vec<usize> = if config.resolution.len() == 1 {
            vec![config.resolution[0]; dim]
        } else if config.resolution.len() == dim {
            config.resolution.clone()
        } else {
            return Err(TableError::ResolutionMismatch {
                expected: dim,
                got: config.resolution.len(),
            });
        };
        if let Some(d) = resolution.iter().position(|&r| r == 0) {
            return Err(TableError::ZeroResolution { dim: d });
        }
        let cells = resolution
            .iter()
            .try_fold(1usize, |acc, &r| acc.checked_mul(r))
            .unwrap_or(usize::MAX);
        if cells > config.max_cells {
            return Err(TableError::TooManyCells {
                cells,
                max_cells: config.max_cells,
            });
        }
        // Row-major strides: the last dimension varies fastest.
        let mut strides = vec![1usize; dim];
        for d in (0..dim.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * resolution[d + 1];
        }
        let boundaries: Vec<Vec<f64>> = (0..dim)
            .map(|d| cell_boundaries(safe_box.low(d), safe_box.high(d), resolution[d]))
            .collect();
        // One compiled family for the whole certificate set, pulled through
        // the two-level query cache so redeploys and sibling server threads
        // reuse the compilation.
        let polys: Vec<&vrl_poly::Polynomial> =
            pieces.iter().map(|p| p.invariant().polynomial()).collect();
        let family = with_query_cache(|cache| cache.get_or_compile(&polys));

        let mut class = vec![CellClass::Boundary as u8; cells];
        let mut piece = vec![NO_PIECE; cells];
        let mut stats = TableStats {
            cells,
            ..TableStats::default()
        };
        let certified = cells.min(config.build_budget);
        stats.boundary += cells - certified;

        let mut boxes = BatchBoxes::with_capacity(dim, LANE_WIDTH);
        let mut enclosures: Vec<Interval> = Vec::new();
        let mut cell = vec![Interval::zero(); dim];
        let mut indices = vec![0usize; dim];
        let mut base = 0usize;
        while base < certified {
            let lanes = LANE_WIDTH.min(certified - base);
            boxes.clear();
            for lane in 0..lanes {
                cell_box(
                    &boundaries,
                    &strides,
                    &resolution,
                    base + lane,
                    &mut indices,
                );
                for d in 0..dim {
                    cell[d] =
                        Interval::new(boundaries[d][indices[d]], boundaries[d][indices[d] + 1]);
                }
                boxes.push(&cell);
            }
            family.evaluate_interval_batch(&boxes, &mut enclosures);
            for lane in 0..lanes {
                let idx = base + lane;
                cell_box(&boundaries, &strides, &resolution, idx, &mut indices);
                for d in 0..dim {
                    cell[d] =
                        Interval::new(boundaries[d][indices[d]], boundaries[d][indices[d] + 1]);
                }
                let enclosure_of = |j: usize| enclosures[j * lanes + lane];
                let (cls, intervention) =
                    classify_cell(&cell, pieces.len(), enclosure_of, safety.obstacles());
                class[idx] = cls as u8;
                piece[idx] = intervention.map_or(NO_PIECE, |j| j as u16);
                match cls {
                    CellClass::Covered => stats.covered += 1,
                    CellClass::Uncovered => stats.uncovered += 1,
                    CellClass::Boundary => stats.boundary += 1,
                }
            }
            base += lanes;
        }
        stats.memory_bytes = class.len() * std::mem::size_of::<u8>()
            + piece.len() * std::mem::size_of::<u16>()
            + boundaries
                .iter()
                .map(|b| b.len() * std::mem::size_of::<f64>())
                .sum::<usize>();
        crate::obs::decide_table_cells("covered").add(stats.covered as u64);
        crate::obs::decide_table_cells("uncovered").add(stats.uncovered as u64);
        crate::obs::decide_table_cells("boundary").add(stats.boundary as u64);
        Ok(DecisionTable {
            lows: safe_box.lows().to_vec(),
            highs: safe_box.highs().to_vec(),
            resolution,
            strides,
            boundaries,
            class,
            piece,
            stats,
            config: config.clone(),
        })
    }

    /// The build-time census and footprint.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The configuration the table was built from.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// O(1) coverage of `state` (a *predicted successor*): `Some(true)` /
    /// `Some(false)` when the state's cell is certified, `None` when the
    /// caller must fall back to the exact
    /// [`Shield::covers`](crate::Shield::covers) path.
    ///
    /// States outside the grid are outside the safe box, so coverage is
    /// `Some(false)` *exactly* — including NaN coordinates, which fail the
    /// range comparisons just as they fail `BoxRegion::contains`.
    pub fn coverage(&self, state: &[f64]) -> Option<bool> {
        debug_assert_eq!(state.len(), self.lows.len(), "state dimension mismatch");
        for (d, &x) in state.iter().enumerate() {
            if !(x >= self.lows[d] && x <= self.highs[d]) {
                return Some(false);
            }
        }
        match self.class[self.cell_index(state)] {
            c if c == CellClass::Covered as u8 => Some(true),
            c if c == CellClass::Uncovered as u8 => Some(false),
            _ => None,
        }
    }

    /// O(1) constant intervention piece for `state` (the *current* state):
    /// `Some(j)` when piece `j` is provably the first piece whose invariant
    /// contains every point of the state's cell, `None` when the caller must
    /// run the exact piece-selection scan.
    pub fn intervention_piece(&self, state: &[f64]) -> Option<usize> {
        debug_assert_eq!(state.len(), self.lows.len(), "state dimension mismatch");
        for (d, &x) in state.iter().enumerate() {
            if !(x >= self.lows[d] && x <= self.highs[d]) {
                return None;
            }
        }
        match self.piece[self.cell_index(state)] {
            NO_PIECE => None,
            j => Some(j as usize),
        }
    }

    /// The class of the cell holding `state`, or `None` outside the grid
    /// (introspection for tests and benches; the hot path uses
    /// [`DecisionTable::coverage`]).
    pub fn cell_class(&self, state: &[f64]) -> Option<CellClass> {
        for (d, &x) in state.iter().enumerate() {
            if !(x >= self.lows[d] && x <= self.highs[d]) {
                return None;
            }
        }
        Some(match self.class[self.cell_index(state)] {
            c if c == CellClass::Covered as u8 => CellClass::Covered,
            c if c == CellClass::Uncovered as u8 => CellClass::Uncovered,
            _ => CellClass::Boundary,
        })
    }

    /// Maps an in-grid state to its row-major cell index: an arithmetic
    /// candidate from the cell width, then a fix-up walk guaranteeing
    /// `boundaries[d][i] ≤ x ≤ boundaries[d][i + 1]` despite rounding in
    /// the division (points on a shared face may land in either adjacent
    /// cell; both cells certified the face, so either answer is exact).
    fn cell_index(&self, state: &[f64]) -> usize {
        let mut idx = 0usize;
        for (d, &x) in state.iter().enumerate() {
            let res = self.resolution[d];
            let b = &self.boundaries[d];
            let mut i =
                (((x - self.lows[d]) / (self.highs[d] - self.lows[d])) * res as f64) as usize;
            if i >= res {
                i = res - 1;
            }
            while i > 0 && x < b[i] {
                i -= 1;
            }
            while i + 1 < res && x > b[i + 1] {
                i += 1;
            }
            idx += i * self.strides[d];
        }
        idx
    }
}

/// The `resolution + 1` cell boundaries spanning `[lo, hi]`: evenly spaced
/// up to rounding, weakly monotone (correctly rounded `·` and `+` are
/// monotone in their arguments), clamped into the domain, with the end
/// boundaries pinned *exactly* to `lo` and `hi` so the grid's edge equals
/// the safe box's edge.
fn cell_boundaries(lo: f64, hi: f64, resolution: usize) -> Vec<f64> {
    let mut boundaries = Vec::with_capacity(resolution + 1);
    boundaries.push(lo);
    for i in 1..resolution {
        let t = i as f64 / resolution as f64;
        let b = (lo + (hi - lo) * t).clamp(lo, hi);
        boundaries.push(b.max(boundaries[i - 1]));
    }
    boundaries.push(hi);
    boundaries
}

/// Decodes row-major cell `idx` into per-dimension indices.
fn cell_box(
    boundaries: &[Vec<f64>],
    strides: &[usize],
    resolution: &[usize],
    idx: usize,
    indices: &mut [usize],
) {
    debug_assert_eq!(boundaries.len(), indices.len());
    for d in 0..strides.len() {
        indices[d] = (idx / strides[d]) % resolution[d];
    }
}

/// Classifies one cell from the family enclosures `enclosure_of(piece)`
/// evaluated over `cell`, plus the obstacle set.
///
/// Returns the class and the constant intervention piece (`Some(j)` iff
/// piece `j` provably contains the whole cell while every earlier piece
/// provably excludes it — exactly when the runtime's first-containing-piece
/// scan returns `j` for every point of the cell).
fn classify_cell(
    cell: &[Interval],
    num_pieces: usize,
    enclosure_of: impl Fn(usize) -> Interval,
    obstacles: &[BoxRegion],
) -> (CellClass, Option<usize>) {
    let mut any_contained = false;
    let mut all_excluded = true;
    let mut intervention = None;
    let mut prefix_excluded = true;
    for j in 0..num_pieces {
        let enclosure = enclosure_of(j);
        let margin = CERT_MARGIN * (1.0 + enclosure.abs_max());
        // NaN endpoints fail both comparisons: the cell stays boundary.
        let contained = enclosure.hi() <= -margin;
        let excluded = enclosure.lo() >= margin;
        any_contained |= contained;
        all_excluded &= excluded;
        if intervention.is_none() && prefix_excluded && contained {
            intervention = Some(j);
        }
        prefix_excluded &= excluded;
    }
    // Obstacle relations use exact endpoint comparisons (no arithmetic):
    // strictly disjoint means no cell point touches the (closed) obstacle;
    // wholly inside means every cell point is in the obstacle.
    let disjoint_from_all_obstacles = obstacles.iter().all(|obs| {
        cell.iter()
            .enumerate()
            .any(|(d, iv)| iv.hi() < obs.low(d) || iv.lo() > obs.high(d))
    });
    let inside_some_obstacle = obstacles.iter().any(|obs| {
        cell.iter()
            .enumerate()
            .all(|(d, iv)| obs.low(d) <= iv.lo() && iv.hi() <= obs.high(d))
    });
    let class = if any_contained && disjoint_from_all_obstacles {
        CellClass::Covered
    } else if all_excluded || inside_some_obstacle {
        CellClass::Uncovered
    } else {
        CellClass::Boundary
    };
    (class, intervention)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Shield, ShieldPiece};
    use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;
    use vrl_synth::PolicyProgram;
    use vrl_verify::BarrierCertificate;

    /// The 1-D toy shield from `shield.rs`: ẋ = a, safe |x| ≤ 1, invariant
    /// x² − 0.81 ≤ 0 verified for a = −2x.
    fn toy_shield() -> Shield {
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "toy",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        );
        let program = PolicyProgram::linear(&[vec![-2.0]], &[0.0]);
        let x = Polynomial::variable(0, 1);
        let invariant = BarrierCertificate::new(&(&x * &x) - &Polynomial::constant(0.81, 1));
        Shield::new(env, vec![ShieldPiece::new(program, invariant)])
    }

    #[test]
    fn build_classifies_the_toy_grid() {
        let shield = toy_shield();
        let config = TableConfig::uniform(64);
        let table = DecisionTable::build(shield.env(), shield.pieces(), &config).unwrap();
        let stats = table.stats();
        assert_eq!(stats.cells, 64);
        assert_eq!(
            stats.covered + stats.uncovered + stats.boundary,
            stats.cells
        );
        // |x| < 0.9 is covered, |x| > 0.9 uncovered; only the two cells
        // straddling ±0.9 can be boundary.
        assert!(stats.covered > 0, "{stats:?}");
        assert!(stats.uncovered > 0, "{stats:?}");
        assert!(stats.boundary <= 2, "{stats:?}");
        assert!(stats.memory_bytes > 0);
        assert!(stats.boundary_fraction() <= 2.0 / 64.0);
    }

    #[test]
    fn coverage_agrees_with_exact_covers_wherever_certified() {
        let shield = toy_shield();
        let table =
            DecisionTable::build(shield.env(), shield.pieces(), &TableConfig::uniform(64)).unwrap();
        let mut x = -1.3;
        while x <= 1.3 {
            if let Some(covered) = table.coverage(&[x]) {
                assert_eq!(covered, shield.covers(&[x]), "x = {x}");
            }
            x += 0.0137;
        }
        // Outside the grid is exactly uncovered, including NaN.
        assert_eq!(table.coverage(&[1.5]), Some(false));
        assert_eq!(table.coverage(&[-2.0]), Some(false));
        assert_eq!(table.coverage(&[f64::NAN]), Some(false));
    }

    #[test]
    fn grid_edges_and_cell_faces_resolve_consistently() {
        let shield = toy_shield();
        let table =
            DecisionTable::build(shield.env(), shield.pieces(), &TableConfig::uniform(7)).unwrap();
        // Exact grid corners and interior cell faces: the lookup may pick
        // either adjacent cell, but whichever it picks must agree with the
        // exact predicate when certified.
        for i in 0..=7usize {
            let x = -1.0 + 2.0 * i as f64 / 7.0;
            let x = x.clamp(-1.0, 1.0);
            if let Some(covered) = table.coverage(&[x]) {
                assert_eq!(covered, shield.covers(&[x]), "face x = {x}");
            }
        }
    }

    #[test]
    fn single_piece_interior_cells_pin_the_intervention_piece() {
        let shield = toy_shield();
        let table =
            DecisionTable::build(shield.env(), shield.pieces(), &TableConfig::uniform(64)).unwrap();
        // Deep inside the invariant the (only) piece is provably the first
        // containing piece.
        assert_eq!(table.intervention_piece(&[0.0]), Some(0));
        // Outside the grid there is no constant piece.
        assert_eq!(table.intervention_piece(&[1.5]), None);
    }

    #[test]
    fn build_budget_zero_yields_an_all_boundary_table() {
        let shield = toy_shield();
        let config = TableConfig {
            resolution: vec![16],
            build_budget: 0,
            ..TableConfig::default()
        };
        let table = DecisionTable::build(shield.env(), shield.pieces(), &config).unwrap();
        assert_eq!(table.stats().boundary, 16);
        assert_eq!(table.coverage(&[0.0]), None);
        // Outside the grid stays exact regardless of the budget.
        assert_eq!(table.coverage(&[1.5]), Some(false));
    }

    #[test]
    fn build_rejects_malformed_configs() {
        let shield = toy_shield();
        let too_big = TableConfig {
            resolution: vec![1000],
            max_cells: 100,
            ..TableConfig::default()
        };
        assert_eq!(
            DecisionTable::build(shield.env(), shield.pieces(), &too_big),
            Err(TableError::TooManyCells {
                cells: 1000,
                max_cells: 100
            })
        );
        let zero = TableConfig {
            resolution: vec![0],
            ..TableConfig::default()
        };
        assert_eq!(
            DecisionTable::build(shield.env(), shield.pieces(), &zero),
            Err(TableError::ZeroResolution { dim: 0 })
        );
        let ragged = TableConfig {
            resolution: vec![4, 4],
            ..TableConfig::default()
        };
        assert_eq!(
            DecisionTable::build(shield.env(), shield.pieces(), &ragged),
            Err(TableError::ResolutionMismatch {
                expected: 1,
                got: 2
            })
        );
        assert!(TableError::InvalidDomain { dim: 0 }
            .to_string()
            .contains("finite"));
    }

    #[test]
    fn obstacle_cells_classify_uncovered() {
        // Safe box [-1, 1] with an obstacle [-0.1, 0.1] punched out of the
        // invariant's interior: cells wholly inside the obstacle must be
        // uncovered even though the certificate contains them.
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        let env = EnvironmentContext::new(
            "toy-obstacle",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0]))
                .with_obstacle(BoxRegion::new(vec![-0.1], vec![0.1])),
        );
        let program = PolicyProgram::linear(&[vec![-2.0]], &[0.0]);
        let x = Polynomial::variable(0, 1);
        let invariant = BarrierCertificate::new(&(&x * &x) - &Polynomial::constant(0.81, 1));
        let pieces = vec![ShieldPiece::new(program, invariant)];
        let table = DecisionTable::build(&env, &pieces, &TableConfig::uniform(100)).unwrap();
        assert_eq!(table.coverage(&[0.0]), Some(false));
        assert_eq!(table.coverage(&[0.5]), Some(true));
        let mut x = -1.0;
        while x <= 1.0 {
            if let Some(covered) = table.coverage(&[x]) {
                assert_eq!(
                    covered,
                    env.safety().is_safe(&[x]) && x * x <= 0.81,
                    "x = {x}"
                );
            }
            x += 0.0031;
        }
    }
}
