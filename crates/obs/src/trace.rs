//! Hierarchical span tracing: RAII guards, per-thread buffers, a bounded
//! global ring, and JSON-lines / Chrome trace-event exporters.
//!
//! # Model
//!
//! A [`SpanGuard`] (from [`span`] or [`request_span`]) measures the
//! wall-clock interval between its creation and its drop on a monotonic
//! clock.  Guards nest naturally with scopes: each thread keeps a stack
//! of open span ids, so every record carries its parent id and the
//! full tree of a CEGIS run or an HTTP request can be reconstructed.
//!
//! # Cost model
//!
//! Closing a span appends one record to a *thread-local* buffer — no
//! locks.  The buffer drains into the process-wide bounded ring only
//! when the thread's outermost span closes (or the buffer hits its
//! flush threshold), so the mutex is touched once per request / CEGIS
//! iteration rather than once per span.  When the ring is full the
//! oldest records are dropped and counted in the
//! `vrl_obs_spans_dropped_total` counter — tracing never blocks and
//! never grows without bound.
//!
//! # Export
//!
//! [`drain_spans`] moves the ring's contents out; [`spans_to_json_lines`]
//! renders one JSON object per record, and [`spans_to_chrome_trace`]
//! renders the Chrome trace-event array format (complete `"ph":"X"`
//! events, microsecond timestamps) that Perfetto and `chrome://tracing`
//! open directly.  Rendering follows the same conventions as the wire
//! codec in `vrl-runtime`: u64s as exact decimal integers, strings with
//! minimal JSON escaping.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

use crate::enabled;
use crate::registry::registry;
use crate::Counter;

/// Maximum records the global ring retains; beyond it the oldest are
/// dropped (and counted).  8192 ≈ a few thousand requests or a long
/// CEGIS run at ~4 spans each, well under a megabyte.
pub const SPAN_RING_CAPACITY: usize = 8192;

/// Thread-local buffer length that forces an early drain to the global
/// ring even while spans are still open.
const FLUSH_THRESHOLD: usize = 256;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"cegis.verify"`.
    pub name: &'static str,
    /// Process-unique span id (never zero).
    pub id: u64,
    /// Id of the enclosing span, or zero for a root span.
    pub parent: u64,
    /// Process-unique index of the recording thread.
    pub thread: u64,
    /// Start offset from the process trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
    /// Request id attached via [`request_span`], if any.
    pub request_id: Option<Box<str>>,
}

/// Monotonic epoch all span timestamps are relative to (first use wins).
fn epoch() -> Instant {
    static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);
    *EPOCH
}

/// Whole seconds elapsed since the process trace epoch.
pub fn uptime_seconds() -> u64 {
    epoch().elapsed().as_secs()
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(1);

static RING: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());

/// Spans evicted from the full ring (also a registered metric).
fn dropped_counter() -> &'static Counter {
    static DROPPED: LazyLock<&'static Counter> = LazyLock::new(|| {
        registry().counter(
            "vrl_obs_spans_dropped_total",
            "Trace spans evicted from the bounded span ring.",
        )
    });
    *DROPPED
}

struct ThreadTrace {
    thread: u64,
    stack: Vec<u64>,
    buffer: Vec<SpanRecord>,
}

thread_local! {
    static THREAD_TRACE: RefCell<ThreadTrace> = RefCell::new(ThreadTrace {
        thread: NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buffer: Vec::new(),
    });
}

fn flush_buffer(buffer: &mut Vec<SpanRecord>) {
    if buffer.is_empty() {
        return;
    }
    let mut ring = RING.lock().expect("span ring poisoned");
    for record in buffer.drain(..) {
        if ring.len() >= SPAN_RING_CAPACITY {
            ring.pop_front();
            dropped_counter().inc();
        }
        ring.push_back(record);
    }
}

/// RAII guard measuring one span; the record is captured when the guard
/// drops.  Returned by [`span`] and [`request_span`].
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at creation: drop is a no-op.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Instant,
    start_ns: u64,
    request_id: Option<Box<str>>,
}

impl SpanGuard {
    /// The span's process-unique id (zero if tracing was disabled).
    pub fn id(&self) -> u64 {
        self.live.as_ref().map(|l| l.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        THREAD_TRACE.with(|cell| {
            let mut trace = cell.borrow_mut();
            // Pop our id; tolerate a foreign top (mismatched drop order
            // across scopes) by searching from the end.
            if let Some(pos) = trace.stack.iter().rposition(|&id| id == live.id) {
                trace.stack.remove(pos);
            }
            let record = SpanRecord {
                name: live.name,
                id: live.id,
                parent: live.parent,
                thread: trace.thread,
                start_ns: live.start_ns,
                dur_ns,
                request_id: live.request_id,
            };
            trace.buffer.push(record);
            if trace.stack.is_empty() || trace.buffer.len() >= FLUSH_THRESHOLD {
                flush_buffer(&mut trace.buffer);
            }
        });
    }
}

fn open_span(name: &'static str, request_id: Option<&str>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let start = Instant::now();
    let start_ns = start
        .duration_since(epoch())
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = THREAD_TRACE.with(|cell| {
        let mut trace = cell.borrow_mut();
        let parent = trace.stack.last().copied().unwrap_or(0);
        trace.stack.push(id);
        parent
    });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            id,
            parent,
            start,
            start_ns,
            request_id: request_id.map(Box::from),
        }),
    }
}

/// Opens a span named `name`, child of the thread's innermost open span.
///
/// # Examples
///
/// ```
/// vrl_obs::drain_spans();
/// {
///     let _outer = vrl_obs::span("doc.outer");
///     let _inner = vrl_obs::span("doc.inner");
/// }
/// let spans = vrl_obs::drain_spans();
/// let inner = spans.iter().find(|s| s.name == "doc.inner").unwrap();
/// let outer = spans.iter().find(|s| s.name == "doc.outer").unwrap();
/// assert_eq!(inner.parent, outer.id);
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// Opens a span tagged with a request id (see `X-Request-Id` handling in
/// `vrl-runtime`), child of the thread's innermost open span.
pub fn request_span(name: &'static str, request_id: &str) -> SpanGuard {
    open_span(name, Some(request_id))
}

/// Moves every record out of the global ring (oldest first).  Records
/// of spans still open, or closed but not yet flushed by their thread,
/// are not included.
pub fn drain_spans() -> Vec<SpanRecord> {
    // Flush this thread's closed-but-buffered spans first so a
    // single-threaded export sees everything it recorded.
    THREAD_TRACE.with(|cell| flush_buffer(&mut cell.borrow_mut().buffer));
    let mut ring = RING.lock().expect("span ring poisoned");
    ring.drain(..).collect()
}

/// Appends a minimally escaped JSON string literal (the same escaping
/// the `vrl-runtime` wire codec uses).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders records as JSON-lines: one object per span with exact-u64
/// `id` / `parent` / `thread` / `start_ns` / `dur_ns` fields.
pub fn spans_to_json_lines(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str("{\"name\":");
        push_json_string(&mut out, r.name);
        let _ = write!(
            out,
            ",\"id\":{},\"parent\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}",
            r.id, r.parent, r.thread, r.start_ns, r.dur_ns
        );
        if let Some(request_id) = &r.request_id {
            out.push_str(",\"request_id\":");
            push_json_string(&mut out, request_id);
        }
        out.push_str("}\n");
    }
    out
}

/// Renders records as a Chrome trace-event JSON array (complete events,
/// `"ph":"X"`), openable in Perfetto or `chrome://tracing`.  Timestamps
/// and durations are microseconds; span/parent ids and the request id
/// ride along under `"args"`.
pub fn spans_to_chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, r.name);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            r.thread,
            fmt_us(r.start_ns),
            fmt_us(r.dur_ns)
        );
        let _ = write!(
            out,
            ",\"args\":{{\"span_id\":{},\"parent_id\":{}",
            r.id, r.parent
        );
        if let Some(request_id) = &r.request_id {
            out.push_str(",\"request_id\":");
            push_json_string(&mut out, request_id);
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Formats nanoseconds as microseconds with exact thousandths (trace
/// viewers take fractional `ts`/`dur`), avoiding any f64 rounding.
fn fmt_us(ns: u64) -> String {
    if ns.is_multiple_of(1000) {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state (the ring); serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_parents() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = drain_spans();
        {
            let outer = span("test.outer");
            let outer_id = outer.id();
            {
                let inner = span("test.inner");
                assert_ne!(inner.id(), 0);
                assert_ne!(inner.id(), outer_id);
            }
            let sibling = span("test.sibling");
            drop(sibling);
        }
        let records = drain_spans();
        let outer = records.iter().find(|r| r.name == "test.outer").unwrap();
        let inner = records.iter().find(|r| r.name == "test.inner").unwrap();
        let sibling = records.iter().find(|r| r.name == "test.sibling").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        assert_eq!(inner.thread, outer.thread);
        // Children close before the parent and start no earlier.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn request_ids_ride_on_spans() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = drain_spans();
        drop(request_span("test.request", "req-42"));
        let records = drain_spans();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].request_id.as_deref(), Some("req-42"));
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = drain_spans();
        assert!(crate::enabled(), "collection is on by default");
        crate::set_enabled(false);
        assert!(!crate::enabled());
        let g = span("test.disabled");
        assert_eq!(g.id(), 0);
        drop(g);
        crate::set_enabled(true);
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = drain_spans();
        let before = dropped_counter().get();
        for _ in 0..(SPAN_RING_CAPACITY + 10) {
            drop(span("test.flood"));
        }
        let records = drain_spans();
        assert_eq!(records.len(), SPAN_RING_CAPACITY);
        assert!(dropped_counter().get() >= before + 10);
    }

    #[test]
    fn exporters_render_exact_integers() {
        let record = SpanRecord {
            name: "exp\"ort",
            id: u64::MAX,
            parent: 7,
            thread: 3,
            start_ns: 9_007_199_254_740_993, // 2^53 + 1: would corrupt via f64
            dur_ns: 1_500,
            request_id: Some(Box::from("r-1")),
        };
        let lines = spans_to_json_lines(std::slice::from_ref(&record));
        assert!(lines.contains("\"start_ns\":9007199254740993"));
        assert!(lines.contains(&format!("\"id\":{}", u64::MAX)));
        assert!(lines.contains("\"name\":\"exp\\\"ort\""));
        assert!(lines.ends_with("}\n"));
        let trace = spans_to_chrome_trace(&[record]);
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ts\":9007199254740.993"));
        assert!(trace.contains("\"dur\":1.5"));
        assert!(trace.contains("\"request_id\":\"r-1\""));
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        assert_eq!(fmt_us(0), "0");
        assert_eq!(fmt_us(1000), "1");
        assert_eq!(fmt_us(1500), "1.500");
        assert_eq!(fmt_us(1), "0.001");
        assert_eq!(fmt_us(999), "0.999");
    }
}
