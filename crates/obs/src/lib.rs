//! `vrl-obs` — process-wide metrics registry and hierarchical span
//! tracing for the `vrl` workspace.
//!
//! Std-only and dependency-free, like every crate in this workspace.
//! Two pillars:
//!
//! 1. **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`],
//!    [`CounterVec`]): named instruments on `Relaxed` atomics, handed
//!    out as `&'static` handles so hot paths pay one relaxed RMW per
//!    event.  [`Registry::render_prometheus`] produces the Prometheus
//!    text exposition format served by the `vrl-runtime` HTTP
//!    front-end at `GET /metrics`.
//! 2. **Tracing** ([`span`], [`request_span`], [`drain_spans`]): RAII
//!    span guards on a monotonic clock, buffered per thread and drained
//!    to a bounded ring; exportable as JSON-lines
//!    ([`spans_to_json_lines`]) or the Chrome trace-event format
//!    ([`spans_to_chrome_trace`]) for Perfetto.
//!
//! # Invariants
//!
//! Observability never touches numerics: instruments only *read* what
//! the instrumented code already computed, so decisions are bit
//! identical with the registry enabled or disabled (the conformance
//! sweeps in `vrl-bench` check this).  The [`set_enabled`] kill switch
//! exists to *measure* the overhead, not to restore correctness.
//!
//! # Quickstart
//!
//! ```
//! use vrl_obs::{registry, span};
//!
//! let decided = registry().counter("doc_decisions_total", "Decisions served.");
//! {
//!     let _span = span("doc.decide");
//!     decided.inc();
//! }
//! let text = registry().render_prometheus();
//! assert!(text.contains("doc_decisions_total 1"));
//! assert!(!vrl_obs::drain_spans().is_empty());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod metrics;
mod registry;
mod trace;

pub use metrics::{Counter, CounterVec, Gauge, Histogram, HistogramVec, HISTOGRAM_BUCKETS};
pub use registry::{registry, Registry};
pub use trace::{
    drain_spans, request_span, span, spans_to_chrome_trace, spans_to_json_lines, uptime_seconds,
    SpanGuard, SpanRecord, SPAN_RING_CAPACITY,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Returns whether observability collection is enabled (the default).
///
/// Metric handles keep working either way — the flag gates span
/// *collection* inside this crate and is checked by instrumented hot
/// paths (e.g. the `vrl-runtime` decide path) before recording, so the
/// `serve_throughput` bench can measure the enabled-vs-disabled
/// overhead.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns observability collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
