//! Metric instruments: counters, gauges, and log-bucket histograms.
//!
//! Every instrument is a plain struct of [`AtomicU64`] words updated with
//! `Relaxed` ordering — no locks, no allocation, no fences on the hot
//! path.  `Relaxed` is sufficient because metrics are *statistical*
//! reads: a scrape observes each word atomically but makes no cross-word
//! consistency claim (a histogram's `sum` may momentarily run ahead of
//! its `count` by one in-flight observation), which is exactly the
//! contract of every production metrics pipeline.
//!
//! Instruments are handed out as `&'static` references by the
//! [`Registry`](crate::Registry) so call sites can cache them in a
//! `LazyLock` and pay one relaxed RMW per event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Duration;

/// Number of finite latency buckets in a [`Histogram`]: powers of two
/// from 2 ns (`le = 2^1` ns) up to 2^40 ns ≈ 18 minutes.  Anything
/// slower lands in the implicit `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter.
///
/// # Examples
///
/// ```
/// let c = vrl_obs::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: an `f64` that can move in both directions.
///
/// Stored as the bit pattern of the float in an [`AtomicU64`]; [`add`]
/// uses a compare-exchange loop (gauges are not hot-path instruments).
///
/// [`add`]: Gauge::add
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (which may be negative) to the gauge.
    pub fn add(&self, v: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Subtracts `v` from the gauge.
    #[inline]
    pub fn sub(&self, v: f64) {
        self.add(-v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-log-bucket latency histogram over nanosecond observations.
///
/// Bucket `k` (0-based) counts observations with
/// `2^k < ns ≤ 2^(k+1)` (bucket 0 also absorbs `ns ≤ 1`), so the
/// Prometheus `le` upper bound of bucket `k` is exactly `2^(k+1)` ns and
/// the cumulative-bucket invariant holds without boundary slop.  The
/// bucket index is one `leading_zeros` instruction — cheap enough for
/// the decide hot path.
///
/// # Examples
///
/// ```
/// let h = vrl_obs::Histogram::new();
/// h.observe_ns(800);        // ~0.8 µs
/// h.observe_ns(1_500_000);  // 1.5 ms
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum_ns(), 1_500_800);
/// ```
#[derive(Debug)]
pub struct Histogram {
    /// `HISTOGRAM_BUCKETS` finite buckets plus one overflow (`+Inf`).
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Index of the bucket counting `ns`: the smallest `k` with
    /// `ns ≤ 2^(k+1)`, saturating into the overflow bucket.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        if ns <= 2 {
            0
        } else {
            ((63 - (ns - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS)
        }
    }

    /// Upper bound (inclusive, in nanoseconds) of finite bucket `k`.
    #[inline]
    pub fn bucket_upper_ns(k: usize) -> u64 {
        1u64 << (k + 1)
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed nanoseconds.
    #[inline]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (finite buckets then the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper-bound estimate (in nanoseconds) of quantile `q ∈ [0, 1]`:
    /// the upper edge of the first bucket whose cumulative count reaches
    /// `ceil(q · count)`.  Returns `None` when empty.  Log buckets make
    /// this exact to within a factor of two — a scrape-side sanity check
    /// for the windowed nearest-rank estimator in `vrl-runtime`, not a
    /// replacement for it.
    pub fn approx_quantile_ns(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (k, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(if k < HISTOGRAM_BUCKETS {
                    Self::bucket_upper_ns(k)
                } else {
                    u64::MAX
                });
            }
        }
        Some(u64::MAX)
    }
}

/// A family of [`Counter`]s keyed by one label value (e.g. HTTP status
/// code, shard name).
///
/// Label values are interned on first sight behind an [`RwLock`]; the
/// returned handle is `&'static`, so steady-state call sites take one
/// read lock (or none, if they cache the handle).
///
/// # Examples
///
/// ```
/// let family = vrl_obs::CounterVec::new("status");
/// family.with("200").inc();
/// family.with("200").inc();
/// family.with("503").inc();
/// assert_eq!(family.get("200"), 2);
/// assert_eq!(family.get("404"), 0);
/// ```
#[derive(Debug)]
pub struct CounterVec {
    label: &'static str,
    children: RwLock<Vec<(String, &'static Counter)>>,
}

impl CounterVec {
    /// Creates an empty family whose children carry the label `label`.
    pub fn new(label: &'static str) -> Self {
        CounterVec {
            label,
            children: RwLock::new(Vec::new()),
        }
    }

    /// The label name shared by every child.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Returns the child counter for `value`, creating it on first use.
    pub fn with(&self, value: &str) -> &'static Counter {
        {
            let children = self.children.read().expect("counter family poisoned");
            if let Some((_, counter)) = children.iter().find(|(v, _)| v == value) {
                return counter;
            }
        }
        let mut children = self.children.write().expect("counter family poisoned");
        if let Some((_, counter)) = children.iter().find(|(v, _)| v == value) {
            return counter;
        }
        let counter: &'static Counter = Box::leak(Box::new(Counter::new()));
        children.push((value.to_owned(), counter));
        counter
    }

    /// Current value of the child for `value` (zero if never touched).
    pub fn get(&self, value: &str) -> u64 {
        let children = self.children.read().expect("counter family poisoned");
        children
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, c)| c.get())
            .unwrap_or(0)
    }

    /// Snapshot of `(label value, count)` pairs sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let children = self.children.read().expect("counter family poisoned");
        let mut out: Vec<(String, u64)> =
            children.iter().map(|(v, c)| (v.clone(), c.get())).collect();
        out.sort();
        out
    }
}

/// A family of [`Histogram`]s keyed by one label value (e.g. codec
/// phase, endpoint).
///
/// Interning works exactly as in [`CounterVec`]: label values are
/// discovered on first sight behind an [`RwLock`] and the returned
/// handle is `&'static`, so hot call sites cache the child and pay one
/// relaxed observation per event.
///
/// # Examples
///
/// ```
/// let family = vrl_obs::HistogramVec::new("phase");
/// family.with("decode").observe_ns(800);
/// family.with("encode").observe_ns(1_500);
/// assert_eq!(family.with("decode").count(), 1);
/// ```
#[derive(Debug)]
pub struct HistogramVec {
    label: &'static str,
    children: RwLock<Vec<(String, &'static Histogram)>>,
}

impl HistogramVec {
    /// Creates an empty family whose children carry the label `label`.
    pub fn new(label: &'static str) -> Self {
        HistogramVec {
            label,
            children: RwLock::new(Vec::new()),
        }
    }

    /// The label name shared by every child.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Returns the child histogram for `value`, creating it on first use.
    pub fn with(&self, value: &str) -> &'static Histogram {
        {
            let children = self.children.read().expect("histogram family poisoned");
            if let Some((_, histogram)) = children.iter().find(|(v, _)| v == value) {
                return histogram;
            }
        }
        let mut children = self.children.write().expect("histogram family poisoned");
        if let Some((_, histogram)) = children.iter().find(|(v, _)| v == value) {
            return histogram;
        }
        let histogram: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        children.push((value.to_owned(), histogram));
        histogram
    }

    /// Snapshot of `(label value, child)` pairs sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, &'static Histogram)> {
        let children = self.children.read().expect("histogram family poisoned");
        let mut out: Vec<(String, &'static Histogram)> = children.clone();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket k covers (2^k, 2^(k+1)]; the upper edge is inclusive.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 0);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 1);
        assert_eq!(Histogram::bucket_index(5), 2);
        for k in 0..HISTOGRAM_BUCKETS {
            let upper = Histogram::bucket_upper_ns(k);
            assert_eq!(Histogram::bucket_index(upper), k, "le bound is inclusive");
            assert_eq!(Histogram::bucket_index(upper + 1), k + 1);
        }
        // Beyond the last finite bucket: overflow.
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn histogram_cumulative_invariant() {
        let h = Histogram::new();
        for ns in [1u64, 2, 3, 1000, 1 << 20, u64::MAX] {
            h.observe_ns(ns);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(h.count(), 6);
        // Cumulative counts are monotone by construction.
        let mut cumulative = 0;
        for c in counts {
            cumulative += c;
        }
        assert_eq!(cumulative, 6);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = Histogram::new();
        assert_eq!(h.approx_quantile_ns(0.5), None);
        for _ in 0..99 {
            h.observe_ns(100);
        }
        h.observe_ns(1_000_000);
        let p50 = h.approx_quantile_ns(0.5).unwrap();
        assert!(
            (100..=200).contains(&p50),
            "p50 within a factor of 2: {p50}"
        );
        let p995 = h.approx_quantile_ns(0.995).unwrap();
        assert!(p995 >= 1_000_000, "tail quantile sees the slow sample");
    }

    #[test]
    fn counter_vec_interns_children() {
        let family = CounterVec::new("status");
        let a = family.with("200");
        let b = family.with("200");
        assert!(std::ptr::eq(a, b));
        family.with("503").add(3);
        assert_eq!(
            family.snapshot(),
            vec![("200".to_owned(), 0), ("503".to_owned(), 3)]
        );
    }

    #[test]
    fn histogram_vec_interns_children() {
        let family = HistogramVec::new("phase");
        let a = family.with("decode");
        let b = family.with("decode");
        assert!(std::ptr::eq(a, b));
        family.with("encode").observe_ns(1_000);
        family.with("decode").observe_ns(10);
        let snapshot = family.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].0, "decode");
        assert_eq!(snapshot[0].1.count(), 1);
        assert_eq!(snapshot[1].1.sum_ns(), 1_000);
    }
}
