//! The process-wide metric registry and its Prometheus text renderer.
//!
//! Instruments are registered once by name and handed out as `&'static`
//! references (backed by `Box::leak`), so a call site can hold the
//! handle in a `LazyLock` and pay a single relaxed atomic RMW per event
//! with no registry involvement.  Registration takes a mutex; it happens
//! a handful of times per process, never on a hot path.
//!
//! [`Registry::render_prometheus`] produces the Prometheus text
//! exposition format (version 0.0.4): `# HELP` / `# TYPE` headers
//! followed by one sample line per series, with histogram buckets as
//! cumulative `_bucket{le="…"}` series plus `_sum` / `_count`.

use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, CounterVec, Gauge, Histogram, HistogramVec, HISTOGRAM_BUCKETS};

/// One registered instrument (see [`Registry`]).
enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    CounterVec(&'static CounterVec),
    HistogramVec(&'static HistogramVec),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) | Instrument::CounterVec(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) | Instrument::HistogramVec(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named collection of metric instruments.
///
/// Normally used through the process-wide instance returned by
/// [`registry`]; independent instances exist only for tests.
/// Registration is idempotent: asking for an existing name of the same
/// kind returns the original handle, and asking for an existing name of
/// a *different* kind panics (a programming error, not a runtime
/// condition).
///
/// # Examples
///
/// ```
/// let reg = vrl_obs::Registry::new();
/// let hits = reg.counter("demo_hits_total", "Demo counter.");
/// hits.add(3);
/// assert!(reg.render_prometheus().contains("demo_hits_total 3"));
/// ```
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// Asserts `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).  All names are compiled into this
/// workspace, so a violation is a bug worth failing loudly on.
fn assert_valid_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        .unwrap_or(false);
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        reuse: impl Fn(&Instrument) -> Option<&'static T>,
        fresh: impl FnOnce() -> (&'static T, Instrument),
    ) -> &'static T {
        assert_valid_name(name);
        let mut entries = self.entries.lock().expect("metric registry poisoned");
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return reuse(&entry.instrument).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    entry.instrument.kind()
                )
            });
        }
        let (handle, instrument) = fresh();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            instrument,
        });
        handle
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> &'static Counter {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::Counter(c) => Some(*c),
                _ => None,
            },
            || {
                let c: &'static Counter = Box::leak(Box::new(Counter::new()));
                (c, Instrument::Counter(c))
            },
        )
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> &'static Gauge {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::Gauge(g) => Some(*g),
                _ => None,
            },
            || {
                let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
                (g, Instrument::Gauge(g))
            },
        )
    }

    /// Registers (or retrieves) the nanosecond latency histogram `name`
    /// (rendered in seconds, per Prometheus base-unit convention).
    pub fn histogram(&self, name: &str, help: &str) -> &'static Histogram {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::Histogram(h) => Some(*h),
                _ => None,
            },
            || {
                let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
                (h, Instrument::Histogram(h))
            },
        )
    }

    /// Registers (or retrieves) the labeled counter family `name` whose
    /// children carry the label `label`.
    pub fn counter_vec(&self, name: &str, label: &'static str, help: &str) -> &'static CounterVec {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::CounterVec(v) => Some(*v),
                _ => None,
            },
            || {
                let v: &'static CounterVec = Box::leak(Box::new(CounterVec::new(label)));
                (v, Instrument::CounterVec(v))
            },
        )
    }

    /// Registers (or retrieves) the labeled histogram family `name` whose
    /// children carry the label `label`.
    pub fn histogram_vec(
        &self,
        name: &str,
        label: &'static str,
        help: &str,
    ) -> &'static HistogramVec {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::HistogramVec(v) => Some(*v),
                _ => None,
            },
            || {
                let v: &'static HistogramVec = Box::leak(Box::new(HistogramVec::new(label)));
                (v, Instrument::HistogramVec(v))
            },
        )
    }

    /// Number of registered metric families.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("metric registry poisoned").len()
    }

    /// Returns true when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every registered family in the Prometheus text exposition
    /// format, families sorted by name for a stable scrape.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metric registry poisoned");
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| entries[a].name.cmp(&entries[b].name));
        let mut out = String::new();
        for idx in order {
            let entry = &entries[idx];
            let name = &entry.name;
            let _ = writeln!(out, "# HELP {} {}", name, escape_help(&entry.help));
            let _ = writeln!(out, "# TYPE {} {}", name, entry.instrument.kind());
            match &entry.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", name, c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", name, fmt_f64(g.get()));
                }
                Instrument::CounterVec(v) => {
                    for (value, count) in v.snapshot() {
                        let _ = writeln!(
                            out,
                            "{}{{{}=\"{}\"}} {}",
                            name,
                            v.label(),
                            escape_label_value(&value),
                            count
                        );
                    }
                }
                Instrument::Histogram(h) => render_histogram(&mut out, name, "", h),
                Instrument::HistogramVec(v) => {
                    for (value, h) in v.snapshot() {
                        let prefix = format!("{}=\"{}\",", v.label(), escape_label_value(&value));
                        render_histogram(&mut out, name, &prefix, h);
                    }
                }
            }
        }
        out
    }
}

/// Renders one histogram as cumulative `_bucket{…le="…"}` series plus
/// `_sum` / `_count`, with `label_prefix` (either empty or a
/// `name="value",` fragment) spliced ahead of the `le` label so plain
/// histograms and labeled-family children share one code path.
fn render_histogram(out: &mut String, name: &str, label_prefix: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (k, count) in counts.iter().take(HISTOGRAM_BUCKETS).enumerate() {
        cumulative += count;
        let le = Histogram::bucket_upper_ns(k) as f64 / 1e9;
        let _ = writeln!(
            out,
            "{}_bucket{{{}le=\"{}\"}} {}",
            name,
            label_prefix,
            fmt_f64(le),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{{{}le=\"+Inf\"}} {}",
        name,
        label_prefix,
        h.count()
    );
    if label_prefix.is_empty() {
        let _ = writeln!(out, "{}_sum {}", name, fmt_f64(h.sum_ns() as f64 / 1e9));
        let _ = writeln!(out, "{}_count {}", name, h.count());
    } else {
        let labels = label_prefix.trim_end_matches(',');
        let _ = writeln!(
            out,
            "{}_sum{{{}}} {}",
            name,
            labels,
            fmt_f64(h.sum_ns() as f64 / 1e9)
        );
        let _ = writeln!(out, "{}_count{{{}}} {}", name, labels, h.count());
    }
}

/// Renders an `f64` sample value: Rust's shortest round-trip `Display`
/// form, with the Prometheus spellings for non-finite values.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Escapes a `# HELP` line body (`\` and newline, per the format spec).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"`, and newline, per the format spec).
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// The process-wide registry every subsystem registers into and
/// `GET /metrics` scrapes from.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("test_total", "A test counter.");
        let b = reg.counter("test_total", "different help is ignored");
        assert!(std::ptr::eq(a, b));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("test_total", "counter");
        let _ = reg.gauge("test_total", "now a gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_rejected() {
        let _ = Registry::new().counter("bad-name", "dashes are not allowed");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("zz_total", "Last alphabetically.").add(7);
        reg.gauge("aa_level", "First alphabetically.").set(1.5);
        let family = reg.counter_vec("mid_total", "status", "Labeled.");
        family.with("200").add(2);
        family.with("he\"llo\\x").inc();
        let text = reg.render_prometheus();
        // Families sorted by name; HELP/TYPE precede samples.
        let aa = text.find("# HELP aa_level").unwrap();
        let mid = text.find("# HELP mid_total").unwrap();
        let zz = text.find("# HELP zz_total").unwrap();
        assert!(aa < mid && mid < zz);
        assert!(text.contains("# TYPE aa_level gauge\naa_level 1.5\n"));
        assert!(text.contains("# TYPE zz_total counter\nzz_total 7\n"));
        assert!(text.contains("mid_total{status=\"200\"} 2\n"));
        assert!(text.contains("mid_total{status=\"he\\\"llo\\\\x\"} 1\n"));
    }

    #[test]
    fn histogram_rendering_is_cumulative_with_inf() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "Latency.");
        h.observe_ns(3); // bucket 1 (le 4 ns)
        h.observe_ns(3);
        h.observe_ns(1_000); // bucket 9 (le 1024 ns)
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        // le values are in seconds; cumulative counts are monotone.
        assert!(text.contains("lat_seconds_bucket{le=\"0.000000004\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.000001024\"} 3\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
        assert!(text.contains("lat_seconds_sum 0.000001006\n"));
    }

    #[test]
    fn histogram_vec_rendering_labels_every_series() {
        let reg = Registry::new();
        let family = reg.histogram_vec("codec_seconds", "phase", "Codec phase latency.");
        family.with("decode").observe_ns(3);
        family.with("encode").observe_ns(1_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE codec_seconds histogram"));
        assert!(text.contains("codec_seconds_bucket{phase=\"decode\",le=\"0.000000004\"} 1\n"));
        assert!(text.contains("codec_seconds_bucket{phase=\"decode\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("codec_seconds_count{phase=\"decode\"} 1\n"));
        assert!(text.contains("codec_seconds_sum{phase=\"encode\"} 0.000001\n"));
        assert!(text.contains("codec_seconds_bucket{phase=\"encode\",le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
    }
}
