//! Experience replay buffer for off-policy deep RL.

use rand::Rng;

/// A single transition `(s, a, r, s', done)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action taken.
    pub action: Vec<f64>,
    /// Reward received.
    pub reward: f64,
    /// Resulting state.
    pub next_state: Vec<f64>,
    /// True when the episode terminated at `next_state`.
    pub done: bool,
}

/// A fixed-capacity ring buffer of transitions with uniform random sampling.
///
/// # Examples
///
/// ```
/// use vrl_rl::{ReplayBuffer, Transition};
///
/// let mut buffer = ReplayBuffer::new(100);
/// buffer.push(Transition {
///     state: vec![0.0], action: vec![1.0], reward: -1.0,
///     next_state: vec![0.01], done: false,
/// });
/// assert_eq!(buffer.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    storage: Vec<Transition>,
    next_index: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        ReplayBuffer {
            capacity,
            storage: Vec::with_capacity(capacity.min(4096)),
            next_index: 0,
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Returns true when no transition is stored.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Adds a transition, evicting the oldest one when full.
    pub fn push(&mut self, transition: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(transition);
        } else {
            self.storage[self.next_index] = transition;
        }
        self.next_index = (self.next_index + 1) % self.capacity;
    }

    /// Samples `count` transitions uniformly at random (with replacement).
    ///
    /// Returns an empty vector when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<&Transition> {
        if self.storage.is_empty() {
            return Vec::new();
        }
        (0..count)
            .map(|_| &self.storage[rng.gen_range(0..self.storage.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn transition(tag: f64) -> Transition {
        Transition {
            state: vec![tag],
            action: vec![0.0],
            reward: tag,
            next_state: vec![tag + 1.0],
            done: false,
        }
    }

    #[test]
    fn push_and_eviction_respect_capacity() {
        let mut buffer = ReplayBuffer::new(3);
        assert!(buffer.is_empty());
        for i in 0..5 {
            buffer.push(transition(i as f64));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.capacity(), 3);
        // The oldest entries (0 and 1) were evicted.
        let rewards: Vec<f64> = buffer.storage.iter().map(|t| t.reward).collect();
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sampling_returns_requested_count_from_nonempty_buffer() {
        let mut buffer = ReplayBuffer::new(10);
        for i in 0..4 {
            buffer.push(transition(i as f64));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let batch = buffer.sample(16, &mut rng);
        assert_eq!(batch.len(), 16);
        assert!(batch.iter().all(|t| t.reward >= 0.0 && t.reward < 4.0));
        let empty = ReplayBuffer::new(5);
        assert!(empty.sample(3, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
