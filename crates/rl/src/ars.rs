//! Augmented Random Search (ARS) policy training.
//!
//! The paper trains its neural oracles with deep policy-gradient methods and
//! notes that simple random search (Mania et al., 2018) is a competitive
//! alternative; the same derivative-free update also powers the program
//! synthesis procedure of Algorithm 1.  ARS perturbs the flat parameter
//! vector of a [`ParametricPolicy`] along random directions, evaluates
//! rollout returns at `θ ± ν·δ`, and moves `θ` along the best directions.

use crate::{evaluate_policy, ParametricPolicy};
use rand::Rng;
use vrl_dynamics::EnvironmentContext;

/// Samples a standard normal value via the Box–Muller transform, avoiding an
/// extra dependency on `rand_distr`.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Configuration of the ARS trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct ArsConfig {
    /// Number of parameter updates to perform.
    pub iterations: usize,
    /// Number of random perturbation directions per update.
    pub directions: usize,
    /// Number of best directions used in the update (`b ≤ directions`).
    pub top_directions: usize,
    /// Step size `α`.
    pub step_size: f64,
    /// Exploration noise `ν` applied to the parameters.
    pub noise: f64,
    /// Episodes used to estimate the return of each perturbed policy.
    pub rollouts_per_evaluation: usize,
    /// Episode length used during training.
    pub horizon: usize,
}

impl Default for ArsConfig {
    fn default() -> Self {
        ArsConfig {
            iterations: 60,
            directions: 8,
            top_directions: 4,
            step_size: 0.05,
            noise: 0.05,
            rollouts_per_evaluation: 2,
            horizon: 400,
        }
    }
}

impl ArsConfig {
    /// A deliberately tiny budget for unit tests and smoke runs.
    pub fn smoke_test() -> Self {
        ArsConfig {
            iterations: 10,
            directions: 4,
            top_directions: 2,
            step_size: 0.1,
            noise: 0.1,
            rollouts_per_evaluation: 1,
            horizon: 200,
        }
    }
}

/// Progress record of one ARS iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArsIteration {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Mean return of the unperturbed policy after the update.
    pub mean_return: f64,
}

/// Result of an ARS training run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArsReport {
    /// Per-iteration progress.
    pub history: Vec<ArsIteration>,
    /// Mean return of the final policy.
    pub final_return: f64,
}

/// Trains `policy` in place on `env` with Augmented Random Search.
///
/// Returns a report with the learning curve; the trained parameters are left
/// in `policy`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no directions, or
/// `top_directions` exceeding `directions`).
pub fn train_ars<P, R>(
    env: &EnvironmentContext,
    policy: &mut P,
    config: &ArsConfig,
    rng: &mut R,
) -> ArsReport
where
    P: ParametricPolicy,
    R: Rng + ?Sized,
{
    assert!(
        config.directions > 0,
        "at least one perturbation direction is required"
    );
    assert!(
        config.top_directions > 0 && config.top_directions <= config.directions,
        "top_directions must lie in [1, directions]"
    );
    let dim = policy.num_parameters();
    let mut theta = policy.parameters();
    let mut history = Vec::with_capacity(config.iterations);
    for iteration in 0..config.iterations {
        let mut evaluations: Vec<(f64, f64, Vec<f64>)> = Vec::with_capacity(config.directions);
        for _ in 0..config.directions {
            let delta: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
            let plus: Vec<f64> = theta
                .iter()
                .zip(delta.iter())
                .map(|(t, d)| t + config.noise * d)
                .collect();
            let minus: Vec<f64> = theta
                .iter()
                .zip(delta.iter())
                .map(|(t, d)| t - config.noise * d)
                .collect();
            policy.set_parameters(&plus);
            let reward_plus = evaluate_policy(
                env,
                &*policy,
                config.rollouts_per_evaluation,
                config.horizon,
                rng,
            )
            .mean_return;
            policy.set_parameters(&minus);
            let reward_minus = evaluate_policy(
                env,
                &*policy,
                config.rollouts_per_evaluation,
                config.horizon,
                rng,
            )
            .mean_return;
            evaluations.push((reward_plus, reward_minus, delta));
        }
        // Keep the directions with the best max(r+, r−).
        evaluations.sort_by(|a, b| {
            let ka = a.0.max(a.1);
            let kb = b.0.max(b.1);
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        evaluations.truncate(config.top_directions);
        let used_rewards: Vec<f64> = evaluations.iter().flat_map(|(p, m, _)| [*p, *m]).collect();
        let reward_std = standard_deviation(&used_rewards).max(1e-6);
        let scale = config.step_size / (config.top_directions as f64 * reward_std);
        for (reward_plus, reward_minus, delta) in &evaluations {
            for (t, d) in theta.iter_mut().zip(delta.iter()) {
                *t += scale * (reward_plus - reward_minus) * d;
            }
        }
        policy.set_parameters(&theta);
        let mean_return = evaluate_policy(
            env,
            &*policy,
            config.rollouts_per_evaluation,
            config.horizon,
            rng,
        )
        .mean_return;
        history.push(ArsIteration {
            iteration,
            mean_return,
        });
    }
    policy.set_parameters(&theta);
    let final_return = evaluate_policy(env, &*policy, 3, config.horizon, rng).mean_return;
    ArsReport {
        history,
        final_return,
    }
}

fn standard_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let variance =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    variance.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearParametricPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;

    fn double_integrator_env() -> EnvironmentContext {
        let dynamics = PolyDynamics::new(
            2,
            1,
            vec![Polynomial::variable(1, 3), Polynomial::variable(2, 3)],
        )
        .unwrap();
        EnvironmentContext::new(
            "double-integrator",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.4, 0.4]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0, 2.0])),
        )
        .with_action_bounds(vec![-5.0], vec![5.0])
    }

    #[test]
    fn ars_improves_a_linear_policy_on_the_double_integrator() {
        let env = double_integrator_env();
        let mut policy = LinearParametricPolicy::new(2, 1, 5.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let before = evaluate_policy(&env, &policy, 4, 400, &mut rng).mean_return;
        let config = ArsConfig {
            iterations: 30,
            directions: 6,
            top_directions: 3,
            step_size: 0.3,
            noise: 0.3,
            rollouts_per_evaluation: 2,
            horizon: 300,
        };
        let report = train_ars(&env, &mut policy, &config, &mut rng);
        let after = evaluate_policy(&env, &policy, 4, 400, &mut rng).mean_return;
        assert_eq!(report.history.len(), config.iterations);
        assert!(
            after > before,
            "ARS should improve the return (before {before}, after {after})"
        );
    }

    #[test]
    fn smoke_config_is_small() {
        let c = ArsConfig::smoke_test();
        assert!(c.iterations <= 20);
        assert!(c.top_directions <= c.directions);
        assert!(ArsConfig::default().iterations >= c.iterations);
    }

    #[test]
    #[should_panic(expected = "top_directions")]
    fn invalid_top_directions_panics() {
        let env = double_integrator_env();
        let mut policy = LinearParametricPolicy::new(2, 1, 5.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let config = ArsConfig {
            top_directions: 10,
            directions: 2,
            ..ArsConfig::smoke_test()
        };
        let _ = train_ars(&env, &mut policy, &config, &mut rng);
    }

    #[test]
    fn standard_deviation_helper() {
        assert_eq!(standard_deviation(&[]), 0.0);
        assert_eq!(standard_deviation(&[2.0, 2.0]), 0.0);
        assert!((standard_deviation(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
