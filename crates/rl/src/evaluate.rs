//! Policy evaluation utilities shared by trainers and the benchmark harness.

use rand::Rng;
use vrl_dynamics::{EnvironmentContext, Policy};

/// Summary statistics of evaluating a policy over several episodes.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalStats {
    /// Number of episodes evaluated.
    pub episodes: usize,
    /// Mean (undiscounted) return per episode.
    pub mean_return: f64,
    /// Number of episodes in which an unsafe state was reached.
    pub failures: usize,
    /// Mean number of steps to reach (and remain in) a steady state, over the
    /// episodes that settled.
    pub mean_steps_to_steady: Option<f64>,
    /// Number of episodes that settled into a steady state.
    pub settled_episodes: usize,
}

impl EvalStats {
    /// Failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.failures as f64 / self.episodes as f64
        }
    }
}

/// Evaluates `policy` in `env` for `episodes` episodes of at most `steps`
/// transitions each, starting from random initial states.
pub fn evaluate_policy<P, R>(
    env: &EnvironmentContext,
    policy: &P,
    episodes: usize,
    steps: usize,
    rng: &mut R,
) -> EvalStats
where
    P: Policy + ?Sized,
    R: Rng + ?Sized,
{
    let mut total_return = 0.0;
    let mut failures = 0;
    let mut settled = 0;
    let mut settle_steps = 0usize;
    for _ in 0..episodes {
        let start = env.sample_initial(rng);
        let trajectory = env.rollout(policy, &start, steps, rng);
        total_return += trajectory.total_reward();
        if trajectory.violates(env.safety()) {
            failures += 1;
        }
        if let Some(n) = trajectory.steps_to_steady(|s| env.is_steady(s)) {
            settled += 1;
            settle_steps += n;
        }
    }
    EvalStats {
        episodes,
        mean_return: if episodes == 0 {
            0.0
        } else {
            total_return / episodes as f64
        },
        failures,
        mean_steps_to_steady: if settled > 0 {
            Some(settle_steps as f64 / settled as f64)
        } else {
            None
        },
        settled_episodes: settled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{BoxRegion, ClosurePolicy, ConstantPolicy, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;

    fn toy_env() -> EnvironmentContext {
        // ẋ = a
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        EnvironmentContext::new(
            "toy",
            dynamics,
            0.01,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[1.0])),
        )
    }

    #[test]
    fn stabilizing_policy_has_no_failures_and_settles() {
        let env = toy_env();
        let policy = ClosurePolicy::new(1, |s: &[f64]| vec![-2.0 * s[0]]);
        let mut rng = SmallRng::seed_from_u64(1);
        let stats = evaluate_policy(&env, &policy, 10, 600, &mut rng);
        assert_eq!(stats.episodes, 10);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.failure_rate(), 0.0);
        assert_eq!(stats.settled_episodes, 10);
        assert!(stats.mean_steps_to_steady.unwrap() > 0.0);
        assert!(stats.mean_return < 0.0);
    }

    #[test]
    fn runaway_policy_registers_failures() {
        let env = toy_env();
        let policy = ConstantPolicy::new(vec![5.0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let stats = evaluate_policy(&env, &policy, 5, 500, &mut rng);
        assert_eq!(stats.failures, 5);
        assert!((stats.failure_rate() - 1.0).abs() < 1e-12);
        assert_eq!(stats.settled_episodes, 0);
        assert!(stats.mean_steps_to_steady.is_none());
    }

    #[test]
    fn zero_episode_evaluation_is_well_defined() {
        let env = toy_env();
        let policy = ConstantPolicy::zeros(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let stats = evaluate_policy(&env, &policy, 0, 100, &mut rng);
        assert_eq!(stats.mean_return, 0.0);
        assert_eq!(stats.failure_rate(), 0.0);
    }
}
