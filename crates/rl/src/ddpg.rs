//! Deep Deterministic Policy Gradient (DDPG) training.
//!
//! DDPG (Lillicrap et al., 2016) is the "deep policy gradient algorithm [28]"
//! the paper uses to train its neural controllers: an off-policy actor-critic
//! method for continuous action spaces with target networks and experience
//! replay.  The actor produced here is a [`NeuralPolicy`] that the rest of
//! the pipeline treats as the black-box oracle.

use crate::ars::standard_normal;
use crate::{NeuralPolicy, ReplayBuffer, Transition};
use rand::Rng;
use vrl_dynamics::{EnvironmentContext, Policy};
use vrl_nn::{Activation, Adam, Mlp};

/// Configuration of the DDPG trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct DdpgConfig {
    /// Number of training episodes.
    pub episodes: usize,
    /// Maximum steps per episode.
    pub steps_per_episode: usize,
    /// Hidden-layer sizes of the actor and critic networks.
    pub hidden: Vec<usize>,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Soft target-update rate τ.
    pub tau: f64,
    /// Actor learning rate.
    pub actor_learning_rate: f64,
    /// Critic learning rate.
    pub critic_learning_rate: f64,
    /// Standard deviation of the Gaussian exploration noise (as a fraction of
    /// the action scale).
    pub exploration_noise: f64,
    /// Environment steps to collect before learning starts.
    pub warmup_steps: usize,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            episodes: 50,
            steps_per_episode: 400,
            hidden: vec![64, 64],
            buffer_capacity: 100_000,
            batch_size: 64,
            gamma: 0.99,
            tau: 0.005,
            actor_learning_rate: 1e-3,
            critic_learning_rate: 1e-3,
            exploration_noise: 0.1,
            warmup_steps: 500,
        }
    }
}

impl DdpgConfig {
    /// A deliberately tiny budget for unit tests and smoke runs.
    pub fn smoke_test() -> Self {
        DdpgConfig {
            episodes: 4,
            steps_per_episode: 60,
            hidden: vec![16, 16],
            buffer_capacity: 5_000,
            batch_size: 16,
            warmup_steps: 64,
            ..DdpgConfig::default()
        }
    }
}

/// Result of a DDPG training run.
#[derive(Debug, Clone, PartialEq)]
pub struct DdpgReport {
    /// Per-episode undiscounted returns observed during training.
    pub episode_returns: Vec<f64>,
    /// Total environment steps taken.
    pub total_steps: usize,
}

/// A DDPG agent: actor/critic networks plus their targets and optimizers.
#[derive(Debug, Clone)]
pub struct DdpgAgent {
    actor: NeuralPolicy,
    critic: Mlp,
    target_actor: NeuralPolicy,
    target_critic: Mlp,
    actor_optimizer: Adam,
    critic_optimizer: Adam,
    config: DdpgConfig,
    action_scale: f64,
}

impl DdpgAgent {
    /// Creates a new agent for the given environment.
    pub fn new<R: Rng + ?Sized>(env: &EnvironmentContext, config: DdpgConfig, rng: &mut R) -> Self {
        let n = env.state_dim();
        let m = env.action_dim();
        let action_scale = env
            .action_high()
            .iter()
            .map(|x| x.abs())
            .fold(0.0f64, f64::max)
            .clamp(1.0, 1e6);
        let actor = NeuralPolicy::new(n, m, &config.hidden, action_scale, rng);
        let mut critic_sizes = vec![n + m];
        critic_sizes.extend_from_slice(&config.hidden);
        critic_sizes.push(1);
        let critic = Mlp::new(&critic_sizes, Activation::Relu, Activation::Identity, rng);
        let actor_optimizer =
            Adam::new(actor.network().num_parameters(), config.actor_learning_rate);
        let critic_optimizer = Adam::new(critic.num_parameters(), config.critic_learning_rate);
        DdpgAgent {
            target_actor: actor.clone(),
            target_critic: critic.clone(),
            actor,
            critic,
            actor_optimizer,
            critic_optimizer,
            config,
            action_scale,
        }
    }

    /// The current actor policy.
    pub fn actor(&self) -> &NeuralPolicy {
        &self.actor
    }

    /// Consumes the agent and returns the trained actor.
    pub fn into_actor(self) -> NeuralPolicy {
        self.actor
    }

    /// Critic estimate `Q(s, a)`.
    pub fn q_value(&self, state: &[f64], action: &[f64]) -> f64 {
        let mut input = state.to_vec();
        input.extend_from_slice(action);
        self.critic.forward(&input)[0]
    }

    fn learn_step<R: Rng + ?Sized>(&mut self, buffer: &ReplayBuffer, rng: &mut R) {
        if buffer.len() < self.config.batch_size {
            return;
        }
        let batch = buffer.sample(self.config.batch_size, rng);
        let batch_size = batch.len() as f64;
        // --- Critic update: minimize (Q(s,a) − y)² with y = r + γ(1−done)Q'(s', μ'(s')). ---
        let mut critic_grad_flat = vec![0.0; self.critic.num_parameters()];
        for transition in &batch {
            let target_action = self.target_actor.action(&transition.next_state);
            let mut target_input = transition.next_state.clone();
            target_input.extend_from_slice(&target_action);
            let target_q = self.target_critic.forward(&target_input)[0];
            let y = transition.reward
                + if transition.done {
                    0.0
                } else {
                    self.config.gamma * target_q
                };
            let mut input = transition.state.clone();
            input.extend_from_slice(&transition.action);
            let cache = self.critic.forward_cached(&input);
            let q = cache.output()[0];
            let (grads, _) = self.critic.backward(&cache, &[(q - y) / batch_size]);
            let flat = self.critic.flatten_gradients(&grads);
            for (g, f) in critic_grad_flat.iter_mut().zip(flat.iter()) {
                *g += f;
            }
        }
        let mut critic_params = self.critic.parameters();
        self.critic_optimizer
            .step(&mut critic_params, &critic_grad_flat);
        self.critic.set_parameters(&critic_params);
        // --- Actor update: ascend ∇_θ Q(s, μ_θ(s)). ---
        let mut actor_grad_flat = vec![0.0; self.actor.network().num_parameters()];
        for transition in &batch {
            let actor_cache = self.actor.network().forward_cached(&transition.state);
            let raw_action: Vec<f64> = actor_cache.output().to_vec();
            let action: Vec<f64> = raw_action.iter().map(|x| x * self.action_scale).collect();
            let mut input = transition.state.clone();
            input.extend_from_slice(&action);
            let critic_cache = self.critic.forward_cached(&input);
            // dQ/d(input); the action part is the tail of the input gradient.
            let (_, input_grad) = self.critic.backward(&critic_cache, &[1.0]);
            let action_grad = &input_grad[transition.state.len()..];
            // Chain rule through the action scaling; negate to ascend.
            let output_grad: Vec<f64> = action_grad
                .iter()
                .map(|g| -g * self.action_scale / batch_size)
                .collect();
            let (actor_grads, _) = self.actor.network().backward(&actor_cache, &output_grad);
            let flat = self.actor.network().flatten_gradients(&actor_grads);
            for (g, f) in actor_grad_flat.iter_mut().zip(flat.iter()) {
                *g += f;
            }
        }
        let mut actor_params = self.actor.network().parameters();
        self.actor_optimizer
            .step(&mut actor_params, &actor_grad_flat);
        self.actor.network_mut().set_parameters(&actor_params);
        // --- Soft target updates. ---
        self.target_critic
            .soft_update_from(&self.critic, self.config.tau);
        let tau = self.config.tau;
        let actor_snapshot = self.actor.network().clone();
        self.target_actor
            .network_mut()
            .soft_update_from(&actor_snapshot, tau);
    }
}

/// Trains a DDPG agent on `env` and returns the agent plus a training report.
pub fn train_ddpg<R: Rng + ?Sized>(
    env: &EnvironmentContext,
    config: DdpgConfig,
    rng: &mut R,
) -> (DdpgAgent, DdpgReport) {
    let mut agent = DdpgAgent::new(env, config.clone(), rng);
    let mut buffer = ReplayBuffer::new(config.buffer_capacity);
    let mut episode_returns = Vec::with_capacity(config.episodes);
    let mut total_steps = 0usize;
    for _ in 0..config.episodes {
        let mut state = env.sample_initial(rng);
        let mut episode_return = 0.0;
        for _ in 0..config.steps_per_episode {
            let mut action = agent.actor.action(&state);
            for a in action.iter_mut() {
                *a += agent.action_scale * config.exploration_noise * standard_normal(rng);
            }
            let action = env.clamp_action(&action);
            let reward = env.reward(&state, &action);
            let next_state = env.step(&state, &action, rng);
            let done = env.is_unsafe(&next_state) || next_state.iter().any(|x| !x.is_finite());
            buffer.push(Transition {
                state: state.clone(),
                action: action.clone(),
                reward,
                next_state: next_state.clone(),
                done,
            });
            episode_return += reward;
            total_steps += 1;
            if total_steps >= config.warmup_steps {
                agent.learn_step(&buffer, rng);
            }
            if done {
                break;
            }
            state = next_state;
        }
        episode_returns.push(episode_return);
    }
    (
        agent,
        DdpgReport {
            episode_returns,
            total_steps,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vrl_dynamics::{BoxRegion, PolyDynamics, SafetySpec};
    use vrl_poly::Polynomial;

    fn toy_env() -> EnvironmentContext {
        // ẋ = a, regulate to the origin.
        let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
        EnvironmentContext::new(
            "toy",
            dynamics,
            0.05,
            BoxRegion::symmetric(&[0.5]),
            SafetySpec::inside(BoxRegion::symmetric(&[2.0])),
        )
        .with_action_bounds(vec![-1.0], vec![1.0])
    }

    #[test]
    fn agent_construction_and_q_values() {
        let env = toy_env();
        let mut rng = SmallRng::seed_from_u64(5);
        let agent = DdpgAgent::new(&env, DdpgConfig::smoke_test(), &mut rng);
        assert_eq!(agent.actor().action_dim(), 1);
        let q = agent.q_value(&[0.3], &[0.1]);
        assert!(q.is_finite());
    }

    #[test]
    fn training_runs_and_collects_returns() {
        let env = toy_env();
        let mut rng = SmallRng::seed_from_u64(6);
        let (agent, report) = train_ddpg(&env, DdpgConfig::smoke_test(), &mut rng);
        assert_eq!(report.episode_returns.len(), 4);
        assert!(report.total_steps > 0);
        let action = agent.actor().action(&[0.2]);
        assert!(action[0].abs() <= 1.0 + 1e-9);
        let actor = agent.into_actor();
        assert_eq!(actor.action_dim(), 1);
    }

    #[test]
    fn learning_moves_the_critic_towards_targets() {
        // Push a fixed transition repeatedly; the critic should move towards
        // the (deterministic) bootstrap target rather than diverge.
        let env = toy_env();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut agent = DdpgAgent::new(&env, DdpgConfig::smoke_test(), &mut rng);
        let mut buffer = ReplayBuffer::new(128);
        for _ in 0..64 {
            buffer.push(Transition {
                state: vec![0.5],
                action: vec![-0.5],
                reward: -0.25,
                next_state: vec![0.45],
                done: false,
            });
        }
        let before = agent.q_value(&[0.5], &[-0.5]);
        for _ in 0..100 {
            agent.learn_step(&buffer, &mut rng);
        }
        let after = agent.q_value(&[0.5], &[-0.5]);
        assert!(after.is_finite());
        assert_ne!(before, after, "learning must update the critic");
    }
}
