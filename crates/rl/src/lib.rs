//! Reinforcement-learning substrate: neural policies and the trainers that
//! produce the black-box oracles consumed by the synthesis pipeline.
//!
//! Two trainers are provided:
//!
//! * [`train_ddpg`] — Deep Deterministic Policy Gradient, the "deep policy
//!   gradient algorithm" the paper uses to train its neural controllers;
//! * [`train_ars`] — Augmented Random Search, the derivative-free alternative
//!   the paper cites (Mania et al., 2018); fast and robust on the
//!   low-dimensional control benchmarks and therefore the default for tests
//!   and the scaled-down benchmark harness.
//!
//! Both produce policies implementing [`vrl_dynamics::Policy`], so the rest
//! of the pipeline is agnostic to how the oracle was trained.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use vrl_dynamics::{BoxRegion, EnvironmentContext, PolyDynamics, SafetySpec};
//! use vrl_poly::Polynomial;
//! use vrl_rl::{evaluate_policy, train_ars, ArsConfig, LinearParametricPolicy};
//!
//! let dynamics = PolyDynamics::new(1, 1, vec![Polynomial::variable(1, 2)]).unwrap();
//! let env = EnvironmentContext::new(
//!     "toy", dynamics, 0.01,
//!     BoxRegion::symmetric(&[0.5]),
//!     SafetySpec::inside(BoxRegion::symmetric(&[2.0])),
//! );
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut policy = LinearParametricPolicy::new(1, 1, 2.0);
//! train_ars(&env, &mut policy, &ArsConfig::smoke_test(), &mut rng);
//! let stats = evaluate_policy(&env, &policy, 3, 100, &mut rng);
//! assert_eq!(stats.episodes, 3);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod ars;
mod ddpg;
mod evaluate;
mod policy;
mod replay;

pub use ars::{train_ars, ArsConfig, ArsIteration, ArsReport};
pub use ddpg::{train_ddpg, DdpgAgent, DdpgConfig, DdpgReport};
pub use evaluate::{evaluate_policy, EvalStats};
pub use policy::{LinearParametricPolicy, NeuralPolicy, ParametricPolicy, PortableNeuralPolicy};
pub use replay::{ReplayBuffer, Transition};
