//! Neural control policies.

use rand::Rng;
use vrl_dynamics::Policy;
use vrl_nn::{Activation, Mlp, MlpScratch, PortableMlp};

/// A policy whose behaviour is determined by a flat parameter vector.
///
/// Both gradient-free training (ARS) and the synthesis procedure's random
/// search operate directly on this representation.
pub trait ParametricPolicy: Policy {
    /// Returns the current parameters as a flat vector.
    fn parameters(&self) -> Vec<f64>;

    /// Replaces the parameters.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the vector has the wrong length.
    fn set_parameters(&mut self, params: &[f64]);

    /// Number of parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().len()
    }
}

/// A neural control policy `π_w : Rⁿ → Rᵐ`: an [`Mlp`] with a `tanh` output
/// squashed to the environment's action range.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use vrl_dynamics::Policy;
/// use vrl_rl::NeuralPolicy;
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let policy = NeuralPolicy::new(2, 1, &[64, 64], 15.0, &mut rng);
/// let action = policy.action(&[0.1, -0.2]);
/// assert_eq!(action.len(), 1);
/// assert!(action[0].abs() <= 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralPolicy {
    network: Mlp,
    action_scale: f64,
}

impl NeuralPolicy {
    /// Creates a randomly initialized neural policy.
    ///
    /// `hidden` gives the hidden-layer sizes (e.g. `[240, 200]`, the network
    /// size used for most Table 1 benchmarks); actions are squashed into
    /// `[-action_scale, action_scale]`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `action_scale` is not positive.
    pub fn new<R: Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        hidden: &[usize],
        action_scale: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            state_dim > 0 && action_dim > 0,
            "dimensions must be positive"
        );
        assert!(action_scale > 0.0, "action scale must be positive");
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(state_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(action_dim);
        NeuralPolicy {
            network: Mlp::new(&sizes, Activation::Tanh, Activation::Tanh, rng),
            action_scale,
        }
    }

    /// Wraps an existing network.
    ///
    /// # Panics
    ///
    /// Panics if `action_scale` is not positive.
    pub fn from_network(network: Mlp, action_scale: f64) -> Self {
        assert!(action_scale > 0.0, "action scale must be positive");
        NeuralPolicy {
            network,
            action_scale,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.network
    }

    /// Mutable access to the underlying network (used by DDPG updates).
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.network
    }

    /// The action magnitude bound.
    pub fn action_scale(&self) -> f64 {
        self.action_scale
    }

    /// State dimension the policy expects.
    pub fn state_dim(&self) -> usize {
        self.network.input_dim()
    }

    /// Computes the action through caller-provided scratch buffers, writing
    /// it into `out`: the serving hot path in `vrl-runtime` uses this with
    /// one scratch per worker thread so steady-state decisions never
    /// allocate in the oracle forward pass.
    ///
    /// Produces exactly the values of [`Policy::action`].
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.state_dim()`.
    pub fn action_into(&self, state: &[f64], scratch: &mut MlpScratch, out: &mut Vec<f64>) {
        let output = self.network.forward_into(state, scratch);
        out.clear();
        out.extend(output.iter().map(|x| x * self.action_scale));
    }

    /// Computes the proposed actions for a whole batch of states through
    /// one shared scratch, writing one action vector per state into `out`
    /// (whose buffers are recycled across calls).
    ///
    /// Proposal `i` is **bit-identical** to [`Policy::action`]`(states[i])`:
    /// the batch runs [`Mlp::forward_batch_into`], whose row-blocked lane
    /// sweeps amortize the weight-matrix memory traffic of the oracle's
    /// forward pass — the dominant cost of a serving decision — without
    /// reordering any lane's arithmetic.  This is what the serving layer's
    /// `decide_batch` feeds into the shield's batched certificate sweep.
    ///
    /// # Panics
    ///
    /// Panics if any state has the wrong dimension.
    pub fn actions_batch_into(
        &self,
        states: &[Vec<f64>],
        scratch: &mut MlpScratch,
        out: &mut Vec<Vec<f64>>,
    ) {
        self.network.forward_batch_into(states, scratch, out);
        for action in out.iter_mut() {
            for x in action.iter_mut() {
                *x *= self.action_scale;
            }
        }
    }

    /// Extracts the plain-data form of this policy (network weights plus the
    /// action scale) for artifact persistence.
    pub fn to_portable(&self) -> PortableNeuralPolicy {
        PortableNeuralPolicy {
            network: self.network.to_portable(),
            action_scale: self.action_scale,
        }
    }

    /// Rebuilds a policy from its plain-data form.
    ///
    /// # Errors
    ///
    /// Returns a message when the stored network is inconsistent or the
    /// action scale is not positive.
    pub fn from_portable(portable: &PortableNeuralPolicy) -> Result<NeuralPolicy, String> {
        if portable.action_scale <= 0.0 || portable.action_scale.is_nan() {
            return Err(format!(
                "action scale must be positive, got {}",
                portable.action_scale
            ));
        }
        Ok(NeuralPolicy {
            network: Mlp::from_portable(&portable.network)?,
            action_scale: portable.action_scale,
        })
    }
}

/// Plain-data form of a [`NeuralPolicy`] used by artifact persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableNeuralPolicy {
    /// The underlying network in portable form.
    pub network: PortableMlp,
    /// The action magnitude bound.
    pub action_scale: f64,
}

impl Policy for NeuralPolicy {
    fn action_dim(&self) -> usize {
        self.network.output_dim()
    }

    fn action(&self, state: &[f64]) -> Vec<f64> {
        self.network
            .forward(state)
            .into_iter()
            .map(|x| x * self.action_scale)
            .collect()
    }
}

impl ParametricPolicy for NeuralPolicy {
    fn parameters(&self) -> Vec<f64> {
        self.network.parameters()
    }

    fn set_parameters(&mut self, params: &[f64]) {
        self.network.set_parameters(params);
    }

    fn num_parameters(&self) -> usize {
        self.network.num_parameters()
    }
}

/// A linear state-feedback policy with a flat parameter vector, used as the
/// "directly train a program with RL" baseline discussed in Sec. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearParametricPolicy {
    state_dim: usize,
    action_dim: usize,
    /// Row-major gains, one row per action dimension, plus one bias per row.
    params: Vec<f64>,
    action_scale: f64,
}

impl LinearParametricPolicy {
    /// Creates a zero-initialized linear policy.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `action_scale` is not positive.
    pub fn new(state_dim: usize, action_dim: usize, action_scale: f64) -> Self {
        assert!(
            state_dim > 0 && action_dim > 0,
            "dimensions must be positive"
        );
        assert!(action_scale > 0.0, "action scale must be positive");
        LinearParametricPolicy {
            state_dim,
            action_dim,
            params: vec![0.0; action_dim * (state_dim + 1)],
            action_scale,
        }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Gain row (including trailing bias) for action dimension `row`.
    pub fn gains(&self, row: usize) -> &[f64] {
        let width = self.state_dim + 1;
        &self.params[row * width..(row + 1) * width]
    }
}

impl Policy for LinearParametricPolicy {
    fn action_dim(&self) -> usize {
        self.action_dim
    }

    fn action(&self, state: &[f64]) -> Vec<f64> {
        let width = self.state_dim + 1;
        (0..self.action_dim)
            .map(|row| {
                let gains = &self.params[row * width..(row + 1) * width];
                let raw: f64 = gains[..self.state_dim]
                    .iter()
                    .zip(state.iter())
                    .map(|(g, s)| g * s)
                    .sum::<f64>()
                    + gains[self.state_dim];
                raw.clamp(-self.action_scale, self.action_scale)
            })
            .collect()
    }
}

impl ParametricPolicy for LinearParametricPolicy {
    fn parameters(&self) -> Vec<f64> {
        self.params.clone()
    }

    fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.params.len(),
            "parameter vector has the wrong length"
        );
        self.params.copy_from_slice(params);
    }

    fn num_parameters(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn neural_policy_respects_the_action_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let policy = NeuralPolicy::new(3, 2, &[16, 16], 5.0, &mut rng);
        assert_eq!(policy.action_dim(), 2);
        assert_eq!(policy.state_dim(), 3);
        assert!((policy.action_scale() - 5.0).abs() < 1e-12);
        for s in [[0.0, 0.0, 0.0], [10.0, -10.0, 3.0], [-50.0, 2.0, 1.0]] {
            let a = policy.action(&s);
            assert!(a.iter().all(|x| x.abs() <= 5.0));
        }
        assert_eq!(policy.network().input_dim(), 3);
    }

    #[test]
    fn batched_proposals_match_scalar_actions() {
        let mut rng = SmallRng::seed_from_u64(7);
        let policy = NeuralPolicy::new(2, 2, &[16], 3.0, &mut rng);
        let states: Vec<Vec<f64>> = (0..11)
            .map(|i| vec![i as f64 * 0.2 - 1.0, 0.5 - i as f64 * 0.1])
            .collect();
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        policy.actions_batch_into(&states, &mut scratch, &mut out);
        assert_eq!(out.len(), states.len());
        for (state, action) in states.iter().zip(out.iter()) {
            assert_eq!(action, &policy.action(state));
        }
        // A second (smaller) batch reuses and truncates the buffers.
        policy.actions_batch_into(&states[..3], &mut scratch, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], policy.action(&states[2]));
    }

    #[test]
    fn neural_policy_parameters_round_trip() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut a = NeuralPolicy::new(2, 1, &[8], 1.0, &mut rng);
        let b = NeuralPolicy::new(2, 1, &[8], 1.0, &mut rng);
        assert_ne!(a.action(&[0.2, 0.3]), b.action(&[0.2, 0.3]));
        a.set_parameters(&b.parameters());
        assert_eq!(a.action(&[0.2, 0.3]), b.action(&[0.2, 0.3]));
        assert_eq!(a.num_parameters(), b.num_parameters());
        let wrapped = NeuralPolicy::from_network(b.network().clone(), 2.0);
        assert!((wrapped.action_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn action_into_matches_action_bitwise() {
        let mut rng = SmallRng::seed_from_u64(11);
        let policy = NeuralPolicy::new(3, 2, &[16, 16], 5.0, &mut rng);
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        for state in [[0.0, 0.0, 0.0], [0.5, -1.0, 2.0], [-0.1, 0.1, -0.2]] {
            policy.action_into(&state, &mut scratch, &mut out);
            let reference = policy.action(&state);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn linear_parametric_policy_computes_affine_feedback() {
        let mut p = LinearParametricPolicy::new(2, 1, 10.0);
        assert_eq!(p.action(&[1.0, 1.0]), vec![0.0]);
        p.set_parameters(&[-2.0, -3.0, 0.5]);
        let a = p.action(&[1.0, 2.0]);
        assert!((a[0] - (-2.0 - 6.0 + 0.5)).abs() < 1e-12);
        assert_eq!(p.gains(0), &[-2.0, -3.0, 0.5]);
        assert_eq!(p.num_parameters(), 3);
        assert_eq!(p.state_dim(), 2);
        // Saturation at the action scale.
        p.set_parameters(&[100.0, 0.0, 0.0]);
        assert_eq!(p.action(&[1.0, 0.0]), vec![10.0]);
    }
}
