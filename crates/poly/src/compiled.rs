//! Compiled (flattened) polynomial evaluation kernels.
//!
//! [`Polynomial`] stores terms in a `BTreeMap<Vec<u32>, f64>`, which is the
//! right representation for *algebra* (addition, substitution,
//! differentiation) but a poor one for *evaluation*: every `eval` walks the
//! tree, chases per-term heap allocations, and calls `powi` once per term
//! and variable.  Every hot loop of the pipeline — branch-and-bound bound
//! proving, barrier-certificate checking, and the deployed shield's
//! per-request `decide` — bottoms out in exactly that walk.
//!
//! This module lowers a polynomial into a flat structure-of-arrays form:
//!
//! * one contiguous coefficient buffer,
//! * a packed `(variable, exponent)` factor list (zero exponents are
//!   dropped at compile time), and
//! * per-variable maximum degrees, so each evaluation computes every needed
//!   power of every variable **once per point** instead of once per term.
//!
//! # Numerical contract
//!
//! Compiled evaluation is **bit-for-bit identical** to the reference
//! [`Polynomial::eval`] / [`Polynomial::eval_interval`] on finite inputs:
//! terms are visited in the same canonical order, factors are multiplied in
//! the same variable order, powers match `f64::powi` / [`Interval::pow`]
//! exactly (see `powi_exact`), interval products take the same
//! minimum/maximum over the same products, and partial sums are accumulated
//! in the same order.  Proofs found through compiled kernels are therefore
//! exactly the proofs the reference path would find.  (In degenerate
//! corner cases the *sign of zero* bounds may differ — the values are still
//! equal — and non-finite inputs, which the reference operators reject by
//! panicking, are outside the contract.)
//!
//! # Compiled-form invariants (when recompilation is required)
//!
//! A [`CompiledPolynomial`] is an immutable snapshot: it captures the terms
//! of the source polynomial at compile time and does **not** track later
//! changes.  Any operation producing a new [`Polynomial`] (arithmetic,
//! `substitute`, `pruned`, `scaled`, …) requires compiling the result again
//! if it is to be evaluated through the fast path.  Compiling is `O(terms)`
//! and allocation tells you when you got it wrong: compile once per
//! query/deployment, evaluate many times.
//!
//! # Scratch buffers
//!
//! Steady-state evaluation is allocation-free: power tables live in a
//! [`PolyScratch`] that is either supplied explicitly (`*_with` methods —
//! what the solver hot loops do) or borrowed from a thread-local pool (the
//! convenience methods — what the serving path does, one scratch per worker
//! thread).

use crate::{BatchBoxes, BatchPoints, Interval, Polynomial};
use std::cell::RefCell;

/// Number of lanes a batched evaluation sweep processes at once.
///
/// Eight `f64` lanes fill two AVX2 registers (or four SSE2 / NEON ones);
/// the batch kernels' inner loops run over fixed `[f64; LANE_WIDTH]`
/// blocks so the autovectorizer sees constant trip counts.  Batches larger
/// than the lane width are processed in chunks; ragged tails pad the power
/// table with `1.0` and only the live lanes are written back.
pub const LANE_WIDTH: usize = 8;

/// Number of lanes a batched *interval* sweep processes at once.
///
/// Interval lanes carry two accumulator arrays (lower and upper endpoints)
/// plus product temporaries through the term loop — heavier register
/// pressure than the point kernel's single accumulator — so the width is
/// tuned separately.  Eight lanes measured fastest on the x86-64 SSE2
/// baseline (narrower sweeps trade spills for worse fill amortization).
/// This is purely a sweep-granularity choice — batch sizes are unrestricted
/// and per-lane results are bit-identical at any width.
pub(crate) const ILANE_WIDTH: usize = 8;

/// Reusable evaluation scratch: per-variable power tables for point,
/// interval, and lane-batched evaluation.
///
/// A scratch grows to the largest polynomial it has served and is then
/// allocation-free.  One scratch may be shared across any number of
/// compiled polynomials and sets.
#[derive(Debug, Clone, Default)]
pub struct PolyScratch {
    /// `powers[offset(j) + k] = point[j].powi(k)`.
    powers: Vec<f64>,
    /// `ipowers[offset(j) + k] = domain[j].pow(k)` as raw `(lo, hi)` pairs,
    /// so the interval kernel runs on plain endpoint arithmetic.
    ipowers: Vec<(f64, f64)>,
    /// Batched power tables:
    /// `bpowers[(offset(j) + k) * LANE_WIDTH + lane] = point_lane[j].powi(k)`;
    /// pad lanes past the live count hold `1.0`.
    bpowers: Vec<f64>,
    /// Batched interval power tables, split into endpoint planes so the lane
    /// loops read unit-stride `f64` rows:
    /// `(bip_lo, bip_hi)[(offset(j) + k) * ILANE_WIDTH + lane]` hold the
    /// `(lo, hi)` endpoints of `box_lane[j].powi(k)`; pad lanes hold `1.0`.
    /// Interval sweeps are `ILANE_WIDTH` (not [`LANE_WIDTH`]) lanes wide —
    /// see the constant's documentation.
    bip_lo: Vec<f64>,
    bip_hi: Vec<f64>,
}

impl PolyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PolyScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch backing the convenience `eval*` methods, so the
    /// serving path is allocation-free without threading buffers through
    /// every call site.
    static TLS_SCRATCH: RefCell<PolyScratch> = RefCell::new(PolyScratch::new());
}

/// Inline LSB-first square-and-multiply, bit-identical to `f64::powi`
/// (which lowers to compiler-rt's `__powidf2`, the same accumulation order):
/// table fills call this instead of paying a libcall per entry.  The
/// `powi_matches_f64_powi_bitwise` test pins the bit-parity.
#[inline(always)]
fn powi_exact(x: f64, n: u32) -> f64 {
    let mut n = n;
    let mut r = 1.0f64;
    let mut a = x;
    loop {
        if n & 1 == 1 {
            r *= a;
        }
        n >>= 1;
        if n == 0 {
            break;
        }
        a *= a;
    }
    r
}

/// Branch-free minimum selection: lowers to `minsd`-style instructions
/// instead of the NaN-propagating `f64::min` intrinsic.  Shared by the
/// scalar and lane-batched interval kernels so both pick bounds through the
/// exact same comparisons.
#[inline(always)]
fn sel_min(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Branch-free maximum selection; see [`sel_min`].
#[inline(always)]
fn sel_max(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// The flat term storage shared by [`CompiledPolynomial`] and
/// [`CompiledPolySet`].
#[derive(Debug, Clone, PartialEq)]
struct Kernel {
    nvars: usize,
    /// Term coefficients in canonical (reference) order.
    coeffs: Vec<f64>,
    /// `term_starts[t]..term_starts[t + 1]` indexes `factors` for term `t`.
    term_starts: Vec<u32>,
    /// Packed nonzero factors, variable-major within each term, each
    /// pre-resolved to its power-table slot `pow_offsets[var] + exp` so the
    /// evaluation loops perform a single indexed load per factor.
    factors: Vec<u32>,
    /// `pow_offsets[j]` is the offset of variable `j`'s power table; the
    /// table for variable `j` holds degrees `0..=max_degree[j]`.
    pow_offsets: Vec<u32>,
    /// Total power-table length (`pow_offsets.last() + last max degree + 1`).
    table_len: usize,
}

impl Kernel {
    /// Lowers `polys` (all over the same variables) into one flat kernel,
    /// returning the kernel and the term range of each polynomial.
    fn compile(nvars: usize, polys: &[&Polynomial]) -> (Kernel, Vec<u32>) {
        let mut max_degree = vec![0u32; nvars];
        let mut coeffs = Vec::new();
        let mut term_starts = vec![0u32];
        // First pass: collect raw (variable, exponent) factors and the
        // per-variable degree bounds.
        let mut raw_factors: Vec<(u32, u32)> = Vec::new();
        let mut poly_starts = Vec::with_capacity(polys.len() + 1);
        poly_starts.push(0u32);
        for poly in polys {
            assert_eq!(
                poly.nvars(),
                nvars,
                "all polynomials of a compiled set must share the same variables"
            );
            for (exps, coeff) in poly.terms() {
                coeffs.push(coeff);
                for (j, &e) in exps.iter().enumerate() {
                    if e > 0 {
                        raw_factors.push((j as u32, e));
                        max_degree[j] = max_degree[j].max(e);
                    }
                }
                term_starts.push(raw_factors.len() as u32);
            }
            poly_starts.push(coeffs.len() as u32);
        }
        let mut pow_offsets = Vec::with_capacity(nvars);
        let mut offset = 0u32;
        for &d in &max_degree {
            pow_offsets.push(offset);
            offset += d + 1;
        }
        // Second pass: resolve each factor to its power-table slot.
        let factors = raw_factors
            .iter()
            .map(|&(var, exp)| pow_offsets[var as usize] + exp)
            .collect();
        (
            Kernel {
                nvars,
                coeffs,
                term_starts,
                factors,
                pow_offsets,
                table_len: offset as usize,
            },
            poly_starts,
        )
    }

    /// Fills the point power table: `powers[off(j) + k] = point[j].powi(k)`.
    ///
    /// `powi` (not iterated multiplication) keeps every factor bit-identical
    /// to what the reference evaluator computes per term.
    fn fill_powers(&self, point: &[f64], scratch: &mut PolyScratch) {
        assert_eq!(
            point.len(),
            self.nvars,
            "evaluation point has wrong dimension"
        );
        scratch.powers.resize(self.table_len.max(1), 0.0);
        for (j, &x) in point.iter().enumerate() {
            let off = self.pow_offsets[j] as usize;
            let end = self
                .pow_offsets
                .get(j + 1)
                .map_or(self.table_len, |&o| o as usize);
            for (k, slot) in scratch.powers[off..end].iter_mut().enumerate() {
                *slot = powi_exact(x, k as u32);
            }
        }
    }

    /// Fills the batched power table for lanes `base..base + lanes` of
    /// `points`:
    /// `bpowers[(off(j) + k) * LANE_WIDTH + lane] = points[base + lane][j].powi(k)`.
    ///
    /// Each entry is computed by the same `powi_exact` the scalar fill
    /// uses, so every live lane's table is bit-identical to what
    /// [`Kernel::fill_powers`] would produce for that point.  Pad lanes
    /// (`lanes..LANE_WIDTH`) are set to `1.0` so the fixed-width term loops
    /// stay in normal-number arithmetic; their results are never read.
    fn fill_powers_batch(
        &self,
        points: &BatchPoints,
        base: usize,
        lanes: usize,
        scratch: &mut PolyScratch,
    ) {
        debug_assert!(0 < lanes && lanes <= LANE_WIDTH);
        assert_eq!(
            points.nvars(),
            self.nvars,
            "evaluation batch has wrong dimension"
        );
        scratch
            .bpowers
            .resize(self.table_len.max(1) * LANE_WIDTH, 0.0);
        for j in 0..self.nvars {
            let col = &points.column(j)[base..base + lanes];
            let off = self.pow_offsets[j] as usize;
            let end = self
                .pow_offsets
                .get(j + 1)
                .map_or(self.table_len, |&o| o as usize);
            for k in 0..(end - off) {
                let row = &mut scratch.bpowers[(off + k) * LANE_WIDTH..(off + k + 1) * LANE_WIDTH];
                let (live, pad) = row.split_at_mut(lanes);
                for (slot, &x) in live.iter_mut().zip(col.iter()) {
                    *slot = powi_exact(x, k as u32);
                }
                pad.fill(1.0);
            }
        }
    }

    /// Sums terms `range` against a filled batched power table, writing one
    /// value per live lane into `out` (`out.len() == lanes`).
    ///
    /// Per lane this performs exactly the operations of
    /// [`Kernel::sum_terms`] in exactly the same order — the lane dimension
    /// only interleaves independent evaluations — so each lane's result is
    /// bit-identical to the scalar kernel's.  The inner loops run over
    /// fixed-width `[f64; LANE_WIDTH]` blocks with constant trip counts,
    /// which is what lets the compiler lower them to SIMD.
    ///
    /// # Table-access safety
    ///
    /// Same structural invariant as [`Kernel::sum_terms`]: every factor
    /// slot is `< table_len`, and [`Kernel::fill_powers_batch`] (the only
    /// caller's preceding step) resizes the batch table to
    /// `table_len * LANE_WIDTH`.
    fn sum_terms_batch(
        &self,
        range: std::ops::Range<usize>,
        lanes: usize,
        scratch: &PolyScratch,
        out: &mut [f64],
    ) {
        let bpowers = scratch.bpowers.as_slice();
        debug_assert!(bpowers.len() >= self.table_len * LANE_WIDTH);
        debug_assert!(self
            .factors
            .iter()
            .all(|&s| (s as usize) < self.table_len.max(1)));
        debug_assert_eq!(out.len(), lanes);
        let coeffs = &self.coeffs[range.clone()];
        let starts = &self.term_starts[range.start..range.end + 1];
        let mut totals = [0.0f64; LANE_WIDTH];
        for (window, &coeff) in starts.windows(2).zip(coeffs.iter()) {
            let mut term = [coeff; LANE_WIDTH];
            for &slot in &self.factors[window[0] as usize..window[1] as usize] {
                // SAFETY: slot < table_len and the caller just resized
                // `bpowers` to at least `table_len * LANE_WIDTH` (see above).
                let row = unsafe {
                    bpowers
                        .get_unchecked(slot as usize * LANE_WIDTH..(slot as usize + 1) * LANE_WIDTH)
                };
                for (t, &p) in term.iter_mut().zip(row.iter()) {
                    *t *= p;
                }
            }
            for (total, &t) in totals.iter_mut().zip(term.iter()) {
                *total += t;
            }
        }
        out.copy_from_slice(&totals[..lanes]);
    }

    /// Fills the interval power table, entry-for-entry bit-identical to
    /// [`Interval::pow`] (endpoint `powi` plus the even/odd sign rules),
    /// with the per-variable sign classification hoisted out of the degree
    /// loop.
    fn fill_ipowers(&self, domain: &[Interval], scratch: &mut PolyScratch) {
        assert_eq!(
            domain.len(),
            self.nvars,
            "interval domain has wrong dimension"
        );
        scratch.ipowers.resize(self.table_len.max(1), (0.0, 0.0));
        for (j, iv) in domain.iter().enumerate() {
            let off = self.pow_offsets[j] as usize;
            let end = self
                .pow_offsets
                .get(j + 1)
                .map_or(self.table_len, |&o| o as usize);
            let (lo, hi) = (iv.lo(), iv.hi());
            let nonnegative = lo >= 0.0;
            let nonpositive = hi <= 0.0;
            for (k, slot) in scratch.ipowers[off..end].iter_mut().enumerate() {
                *slot = match k {
                    0 => (1.0, 1.0),
                    1 => (lo, hi),
                    _ => {
                        let a = powi_exact(lo, k as u32);
                        let b = powi_exact(hi, k as u32);
                        if k % 2 == 0 {
                            if nonnegative {
                                (a, b)
                            } else if nonpositive {
                                (b, a)
                            } else {
                                (0.0, if a > b { a } else { b })
                            }
                        } else {
                            (a, b)
                        }
                    }
                };
            }
        }
    }

    /// Fills the batched interval power table for lanes
    /// `base..base + lanes` of `boxes`:
    /// `(bip_lo, bip_hi)[(off(j) + k) * ILANE_WIDTH + lane]` are the
    /// endpoints of `boxes[base + lane][j].powi(k)`.
    ///
    /// Each live lane's entries are computed by exactly the rules of
    /// [`Kernel::fill_ipowers`] (endpoint `powi_exact` plus the even/odd
    /// sign classification, hoisted per lane per variable), so every live
    /// lane's table is bit-identical to what the scalar fill would produce
    /// for that box.  Pad lanes (`lanes..ILANE_WIDTH`) hold the point
    /// interval `[1, 1]` so the fixed-width term loops stay in
    /// normal-number arithmetic; their results are never read.
    fn fill_ipowers_batch(
        &self,
        boxes: &BatchBoxes,
        base: usize,
        lanes: usize,
        scratch: &mut PolyScratch,
    ) {
        debug_assert!(0 < lanes && lanes <= ILANE_WIDTH);
        assert_eq!(boxes.nvars(), self.nvars, "box batch has wrong dimension");
        let table = self.table_len.max(1) * ILANE_WIDTH;
        scratch.bip_lo.resize(table, 0.0);
        scratch.bip_hi.resize(table, 0.0);
        for j in 0..self.nvars {
            let lo_col = &boxes.lo_column(j)[base..base + lanes];
            let hi_col = &boxes.hi_column(j)[base..base + lanes];
            let off = self.pow_offsets[j] as usize;
            let end = self
                .pow_offsets
                .get(j + 1)
                .map_or(self.table_len, |&o| o as usize);
            for k in 0..(end - off) {
                let row = (off + k) * ILANE_WIDTH;
                let row_lo = &mut scratch.bip_lo[row..row + ILANE_WIDTH];
                let row_hi = &mut scratch.bip_hi[row..row + ILANE_WIDTH];
                for (lane, (&lo, &hi)) in lo_col.iter().zip(hi_col.iter()).enumerate() {
                    let (slot_lo, slot_hi) = match k {
                        0 => (1.0, 1.0),
                        1 => (lo, hi),
                        _ => {
                            let a = powi_exact(lo, k as u32);
                            let b = powi_exact(hi, k as u32);
                            if k % 2 == 0 {
                                if lo >= 0.0 {
                                    (a, b)
                                } else if hi <= 0.0 {
                                    (b, a)
                                } else {
                                    (0.0, if a > b { a } else { b })
                                }
                            } else {
                                (a, b)
                            }
                        }
                    };
                    row_lo[lane] = slot_lo;
                    row_hi[lane] = slot_hi;
                }
                row_lo[lanes..].fill(1.0);
                row_hi[lanes..].fill(1.0);
            }
        }
    }

    /// Sums terms `range` against a filled batched interval power table,
    /// writing one enclosure per live lane into `out` (`out.len() == lanes`).
    ///
    /// Per lane this performs exactly the operations of
    /// [`Kernel::sum_terms_interval`] in exactly the same order — the same
    /// first-factor point-interval scale, the same four raw-endpoint
    /// products per remaining factor, the same [`sel_min`]/[`sel_max`]
    /// bound selection — so each lane's enclosure is bit-identical to the
    /// scalar interval kernel's.  The inner loops run over fixed-width
    /// `[f64; ILANE_WIDTH]` blocks with constant trip counts so the compiler
    /// can lower them to SIMD.
    ///
    /// # Table-access safety
    ///
    /// Same structural invariant as [`Kernel::sum_terms`]: every factor
    /// slot is `< table_len`, and [`Kernel::fill_ipowers_batch`] (the only
    /// caller's preceding step) resizes both endpoint planes to
    /// `table_len * ILANE_WIDTH`.
    fn sum_terms_interval_batch(
        &self,
        range: std::ops::Range<usize>,
        lanes: usize,
        scratch: &PolyScratch,
        out: &mut [Interval],
    ) {
        let bip_lo = scratch.bip_lo.as_slice();
        let bip_hi = scratch.bip_hi.as_slice();
        debug_assert!(bip_lo.len() >= self.table_len * ILANE_WIDTH);
        debug_assert!(bip_hi.len() >= self.table_len * ILANE_WIDTH);
        debug_assert!(self
            .factors
            .iter()
            .all(|&s| (s as usize) < self.table_len.max(1)));
        debug_assert_eq!(out.len(), lanes);
        let coeffs = &self.coeffs[range.clone()];
        let starts = &self.term_starts[range.start..range.end + 1];
        let mut total_lo = [0.0f64; ILANE_WIDTH];
        let mut total_hi = [0.0f64; ILANE_WIDTH];
        for (window, &coeff) in starts.windows(2).zip(coeffs.iter()) {
            let factors = &self.factors[window[0] as usize..window[1] as usize];
            let (first, rest) = match factors.split_first() {
                None => {
                    for (lo, hi) in total_lo.iter_mut().zip(total_hi.iter_mut()) {
                        *lo += coeff;
                        *hi += coeff;
                    }
                    continue;
                }
                Some((&first, rest)) => (first, rest),
            };
            // First factor: point-interval scale by the coefficient, exactly
            // as the scalar kernel's first-factor specialization.
            // SAFETY: slot < table_len and the caller just resized both
            // endpoint planes to at least `table_len * ILANE_WIDTH`.
            let row = first as usize * ILANE_WIDTH;
            let (row_lo, row_hi) = unsafe {
                (
                    bip_lo.get_unchecked(row..row + ILANE_WIDTH),
                    bip_hi.get_unchecked(row..row + ILANE_WIDTH),
                )
            };
            let mut term_lo = [0.0f64; ILANE_WIDTH];
            let mut term_hi = [0.0f64; ILANE_WIDTH];
            for lane in 0..ILANE_WIDTH {
                let a0 = coeff * row_lo[lane];
                let b0 = coeff * row_hi[lane];
                term_lo[lane] = sel_min(a0, b0);
                term_hi[lane] = sel_max(a0, b0);
            }
            for &slot in rest {
                // SAFETY: as above.
                let row = slot as usize * ILANE_WIDTH;
                let (row_lo, row_hi) = unsafe {
                    (
                        bip_lo.get_unchecked(row..row + ILANE_WIDTH),
                        bip_hi.get_unchecked(row..row + ILANE_WIDTH),
                    )
                };
                for lane in 0..ILANE_WIDTH {
                    // [term] * [p], products in the reference operand order.
                    let a = term_lo[lane] * row_lo[lane];
                    let b = term_lo[lane] * row_hi[lane];
                    let c = term_hi[lane] * row_lo[lane];
                    let d = term_hi[lane] * row_hi[lane];
                    term_lo[lane] = sel_min(sel_min(a, b), sel_min(c, d));
                    term_hi[lane] = sel_max(sel_max(a, b), sel_max(c, d));
                }
            }
            for lane in 0..ILANE_WIDTH {
                total_lo[lane] += term_lo[lane];
                total_hi[lane] += term_hi[lane];
            }
        }
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = Interval::new(total_lo[lane], total_hi[lane]);
        }
    }

    /// Sums terms `range` against a filled point power table.
    ///
    /// # Table-access safety
    ///
    /// The unchecked power-table loads here and in
    /// [`Kernel::sum_terms_interval`] rely on a structural invariant
    /// established at compile time and re-checked by a debug assertion:
    /// every entry of `factors` is `pow_offsets[var] + exp` with
    /// `exp <= max_degree[var]`, hence `< table_len`, and both `fill_*`
    /// methods (the only callers' preceding step) resize the scratch table
    /// to at least `table_len`.
    fn sum_terms(&self, range: std::ops::Range<usize>, scratch: &PolyScratch) -> f64 {
        let powers = scratch.powers.as_slice();
        debug_assert!(powers.len() >= self.table_len);
        debug_assert!(self
            .factors
            .iter()
            .all(|&s| (s as usize) < self.table_len.max(1)));
        let coeffs = &self.coeffs[range.clone()];
        let starts = &self.term_starts[range.start..range.end + 1];
        let mut total = 0.0;
        for (window, &coeff) in starts.windows(2).zip(coeffs.iter()) {
            let mut term = coeff;
            for &slot in &self.factors[window[0] as usize..window[1] as usize] {
                // SAFETY: slot < table_len <= powers.len() (see above).
                term *= unsafe { *powers.get_unchecked(slot as usize) };
            }
            total += term;
        }
        total
    }

    /// Sums terms `range` against a filled interval power table.
    ///
    /// Runs on raw endpoint arithmetic: the same products in the same order
    /// as the reference `Interval` operator chain (so the bounds are
    /// bit-identical for finite inputs), without the per-operation interval
    /// validation the operators perform.  Two specializations keep it fast:
    /// the first factor of each term multiplies a *point* interval, which is
    /// a two-product scale picked by the (compile-time-known) coefficient
    /// sign, and min/max selection uses plain comparisons, which lower to
    /// branch-free `minsd`/`maxsd`-style instructions instead of the
    /// NaN-propagating `f64::min`/`max` intrinsics.
    fn sum_terms_interval(&self, range: std::ops::Range<usize>, scratch: &PolyScratch) -> Interval {
        let ipowers = scratch.ipowers.as_slice();
        debug_assert!(ipowers.len() >= self.table_len);
        debug_assert!(self
            .factors
            .iter()
            .all(|&s| (s as usize) < self.table_len.max(1)));
        let coeffs = &self.coeffs[range.clone()];
        let starts = &self.term_starts[range.start..range.end + 1];
        let mut total_lo = 0.0f64;
        let mut total_hi = 0.0f64;
        for (window, &coeff) in starts.windows(2).zip(coeffs.iter()) {
            let factors = &self.factors[window[0] as usize..window[1] as usize];
            let (first, rest) = match factors.split_first() {
                None => {
                    total_lo += coeff;
                    total_hi += coeff;
                    continue;
                }
                Some((&first, rest)) => (first, rest),
            };
            // Branchless point-interval scale for the first factor: random
            // coefficient signs would mispredict a sign branch per term.
            // SAFETY: every factor slot < table_len <= ipowers.len() (see
            // `sum_terms`).
            let (p_lo, p_hi) = unsafe { *ipowers.get_unchecked(first as usize) };
            let a0 = coeff * p_lo;
            let b0 = coeff * p_hi;
            let mut term_lo = sel_min(a0, b0);
            let mut term_hi = sel_max(a0, b0);
            for &slot in rest {
                // SAFETY: as above.
                let (p_lo, p_hi) = unsafe { *ipowers.get_unchecked(slot as usize) };
                // [term] * [p], products in the reference operand order.
                let a = term_lo * p_lo;
                let b = term_lo * p_hi;
                let c = term_hi * p_lo;
                let d = term_hi * p_hi;
                term_lo = sel_min(sel_min(a, b), sel_min(c, d));
                term_hi = sel_max(sel_max(a, b), sel_max(c, d));
            }
            total_lo += term_lo;
            total_hi += term_hi;
        }
        Interval::new(total_lo, total_hi)
    }
}

/// A polynomial lowered into flat arrays for fast repeated evaluation.
///
/// See the `compiled` module documentation for the layout, the numerical
/// contract, and when recompilation is required.
///
/// # Examples
///
/// ```
/// use vrl_poly::Polynomial;
///
/// let p = Polynomial::from_terms(2, vec![(vec![2, 1], 3.0), (vec![0, 0], -1.0)]);
/// let compiled = p.compile();
/// assert_eq!(compiled.eval(&[2.0, 1.0]), p.eval(&[2.0, 1.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPolynomial {
    kernel: Kernel,
}

impl CompiledPolynomial {
    /// Compiles a polynomial (see also [`Polynomial::compile`]).
    pub fn new(poly: &Polynomial) -> Self {
        let (kernel, _) = Kernel::compile(poly.nvars(), &[poly]);
        CompiledPolynomial { kernel }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.kernel.nvars
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.kernel.coeffs.len()
    }

    /// Evaluates at a point using the thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        TLS_SCRATCH.with(|s| self.eval_with(point, &mut s.borrow_mut()))
    }

    /// Evaluates at a point using a caller-managed scratch (allocation-free
    /// once the scratch has grown).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()`.
    pub fn eval_with(&self, point: &[f64], scratch: &mut PolyScratch) -> f64 {
        self.kernel.fill_powers(point, scratch);
        self.kernel.sum_terms(0..self.kernel.coeffs.len(), scratch)
    }

    /// Evaluates every lane of a [`BatchPoints`] batch, writing one value
    /// per state into `out` (resized to `points.len()`), using the
    /// thread-local scratch.
    ///
    /// Lanes are swept [`LANE_WIDTH`] states at a time with one shared
    /// power-table fill per variable per sweep; each lane's result is
    /// **bit-for-bit** the value [`CompiledPolynomial::eval`] returns for
    /// that state (debug builds assert this per lane).
    ///
    /// # Examples
    ///
    /// ```
    /// use vrl_poly::{BatchPoints, Polynomial};
    ///
    /// let p = Polynomial::from_terms(2, vec![(vec![2, 1], 3.0), (vec![0, 0], -1.0)]);
    /// let compiled = p.compile();
    /// let batch = BatchPoints::from_states(2, &[vec![2.0, 1.0], vec![-0.5, 3.0]]);
    /// let mut out = Vec::new();
    /// compiled.evaluate_batch(&batch, &mut out);
    /// assert_eq!(out, vec![p.eval(&[2.0, 1.0]), p.eval(&[-0.5, 3.0])]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.nvars()`.
    pub fn evaluate_batch(&self, points: &BatchPoints, out: &mut Vec<f64>) {
        TLS_SCRATCH.with(|s| self.evaluate_batch_with(points, out, &mut s.borrow_mut()))
    }

    /// Batched evaluation with a caller-managed scratch (allocation-free
    /// once the scratch and `out` have grown).
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.nvars()`.
    pub fn evaluate_batch_with(
        &self,
        points: &BatchPoints,
        out: &mut Vec<f64>,
        scratch: &mut PolyScratch,
    ) {
        assert_eq!(
            points.nvars(),
            self.nvars(),
            "evaluation batch has wrong dimension"
        );
        let n = points.len();
        out.clear();
        out.resize(n, 0.0);
        let mut base = 0;
        while base < n {
            let lanes = (n - base).min(LANE_WIDTH);
            self.kernel.fill_powers_batch(points, base, lanes, scratch);
            self.kernel.sum_terms_batch(
                0..self.kernel.coeffs.len(),
                lanes,
                scratch,
                &mut out[base..base + lanes],
            );
            base += lanes;
        }
        #[cfg(debug_assertions)]
        for (i, value) in out.iter().enumerate() {
            debug_assert_eq!(
                value.to_bits(),
                self.eval_with(&points.state(i), scratch).to_bits(),
                "batch lane {i} diverged from the scalar kernel"
            );
        }
    }

    /// Conservative interval enclosure over a box, using the thread-local
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    pub fn eval_interval(&self, domain: &[Interval]) -> Interval {
        TLS_SCRATCH.with(|s| self.eval_interval_with(domain, &mut s.borrow_mut()))
    }

    /// Conservative interval enclosure over a box with a caller-managed
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    pub fn eval_interval_with(&self, domain: &[Interval], scratch: &mut PolyScratch) -> Interval {
        self.kernel.fill_ipowers(domain, scratch);
        self.kernel
            .sum_terms_interval(0..self.kernel.coeffs.len(), scratch)
    }

    /// Conservative interval enclosures over every box of a [`BatchBoxes`]
    /// batch, written into `out` (resized to `boxes.len()`), using the
    /// thread-local scratch.
    ///
    /// Boxes are swept `ILANE_WIDTH` lanes at a time (the interval sweep
    /// width; see that constant's documentation) with one shared
    /// interval power-table fill per variable per sweep; each lane's
    /// enclosure is **bit-for-bit** the bound
    /// [`CompiledPolynomial::eval_interval`] returns for that box (debug
    /// builds assert this per lane), so branch-and-bound certifies, prunes,
    /// and splits exactly as the scalar path does.
    ///
    /// # Examples
    ///
    /// ```
    /// use vrl_poly::{BatchBoxes, Interval, Polynomial};
    ///
    /// let p = Polynomial::from_terms(2, vec![(vec![2, 1], 3.0), (vec![0, 0], -1.0)]);
    /// let compiled = p.compile();
    /// let boxes = BatchBoxes::from_boxes(2, &[
    ///     vec![Interval::new(-1.0, 2.0), Interval::new(0.5, 0.75)],
    ///     vec![Interval::new(0.0, 1.0), Interval::new(-1.0, 1.0)],
    /// ]);
    /// let mut out = Vec::new();
    /// compiled.evaluate_interval_batch(&boxes, &mut out);
    /// assert_eq!(out[0], p.eval_interval(&boxes.box_at(0)));
    /// assert_eq!(out[1], p.eval_interval(&boxes.box_at(1)));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `boxes.nvars() != self.nvars()`.
    pub fn evaluate_interval_batch(&self, boxes: &BatchBoxes, out: &mut Vec<Interval>) {
        TLS_SCRATCH.with(|s| self.evaluate_interval_batch_with(boxes, out, &mut s.borrow_mut()))
    }

    /// Batched interval evaluation with a caller-managed scratch
    /// (allocation-free once the scratch and `out` have grown).
    ///
    /// # Panics
    ///
    /// Panics if `boxes.nvars() != self.nvars()`.
    pub fn evaluate_interval_batch_with(
        &self,
        boxes: &BatchBoxes,
        out: &mut Vec<Interval>,
        scratch: &mut PolyScratch,
    ) {
        assert_eq!(boxes.nvars(), self.nvars(), "box batch has wrong dimension");
        let n = boxes.len();
        out.clear();
        out.resize(n, Interval::zero());
        let mut base = 0;
        while base < n {
            let lanes = (n - base).min(ILANE_WIDTH);
            self.kernel.fill_ipowers_batch(boxes, base, lanes, scratch);
            self.kernel.sum_terms_interval_batch(
                0..self.kernel.coeffs.len(),
                lanes,
                scratch,
                &mut out[base..base + lanes],
            );
            base += lanes;
        }
        #[cfg(debug_assertions)]
        for (i, enclosure) in out.iter().enumerate() {
            let reference = self.eval_interval_with(&boxes.box_at(i), scratch);
            debug_assert!(
                enclosure.lo().to_bits() == reference.lo().to_bits()
                    && enclosure.hi().to_bits() == reference.hi().to_bits(),
                "interval batch lane {i} diverged from the scalar kernel"
            );
        }
    }
}

impl From<&Polynomial> for CompiledPolynomial {
    fn from(poly: &Polynomial) -> Self {
        CompiledPolynomial::new(poly)
    }
}

/// A family of polynomials over the same variables compiled together, so
/// simultaneous evaluation (successor components, guard cascades, action
/// tuples) fills each per-variable power table **once** for the whole
/// family.
///
/// # Examples
///
/// ```
/// use vrl_poly::{CompiledPolySet, Polynomial};
///
/// let x = Polynomial::variable(0, 2);
/// let y = Polynomial::variable(1, 2);
/// let set = CompiledPolySet::compile(&[&x * &x, &x + &y]);
/// let mut out = [0.0; 2];
/// set.eval_into(&[2.0, 3.0], &mut out);
/// assert_eq!(out, [4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPolySet {
    kernel: Kernel,
    /// `poly_starts[i]..poly_starts[i + 1]` is the term range of poly `i`.
    poly_starts: Vec<u32>,
}

impl CompiledPolySet {
    /// Compiles a family of polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or the polynomials disagree on the number
    /// of variables.
    pub fn compile(polys: &[Polynomial]) -> Self {
        let refs: Vec<&Polynomial> = polys.iter().collect();
        Self::compile_refs(&refs)
    }

    /// Compiles a family of polynomials given by reference.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or the polynomials disagree on the number
    /// of variables.
    pub fn compile_refs(polys: &[&Polynomial]) -> Self {
        assert!(
            !polys.is_empty(),
            "a compiled set needs at least one polynomial"
        );
        let nvars = polys[0].nvars();
        let (kernel, poly_starts) = Kernel::compile(nvars, polys);
        CompiledPolySet {
            kernel,
            poly_starts,
        }
    }

    /// Number of polynomials in the set.
    pub fn len(&self) -> usize {
        self.poly_starts.len() - 1
    }

    /// Returns true when the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.kernel.nvars
    }

    fn range(&self, index: usize) -> std::ops::Range<usize> {
        self.poly_starts[index] as usize..self.poly_starts[index + 1] as usize
    }

    /// Evaluates every polynomial at `point` into `out`, using the
    /// thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()` or `out.len() != self.len()`.
    pub fn eval_into(&self, point: &[f64], out: &mut [f64]) {
        TLS_SCRATCH.with(|s| self.eval_into_with(point, out, &mut s.borrow_mut()))
    }

    /// Evaluates every polynomial at `point` into `out` with a
    /// caller-managed scratch.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()` or `out.len() != self.len()`.
    pub fn eval_into_with(&self, point: &[f64], out: &mut [f64], scratch: &mut PolyScratch) {
        assert_eq!(out.len(), self.len(), "output slice has wrong length");
        self.kernel.fill_powers(point, scratch);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.kernel.sum_terms(self.range(i), scratch);
        }
    }

    /// Evaluates every polynomial of the set at every lane of a
    /// [`BatchPoints`] batch, using the thread-local scratch.
    ///
    /// `out` is resized to `self.len() * points.len()` and laid out
    /// polynomial-major: `out[i * points.len() + lane]` is polynomial `i`
    /// at state `lane`, so each polynomial's lane values are contiguous
    /// (what a guard cascade consumes).  Each sweep fills the per-variable
    /// power tables **once** for the whole family across [`LANE_WIDTH`]
    /// lanes, and every entry is bit-for-bit the scalar
    /// [`CompiledPolySet::eval_into`] value (debug builds assert this).
    ///
    /// # Examples
    ///
    /// ```
    /// use vrl_poly::{BatchPoints, CompiledPolySet, Polynomial};
    ///
    /// let x = Polynomial::variable(0, 2);
    /// let y = Polynomial::variable(1, 2);
    /// let set = CompiledPolySet::compile(&[&x * &x, &x + &y]);
    /// let batch = BatchPoints::from_states(2, &[vec![2.0, 3.0], vec![-1.0, 0.5]]);
    /// let mut out = Vec::new();
    /// set.evaluate_batch(&batch, &mut out);
    /// assert_eq!(out, vec![4.0, 1.0, 5.0, -0.5]); // [x² lanes..., x+y lanes...]
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.nvars()`.
    pub fn evaluate_batch(&self, points: &BatchPoints, out: &mut Vec<f64>) {
        TLS_SCRATCH.with(|s| self.evaluate_batch_with(points, out, &mut s.borrow_mut()))
    }

    /// Batched family evaluation with a caller-managed scratch (see
    /// [`CompiledPolySet::evaluate_batch`] for the output layout).
    ///
    /// # Panics
    ///
    /// Panics if `points.nvars() != self.nvars()`.
    pub fn evaluate_batch_with(
        &self,
        points: &BatchPoints,
        out: &mut Vec<f64>,
        scratch: &mut PolyScratch,
    ) {
        assert_eq!(
            points.nvars(),
            self.nvars(),
            "evaluation batch has wrong dimension"
        );
        let n = points.len();
        out.clear();
        out.resize(self.len() * n, 0.0);
        let mut base = 0;
        while base < n {
            let lanes = (n - base).min(LANE_WIDTH);
            self.kernel.fill_powers_batch(points, base, lanes, scratch);
            for i in 0..self.len() {
                self.kernel.sum_terms_batch(
                    self.range(i),
                    lanes,
                    scratch,
                    &mut out[i * n + base..i * n + base + lanes],
                );
            }
            base += lanes;
        }
        #[cfg(debug_assertions)]
        {
            let mut reference = vec![0.0; self.len()];
            for lane in 0..n {
                self.eval_into_with(&points.state(lane), &mut reference, scratch);
                for (i, r) in reference.iter().enumerate() {
                    debug_assert_eq!(
                        out[i * n + lane].to_bits(),
                        r.to_bits(),
                        "batch lane {lane} of polynomial {i} diverged from the scalar kernel"
                    );
                }
            }
        }
    }

    /// Evaluates one polynomial of the set at `point` (shares the set's
    /// compiled tables; the power table is still filled per call).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` or `point.len() != self.nvars()`.
    pub fn eval_one(&self, index: usize, point: &[f64]) -> f64 {
        TLS_SCRATCH.with(|s| {
            let scratch = &mut s.borrow_mut();
            self.kernel.fill_powers(point, scratch);
            self.kernel.sum_terms(self.range(index), scratch)
        })
    }

    /// Interval enclosures of every polynomial over `domain` into `out`,
    /// using the thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()` or `out.len() != self.len()`.
    pub fn eval_interval_into(&self, domain: &[Interval], out: &mut [Interval]) {
        TLS_SCRATCH.with(|s| self.eval_interval_into_with(domain, out, &mut s.borrow_mut()))
    }

    /// Interval enclosures of every polynomial over `domain` into `out`
    /// with a caller-managed scratch.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()` or `out.len() != self.len()`.
    pub fn eval_interval_into_with(
        &self,
        domain: &[Interval],
        out: &mut [Interval],
        scratch: &mut PolyScratch,
    ) {
        assert_eq!(out.len(), self.len(), "output slice has wrong length");
        self.kernel.fill_ipowers(domain, scratch);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.kernel.sum_terms_interval(self.range(i), scratch);
        }
    }

    /// Interval enclosures of every polynomial of the set over every box of
    /// a [`BatchBoxes`] batch, using the thread-local scratch.
    ///
    /// `out` is resized to `self.len() * boxes.len()` and laid out
    /// polynomial-major: `out[i * boxes.len() + lane]` is polynomial `i`
    /// over box `lane`, so each polynomial's lane enclosures are contiguous
    /// (what the branch-and-bound guard checks consume).  Each sweep fills
    /// the per-variable interval power tables **once** for the whole family
    /// across each `ILANE_WIDTH`-lane interval sweep, and every entry is
    /// bit-for-bit the scalar [`CompiledPolySet::eval_interval_into`] bound
    /// (debug builds assert this).
    ///
    /// # Examples
    ///
    /// ```
    /// use vrl_poly::{BatchBoxes, CompiledPolySet, Interval, Polynomial};
    ///
    /// let x = Polynomial::variable(0, 1);
    /// let set = CompiledPolySet::compile(&[&x * &x, -&x]);
    /// let boxes = BatchBoxes::from_boxes(1, &[
    ///     vec![Interval::new(-1.0, 2.0)],
    ///     vec![Interval::new(0.5, 1.0)],
    /// ]);
    /// let mut out = Vec::new();
    /// set.evaluate_interval_batch(&boxes, &mut out);
    /// assert_eq!(out[0], Interval::new(0.0, 4.0));  // x² over lane 0
    /// assert_eq!(out[3], Interval::new(-1.0, -0.5)); // −x over lane 1
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `boxes.nvars() != self.nvars()`.
    pub fn evaluate_interval_batch(&self, boxes: &BatchBoxes, out: &mut Vec<Interval>) {
        TLS_SCRATCH.with(|s| self.evaluate_interval_batch_with(boxes, out, &mut s.borrow_mut()))
    }

    /// Batched family interval evaluation with a caller-managed scratch
    /// (see [`CompiledPolySet::evaluate_interval_batch`] for the layout).
    ///
    /// # Panics
    ///
    /// Panics if `boxes.nvars() != self.nvars()`.
    pub fn evaluate_interval_batch_with(
        &self,
        boxes: &BatchBoxes,
        out: &mut Vec<Interval>,
        scratch: &mut PolyScratch,
    ) {
        assert_eq!(boxes.nvars(), self.nvars(), "box batch has wrong dimension");
        let n = boxes.len();
        out.clear();
        out.resize(self.len() * n, Interval::zero());
        let mut base = 0;
        while base < n {
            let lanes = (n - base).min(ILANE_WIDTH);
            self.kernel.fill_ipowers_batch(boxes, base, lanes, scratch);
            for i in 0..self.len() {
                self.kernel.sum_terms_interval_batch(
                    self.range(i),
                    lanes,
                    scratch,
                    &mut out[i * n + base..i * n + base + lanes],
                );
            }
            base += lanes;
        }
        #[cfg(debug_assertions)]
        {
            let mut reference = vec![Interval::zero(); self.len()];
            for lane in 0..n {
                self.eval_interval_into_with(&boxes.box_at(lane), &mut reference, scratch);
                for (i, r) in reference.iter().enumerate() {
                    debug_assert!(
                        out[i * n + lane].lo().to_bits() == r.lo().to_bits()
                            && out[i * n + lane].hi().to_bits() == r.hi().to_bits(),
                        "interval batch lane {lane} of polynomial {i} diverged from the scalar kernel"
                    );
                }
            }
        }
    }
}

impl Polynomial {
    /// Lowers this polynomial into the flat [`CompiledPolynomial`] form for
    /// fast repeated evaluation.
    ///
    /// The compiled form is a snapshot: recompile after any operation that
    /// produces a new polynomial (see the `compiled` module documentation
    /// on when recompilation is required).
    pub fn compile(&self) -> CompiledPolynomial {
        CompiledPolynomial::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial_basis;
    use proptest::prelude::*;

    /// Builds a random polynomial with up to `coeffs.len()` terms over
    /// `nvars` variables, total degree capped at 6.
    fn poly_from_raw(nvars: usize, raw_exps: &[u32], coeffs: &[f64]) -> Polynomial {
        let mut terms = Vec::with_capacity(coeffs.len());
        for (t, &c) in coeffs.iter().enumerate() {
            let mut exps: Vec<u32> = (0..nvars).map(|j| raw_exps[t * nvars + j] % 7).collect();
            // Cap the total degree at 6 by shaving excess exponents.
            while exps.iter().sum::<u32>() > 6 {
                for e in exps.iter_mut() {
                    if *e > 0 {
                        *e -= 1;
                        break;
                    }
                }
            }
            terms.push((exps, c));
        }
        Polynomial::from_terms(nvars, terms)
    }

    #[test]
    fn powi_matches_f64_powi_bitwise() {
        // The bit-for-bit contract of the compiled kernels rests on
        // `powi_exact` agreeing with `f64::powi` exactly; pin it across
        // magnitudes, signs, and exponents (including 0^0 = 1).
        let xs = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -0.3,
            1.5,
            -2.75,
            1e-8,
            -1e8,
            std::f64::consts::PI,
        ];
        for &x in &xs {
            for k in 0u32..=16 {
                assert_eq!(
                    powi_exact(x, k).to_bits(),
                    x.powi(k as i32).to_bits(),
                    "powi mismatch at x={x}, k={k}"
                );
            }
        }
    }

    #[test]
    fn compiled_matches_reference_on_fixed_cases() {
        // p(x, y) = 3x²y − y³ + 0.5x − 2
        let p = Polynomial::from_terms(
            2,
            vec![
                (vec![2, 1], 3.0),
                (vec![0, 3], -1.0),
                (vec![1, 0], 0.5),
                (vec![0, 0], -2.0),
            ],
        );
        let c = p.compile();
        assert_eq!(c.nvars(), 2);
        assert_eq!(c.num_terms(), 4);
        for point in [[0.0, 0.0], [1.5, -2.0], [-0.3, 0.7], [100.0, -3.5]] {
            assert_eq!(p.eval(&point).to_bits(), c.eval(&point).to_bits());
        }
        let dom = [Interval::new(-1.0, 2.0), Interval::new(0.5, 0.75)];
        let reference = p.eval_interval(&dom);
        let compiled = c.eval_interval(&dom);
        assert_eq!(reference.lo().to_bits(), compiled.lo().to_bits());
        assert_eq!(reference.hi().to_bits(), compiled.hi().to_bits());
    }

    #[test]
    fn zero_and_constant_polynomials() {
        let zero = Polynomial::zero(3).compile();
        assert_eq!(zero.eval(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(zero.eval_interval(&[Interval::zero(); 3]), Interval::zero());
        let k = Polynomial::constant(4.25, 0).compile();
        assert_eq!(k.eval(&[]), 4.25);
    }

    #[test]
    fn set_evaluates_all_members() {
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let polys = vec![&x * &x, &x + &y, Polynomial::constant(7.0, 2)];
        let set = CompiledPolySet::compile(&polys);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.nvars(), 2);
        let point = [3.0, -1.0];
        let mut out = [0.0; 3];
        set.eval_into(&point, &mut out);
        for (i, poly) in polys.iter().enumerate() {
            assert_eq!(out[i].to_bits(), poly.eval(&point).to_bits());
            assert_eq!(
                set.eval_one(i, &point).to_bits(),
                poly.eval(&point).to_bits()
            );
        }
        let dom = [Interval::new(-2.0, 3.5), Interval::new(-1.0, -0.5)];
        let mut iout = [Interval::zero(); 3];
        set.eval_interval_into(&dom, &mut iout);
        for (i, poly) in polys.iter().enumerate() {
            assert_eq!(iout[i], poly.eval_interval(&dom));
        }
    }

    #[test]
    fn scratch_reuse_across_different_shapes() {
        let mut scratch = PolyScratch::new();
        let small = Polynomial::variable(0, 1).compile();
        let big = Polynomial::from_basis(
            3,
            &monomial_basis(3, 4),
            &(0..crate::basis_size(3, 4))
                .map(|i| i as f64 * 0.1 - 1.0)
                .collect::<Vec<_>>(),
        );
        let big_c = big.compile();
        assert_eq!(small.eval_with(&[2.0], &mut scratch), 2.0);
        let point = [0.3, -0.4, 1.1];
        assert_eq!(
            big_c.eval_with(&point, &mut scratch).to_bits(),
            big.eval(&point).to_bits()
        );
        // Shrinking back to the small polynomial still works.
        assert_eq!(small.eval_with(&[-1.5], &mut scratch), -1.5);
    }

    #[test]
    fn batch_matches_scalar_on_fixed_cases() {
        let p = Polynomial::from_terms(
            2,
            vec![
                (vec![2, 1], 3.0),
                (vec![0, 3], -1.0),
                (vec![1, 0], 0.5),
                (vec![0, 0], -2.0),
            ],
        );
        let c = p.compile();
        // 19 states: two full 8-lane sweeps plus a ragged 3-lane tail.
        let states: Vec<Vec<f64>> = (0..19)
            .map(|i| vec![(i as f64) * 0.37 - 3.0, 2.5 - (i as f64) * 0.21])
            .collect();
        let batch = BatchPoints::from_states(2, &states);
        let mut out = Vec::new();
        c.evaluate_batch(&batch, &mut out);
        assert_eq!(out.len(), states.len());
        for (state, &value) in states.iter().zip(out.iter()) {
            assert_eq!(value.to_bits(), p.eval(state).to_bits());
        }
        // An empty batch produces an empty output.
        c.evaluate_batch(&BatchPoints::new(2), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_set_layout_is_polynomial_major() {
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let polys = vec![&x * &x, &x + &y, Polynomial::constant(7.0, 2)];
        let set = CompiledPolySet::compile(&polys);
        let states: Vec<Vec<f64>> = (0..11)
            .map(|i| vec![(i as f64) * 0.5 - 2.0, 1.0 - (i as f64) * 0.3])
            .collect();
        let batch = BatchPoints::from_states(2, &states);
        let mut out = Vec::new();
        set.evaluate_batch(&batch, &mut out);
        assert_eq!(out.len(), polys.len() * states.len());
        for (i, poly) in polys.iter().enumerate() {
            for (lane, state) in states.iter().enumerate() {
                assert_eq!(
                    out[i * states.len() + lane].to_bits(),
                    poly.eval(state).to_bits(),
                    "polynomial {i}, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_across_shapes() {
        let mut scratch = PolyScratch::new();
        let small = Polynomial::variable(0, 1).compile();
        let big = Polynomial::from_basis(
            3,
            &monomial_basis(3, 4),
            &(0..crate::basis_size(3, 4))
                .map(|i| i as f64 * 0.1 - 1.0)
                .collect::<Vec<_>>(),
        );
        let big_c = big.compile();
        let mut out = Vec::new();
        let small_batch = BatchPoints::from_states(1, &[vec![2.0], vec![-1.0]]);
        small.evaluate_batch_with(&small_batch, &mut out, &mut scratch);
        assert_eq!(out, vec![2.0, -1.0]);
        let big_states: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![0.3 - 0.05 * i as f64, -0.4, 1.1])
            .collect();
        let big_batch = BatchPoints::from_states(3, &big_states);
        big_c.evaluate_batch_with(&big_batch, &mut out, &mut scratch);
        for (state, &value) in big_states.iter().zip(out.iter()) {
            assert_eq!(value.to_bits(), big.eval(state).to_bits());
        }
        // Shrinking back to the small polynomial still works.
        small.evaluate_batch_with(&small_batch, &mut out, &mut scratch);
        assert_eq!(out, vec![2.0, -1.0]);
    }

    #[test]
    fn interval_batch_matches_scalar_on_fixed_cases() {
        let p = Polynomial::from_terms(
            2,
            vec![
                (vec![2, 1], 3.0),
                (vec![0, 3], -1.0),
                (vec![1, 0], 0.5),
                (vec![0, 0], -2.0),
            ],
        );
        let c = p.compile();
        // 19 boxes: two full 8-lane sweeps plus a ragged 3-lane tail, with
        // sign-straddling, all-negative, and all-positive lanes mixed.
        let boxes: Vec<Vec<Interval>> = (0..19)
            .map(|i| {
                let lo = (i as f64) * 0.3 - 3.0;
                vec![
                    Interval::new(lo, lo + 0.7),
                    Interval::new(-lo - 1.0, -lo + 0.4),
                ]
            })
            .collect();
        let batch = BatchBoxes::from_boxes(2, &boxes);
        let mut out = Vec::new();
        c.evaluate_interval_batch(&batch, &mut out);
        assert_eq!(out.len(), boxes.len());
        for (domain, enclosure) in boxes.iter().zip(out.iter()) {
            let reference = p.eval_interval(domain);
            assert_eq!(enclosure.lo().to_bits(), reference.lo().to_bits());
            assert_eq!(enclosure.hi().to_bits(), reference.hi().to_bits());
        }
        // An empty batch produces an empty output.
        c.evaluate_interval_batch(&BatchBoxes::new(2), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn interval_batch_set_layout_is_polynomial_major() {
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let polys = vec![&x * &x, &x + &y, Polynomial::constant(7.0, 2)];
        let set = CompiledPolySet::compile(&polys);
        let boxes: Vec<Vec<Interval>> = (0..11)
            .map(|i| {
                let t = i as f64 * 0.4 - 2.0;
                vec![Interval::new(t, t + 1.0), Interval::new(-1.0 - t, 1.5 - t)]
            })
            .collect();
        let batch = BatchBoxes::from_boxes(2, &boxes);
        let mut out = Vec::new();
        set.evaluate_interval_batch(&batch, &mut out);
        assert_eq!(out.len(), polys.len() * boxes.len());
        for (i, poly) in polys.iter().enumerate() {
            for (lane, domain) in boxes.iter().enumerate() {
                let reference = poly.eval_interval(domain);
                let batched = out[i * boxes.len() + lane];
                assert_eq!(
                    (batched.lo().to_bits(), batched.hi().to_bits()),
                    (reference.lo().to_bits(), reference.hi().to_bits()),
                    "polynomial {i}, lane {lane}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn interval_batch_rejects_wrong_dimension() {
        let batch = BatchBoxes::from_boxes(1, &[vec![Interval::zero()]]);
        Polynomial::variable(0, 2)
            .compile()
            .evaluate_interval_batch(&batch, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn compiled_eval_rejects_wrong_dimension() {
        let _ = Polynomial::variable(0, 2).compile().eval(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn batch_eval_rejects_wrong_dimension() {
        let batch = BatchPoints::from_states(1, &[vec![1.0]]);
        Polynomial::variable(0, 2)
            .compile()
            .evaluate_batch(&batch, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "same variables")]
    fn set_rejects_mismatched_variable_counts() {
        let _ = CompiledPolySet::compile(&[Polynomial::zero(1), Polynomial::zero(2)]);
    }

    proptest! {
        /// Compiled point evaluation is bit-for-bit the reference result on
        /// random polynomials up to degree 6 in up to 6 variables.
        #[test]
        fn prop_eval_bit_for_bit(
            nvars in 1usize..7,
            raw_exps in proptest::collection::vec(0u32..7, 72),
            coeffs in proptest::collection::vec(-5.0..5.0f64, 12),
            raw_point in proptest::collection::vec(-2.5..2.5f64, 6),
        ) {
            let p = poly_from_raw(nvars, &raw_exps, &coeffs);
            let c = p.compile();
            let point = &raw_point[..nvars];
            prop_assert_eq!(p.eval(point).to_bits(), c.eval(point).to_bits());
        }

        /// Compiled interval evaluation is bit-for-bit the reference
        /// enclosure on random polynomials and boxes.
        #[test]
        fn prop_eval_interval_bit_for_bit(
            nvars in 1usize..7,
            raw_exps in proptest::collection::vec(0u32..7, 72),
            coeffs in proptest::collection::vec(-5.0..5.0f64, 12),
            lows in proptest::collection::vec(-2.0..1.0f64, 6),
            widths in proptest::collection::vec(0.0..2.0f64, 6),
        ) {
            let p = poly_from_raw(nvars, &raw_exps, &coeffs);
            let c = p.compile();
            let domain: Vec<Interval> = (0..nvars)
                .map(|j| Interval::new(lows[j], lows[j] + widths[j]))
                .collect();
            let reference = p.eval_interval(&domain);
            let compiled = c.eval_interval(&domain);
            prop_assert_eq!(reference.lo().to_bits(), compiled.lo().to_bits());
            prop_assert_eq!(reference.hi().to_bits(), compiled.hi().to_bits());
        }

        /// Batched point evaluation is bit-for-bit the scalar compiled (and
        /// therefore reference) result for every lane count 1–9 — covering
        /// sub-lane batches, one exactly full sweep, and a ragged tail —
        /// on random polynomials up to degree 6 in up to 6 variables.
        #[test]
        fn prop_batch_bit_for_bit(
            nvars in 1usize..7,
            lanes in 1usize..10,
            raw_exps in proptest::collection::vec(0u32..7, 72),
            coeffs in proptest::collection::vec(-5.0..5.0f64, 12),
            raw_points in proptest::collection::vec(-2.5..2.5f64, 54),
        ) {
            let p = poly_from_raw(nvars, &raw_exps, &coeffs);
            let c = p.compile();
            let states: Vec<Vec<f64>> = (0..lanes)
                .map(|i| raw_points[i * nvars..(i + 1) * nvars].to_vec())
                .collect();
            let batch = BatchPoints::from_states(nvars, &states);
            let mut out = Vec::new();
            c.evaluate_batch(&batch, &mut out);
            prop_assert_eq!(out.len(), lanes);
            for (state, &value) in states.iter().zip(out.iter()) {
                prop_assert_eq!(value.to_bits(), p.eval(state).to_bits());
                prop_assert_eq!(value.to_bits(), c.eval(state).to_bits());
            }
        }

        /// Batched set evaluation is bit-for-bit the scalar result for every
        /// member and lane, across ragged lane counts.
        #[test]
        fn prop_batch_set_bit_for_bit(
            lanes in 1usize..10,
            raw_exps in proptest::collection::vec(0u32..5, 24),
            c1 in proptest::collection::vec(-3.0..3.0f64, 4),
            c2 in proptest::collection::vec(-3.0..3.0f64, 4),
            raw_points in proptest::collection::vec(-2.0..2.0f64, 27),
        ) {
            let p1 = poly_from_raw(3, &raw_exps[..12], &c1);
            let p2 = poly_from_raw(3, &raw_exps[12..], &c2);
            let set = CompiledPolySet::compile(&[p1.clone(), p2.clone()]);
            let states: Vec<Vec<f64>> = (0..lanes)
                .map(|i| raw_points[i * 3..(i + 1) * 3].to_vec())
                .collect();
            let batch = BatchPoints::from_states(3, &states);
            let mut out = Vec::new();
            set.evaluate_batch(&batch, &mut out);
            for (lane, state) in states.iter().enumerate() {
                prop_assert_eq!(out[lane].to_bits(), p1.eval(state).to_bits());
                prop_assert_eq!(out[lanes + lane].to_bits(), p2.eval(state).to_bits());
            }
        }

        /// Batched interval evaluation is bit-for-bit the scalar compiled
        /// (and therefore reference) enclosure for every lane count 1–9 —
        /// covering sub-lane batches, one exactly full sweep, and a ragged
        /// tail — on random polynomials up to degree 6 in up to 6 variables
        /// over random boxes (mirroring the `batch_conformance` sweep).
        #[test]
        fn prop_interval_batch_bit_for_bit(
            nvars in 1usize..7,
            lanes in 1usize..10,
            raw_exps in proptest::collection::vec(0u32..7, 72),
            coeffs in proptest::collection::vec(-5.0..5.0f64, 12),
            lows in proptest::collection::vec(-2.0..1.0f64, 54),
            widths in proptest::collection::vec(0.0..2.0f64, 54),
        ) {
            let p = poly_from_raw(nvars, &raw_exps, &coeffs);
            let c = p.compile();
            let boxes: Vec<Vec<Interval>> = (0..lanes)
                .map(|i| {
                    (0..nvars)
                        .map(|j| {
                            let lo = lows[i * nvars + j];
                            Interval::new(lo, lo + widths[i * nvars + j])
                        })
                        .collect()
                })
                .collect();
            let batch = BatchBoxes::from_boxes(nvars, &boxes);
            let mut out = Vec::new();
            c.evaluate_interval_batch(&batch, &mut out);
            prop_assert_eq!(out.len(), lanes);
            for (domain, enclosure) in boxes.iter().zip(out.iter()) {
                let reference = p.eval_interval(domain);
                let scalar = c.eval_interval(domain);
                prop_assert_eq!(enclosure.lo().to_bits(), reference.lo().to_bits());
                prop_assert_eq!(enclosure.hi().to_bits(), reference.hi().to_bits());
                prop_assert_eq!(enclosure.lo().to_bits(), scalar.lo().to_bits());
                prop_assert_eq!(enclosure.hi().to_bits(), scalar.hi().to_bits());
            }
        }

        /// Batched set interval evaluation is bit-for-bit the scalar result
        /// for every member and lane, across ragged lane counts.
        #[test]
        fn prop_interval_batch_set_bit_for_bit(
            lanes in 1usize..10,
            raw_exps in proptest::collection::vec(0u32..5, 24),
            c1 in proptest::collection::vec(-3.0..3.0f64, 4),
            c2 in proptest::collection::vec(-3.0..3.0f64, 4),
            lows in proptest::collection::vec(-2.0..1.0f64, 27),
            widths in proptest::collection::vec(0.0..2.0f64, 27),
        ) {
            let p1 = poly_from_raw(3, &raw_exps[..12], &c1);
            let p2 = poly_from_raw(3, &raw_exps[12..], &c2);
            let set = CompiledPolySet::compile(&[p1.clone(), p2.clone()]);
            let boxes: Vec<Vec<Interval>> = (0..lanes)
                .map(|i| {
                    (0..3)
                        .map(|j| {
                            let lo = lows[i * 3 + j];
                            Interval::new(lo, lo + widths[i * 3 + j])
                        })
                        .collect()
                })
                .collect();
            let batch = BatchBoxes::from_boxes(3, &boxes);
            let mut out = Vec::new();
            set.evaluate_interval_batch(&batch, &mut out);
            for (lane, domain) in boxes.iter().enumerate() {
                for (i, poly) in [&p1, &p2].iter().enumerate() {
                    let reference = poly.eval_interval(domain);
                    let batched = out[i * lanes + lane];
                    prop_assert_eq!(batched.lo().to_bits(), reference.lo().to_bits());
                    prop_assert_eq!(batched.hi().to_bits(), reference.hi().to_bits());
                }
            }
        }

        /// The lane kernel's even-power sign-split rule matches
        /// [`Interval::powi`] exactly and remains a conservative enclosure,
        /// for every lane of a ragged batch: evaluating the monomial `xᵏ`
        /// through `evaluate_interval_batch` must reproduce the endpoint
        /// fast path bit-for-bit (in particular `lo == 0` for even `k` on
        /// sign-straddling lanes) and contain every sampled `xᵏ`.  Extends
        /// the scalar `powi` containment proptests to batch endpoints, so a
        /// sign-split regression in the lane kernel cannot hide behind the
        /// scalar path.
        #[test]
        fn prop_interval_batch_even_power_containment(
            lanes in 1usize..10,
            n in 0u32..7,
            lows in proptest::collection::vec(-3.0..3.0f64, 9),
            widths in proptest::collection::vec(0.0..4.0f64, 9),
            t in 0.0..1.0f64,
        ) {
            let p = Polynomial::from_terms(1, vec![(vec![n], 1.0)]);
            let c = p.compile();
            let boxes: Vec<Vec<Interval>> = (0..lanes)
                .map(|i| vec![Interval::new(lows[i], lows[i] + widths[i])])
                .collect();
            let batch = BatchBoxes::from_boxes(1, &boxes);
            let mut out = Vec::new();
            c.evaluate_interval_batch(&batch, &mut out);
            for (domain, enclosure) in boxes.iter().zip(out.iter()) {
                let exact = domain[0].powi(n);
                prop_assert_eq!(enclosure.lo().to_bits(), exact.lo().to_bits());
                prop_assert_eq!(enclosure.hi().to_bits(), exact.hi().to_bits());
                if n > 0 && n % 2 == 0 && domain[0].lo() < 0.0 && domain[0].hi() > 0.0 {
                    // The sign-split rule: even powers of straddling lanes
                    // bottom out at exactly zero.
                    prop_assert_eq!(enclosure.lo(), 0.0);
                }
                let x = domain[0].lo() + t * domain[0].width();
                prop_assert!(enclosure.contains(x.powi(n as i32)));
            }
        }

        /// A compiled set agrees with compiling each member separately.
        #[test]
        fn prop_set_matches_individual_compilation(
            raw_exps in proptest::collection::vec(0u32..5, 24),
            c1 in proptest::collection::vec(-3.0..3.0f64, 4),
            c2 in proptest::collection::vec(-3.0..3.0f64, 4),
            px in -2.0..2.0f64, py in -2.0..2.0f64, pz in -2.0..2.0f64,
        ) {
            let p1 = poly_from_raw(3, &raw_exps[..12], &c1);
            let p2 = poly_from_raw(3, &raw_exps[12..], &c2);
            let set = CompiledPolySet::compile(&[p1.clone(), p2.clone()]);
            let point = [px, py, pz];
            let mut out = [0.0; 2];
            set.eval_into(&point, &mut out);
            prop_assert_eq!(out[0].to_bits(), p1.eval(&point).to_bits());
            prop_assert_eq!(out[1].to_bits(), p2.eval(&point).to_bits());
        }
    }
}
