//! Degree-bounded monomial basis generation.
//!
//! Invariant sketches in the paper (Eq. 7 and Example 4.1) are affine
//! combinations `E[c](X) = Σ c_i · b_i(X)` of *all* monomials whose total
//! degree is at most a user-chosen bound.  [`monomial_basis`] enumerates that
//! basis deterministically (graded lexicographic order) so that coefficient
//! vectors produced by the solver line up with it.

/// Enumerates all exponent vectors of `nvars` variables with total degree at
/// most `max_degree`, in graded lexicographic order (degree-major, then
/// lexicographic on exponents).
///
/// The constant monomial (all-zero exponents) is always the first entry.
///
/// # Examples
///
/// ```
/// use vrl_poly::monomial_basis;
///
/// let basis = monomial_basis(2, 2);
/// // 1, x, y, x^2, xy, y^2
/// assert_eq!(basis.len(), 6);
/// assert_eq!(basis[0], vec![0, 0]);
/// assert_eq!(basis[3], vec![2, 0]);
/// ```
pub fn monomial_basis(nvars: usize, max_degree: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(basis_size(nvars, max_degree));
    for degree in 0..=max_degree {
        let mut current = vec![0u32; nvars];
        emit_exact_degree(nvars, degree, 0, &mut current, &mut out);
    }
    out
}

fn emit_exact_degree(
    nvars: usize,
    remaining: u32,
    index: usize,
    current: &mut Vec<u32>,
    out: &mut Vec<Vec<u32>>,
) {
    if nvars == 0 {
        if remaining == 0 {
            out.push(current.clone());
        }
        return;
    }
    if index == nvars - 1 {
        current[index] = remaining;
        out.push(current.clone());
        current[index] = 0;
        return;
    }
    // Lexicographic: highest exponent on the earliest variable first.
    for e in (0..=remaining).rev() {
        current[index] = e;
        emit_exact_degree(nvars, remaining - e, index + 1, current, out);
    }
    current[index] = 0;
}

/// Number of monomials of `nvars` variables with total degree at most
/// `max_degree`, i.e. `C(nvars + max_degree, max_degree)`.
///
/// # Examples
///
/// ```
/// use vrl_poly::basis_size;
///
/// assert_eq!(basis_size(2, 4), 15);
/// assert_eq!(basis_size(3, 2), 10);
/// ```
pub fn basis_size(nvars: usize, max_degree: u32) -> usize {
    // C(n + d, d) computed incrementally to avoid overflow for small inputs.
    let n = nvars as u64;
    let d = max_degree as u64;
    let mut result: u64 = 1;
    for i in 1..=d {
        result = result * (n + i) / i;
    }
    result as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn one_variable_basis() {
        assert_eq!(
            monomial_basis(1, 3),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
    }

    #[test]
    fn zero_degree_is_constant_only() {
        assert_eq!(monomial_basis(3, 0), vec![vec![0, 0, 0]]);
        assert_eq!(basis_size(3, 0), 1);
    }

    #[test]
    fn zero_variables() {
        assert_eq!(monomial_basis(0, 4), vec![Vec::<u32>::new()]);
        assert_eq!(basis_size(0, 4), 1);
    }

    #[test]
    fn two_variable_degree_two_matches_hand_enumeration() {
        let basis = monomial_basis(2, 2);
        assert_eq!(
            basis,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![0, 1],
                vec![2, 0],
                vec![1, 1],
                vec![0, 2],
            ]
        );
    }

    #[test]
    fn pendulum_sketch_size_matches_paper_example() {
        // Example 4.1: all monomials over (η, ω) of degree at most 4 — 15 terms.
        assert_eq!(monomial_basis(2, 4).len(), 15);
        assert_eq!(basis_size(2, 4), 15);
    }

    #[test]
    fn counts_match_combinatorial_formula() {
        for nvars in 0..5usize {
            for degree in 0..5u32 {
                assert_eq!(
                    monomial_basis(nvars, degree).len(),
                    basis_size(nvars, degree),
                    "count mismatch at nvars={nvars}, degree={degree}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_basis_entries_are_unique_and_within_degree(nvars in 1usize..5, degree in 0u32..5) {
            let basis = monomial_basis(nvars, degree);
            let mut seen = HashSet::new();
            for exps in &basis {
                prop_assert_eq!(exps.len(), nvars);
                prop_assert!(exps.iter().sum::<u32>() <= degree);
                prop_assert!(seen.insert(exps.clone()), "duplicate exponent vector {:?}", exps);
            }
        }

        #[test]
        fn prop_basis_is_degree_sorted(nvars in 1usize..4, degree in 0u32..5) {
            let basis = monomial_basis(nvars, degree);
            let degrees: Vec<u32> = basis.iter().map(|e| e.iter().sum()).collect();
            let mut sorted = degrees.clone();
            sorted.sort_unstable();
            prop_assert_eq!(degrees, sorted);
        }
    }
}
