//! Closed real intervals with outward-conservative arithmetic.
//!
//! The verifier uses interval arithmetic to bound the range of polynomials
//! over boxes.  Operations here are *conservative*: the true range of the
//! operation over the operand intervals is always contained in the result.
//! (We do not perform directed rounding; the slack used by the verifier is
//! many orders of magnitude larger than double-precision rounding error, and
//! every acceptance threshold in the verifier budgets for it explicitly.)

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` of real numbers.
///
/// # Examples
///
/// ```
/// use vrl_poly::Interval;
///
/// let a = Interval::new(-1.0, 2.0);
/// let b = a * a;
/// assert_eq!(b.lo(), -2.0); // naive product bound
/// assert_eq!(a.pow(2).lo(), 0.0); // even powers use the tighter rule
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// The interval `[0, 0]`.
    pub fn zero() -> Self {
        Interval::point(0.0)
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Returns true when `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Returns true when `other` is entirely contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns true when the two intervals share at least one point.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection, if non-empty.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    /// Smallest interval containing both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Scales the interval by a scalar (handles negative scalars).
    pub fn scaled(&self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval::new(self.lo * k, self.hi * k)
        } else {
            Interval::new(self.hi * k, self.lo * k)
        }
    }

    /// Integer power with the tight rule for even exponents.
    ///
    /// Delegates to [`Interval::powi`]; see there for the enclosure
    /// guarantees.
    pub fn pow(&self, n: u32) -> Interval {
        self.powi(n)
    }

    /// Integer power via the endpoint fast path: both bounds are raised
    /// with `f64::powi` (square-and-multiply, `O(log n)` multiplications)
    /// and the sign structure of the interval picks the bounds directly —
    /// the historic `pow` used the same endpoint rule but selected bounds
    /// through `min`/`max` comparisons; this restructuring is
    /// value-identical and exists so the sign cases are explicit and
    /// branch-cheap.  Neither is the `O(n)` chain of four-product interval
    /// multiplications a naive power would perform.
    ///
    /// The result is always **at least as tight** as repeated interval
    /// multiplication — monotone-branch analysis gives the exact range
    /// `{xⁿ : x ∈ [lo, hi]}` up to `f64::powi` rounding (each endpoint is
    /// within a few ulps of the true power), whereas the product chain
    /// compounds its over-approximation at every step, e.g.
    /// `[-1, 2]·[-1, 2] = [-2, 4]` while `[-1, 2].powi(2) = [0, 4]`.  The
    /// `prop_powi_tighter_than_repeated_mul` test pins this tightness
    /// relation against the naive baseline.
    ///
    /// The compiled evaluation kernels reproduce this rule bit-for-bit in
    /// their interval power tables — including the sign-split case where
    /// even powers of a zero-straddling interval bottom out at exactly
    /// zero — for both the scalar and the lane-batched fills; the
    /// `prop_interval_batch_even_power_containment` proptest in the
    /// `compiled` module extends the containment guarantees here to every
    /// lane of a batched sweep.
    pub fn powi(&self, n: u32) -> Interval {
        match n {
            0 => Interval::point(1.0),
            1 => *self,
            _ => {
                let a = self.lo.powi(n as i32);
                let b = self.hi.powi(n as i32);
                if n.is_multiple_of(2) {
                    if self.lo >= 0.0 {
                        // Monotone increasing on [0, ∞).
                        Interval { lo: a, hi: b }
                    } else if self.hi <= 0.0 {
                        // Monotone decreasing on (-∞, 0].
                        Interval { lo: b, hi: a }
                    } else {
                        // Straddles zero: the minimum is attained at 0.
                        Interval {
                            lo: 0.0,
                            hi: a.max(b),
                        }
                    }
                } else {
                    // Odd powers are monotone increasing everywhere.
                    Interval { lo: a, hi: b }
                }
            }
        }
    }

    /// Maximum absolute value attained on the interval.
    pub fn abs_max(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Splits the interval at its midpoint into `(left, right)`.
    pub fn bisect(&self) -> (Interval, Interval) {
        let m = self.midpoint();
        (Interval::new(self.lo, m), Interval::new(m, self.hi))
    }

    /// Returns true when the whole interval is `<= bound`.
    pub fn certainly_le(&self, bound: f64) -> bool {
        self.hi <= bound
    }

    /// Returns true when the whole interval is `>= bound`.
    pub fn certainly_ge(&self, bound: f64) -> bool {
        self.lo >= bound
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::zero()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl From<f64> for Interval {
    fn from(x: f64) -> Self {
        Interval::point(x)
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let products = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = products.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = products.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_accessors() {
        let a = Interval::new(-1.0, 3.0);
        assert_eq!(a.lo(), -1.0);
        assert_eq!(a.hi(), 3.0);
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.midpoint(), 1.0);
        assert!(a.contains(0.0));
        assert!(!a.contains(3.5));
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(Interval::point(2.0).width(), 0.0);
        assert_eq!(Interval::zero(), Interval::default());
        assert_eq!(Interval::from(1.5), Interval::point(1.5));
        assert_eq!(format!("{}", Interval::new(0.0, 1.0)), "[0, 1]");
    }

    #[test]
    fn arithmetic_is_conservative() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a + b, Interval::new(2.0, 6.0));
        assert_eq!(a - b, Interval::new(-5.0, -1.0));
        assert_eq!(a * b, Interval::new(-4.0, 8.0));
        assert_eq!(-a, Interval::new(-2.0, 1.0));
        assert_eq!(a.scaled(-2.0), Interval::new(-4.0, 2.0));
        assert_eq!(a.scaled(0.5), Interval::new(-0.5, 1.0));
    }

    #[test]
    fn powers_use_even_rule() {
        let a = Interval::new(-2.0, 1.0);
        assert_eq!(a.pow(0), Interval::point(1.0));
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), Interval::new(0.0, 4.0));
        assert_eq!(a.pow(3), Interval::new(-8.0, 1.0));
        let positive = Interval::new(1.0, 2.0);
        assert_eq!(positive.pow(2), Interval::new(1.0, 4.0));
        let negative = Interval::new(-3.0, -1.0);
        assert_eq!(negative.pow(2), Interval::new(1.0, 9.0));
    }

    #[test]
    fn set_operations() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(!a.contains_interval(&b));
        let far = Interval::new(5.0, 6.0);
        assert!(!a.intersects(&far));
        assert_eq!(a.intersection(&far), None);
        let (l, r) = a.bisect();
        assert_eq!(l, Interval::new(0.0, 1.0));
        assert_eq!(r, Interval::new(1.0, 2.0));
        assert!(a.certainly_le(2.0));
        assert!(!a.certainly_le(1.9));
        assert!(a.certainly_ge(0.0));
        assert!(!a.certainly_ge(0.1));
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn invalid_interval_panics() {
        let _ = Interval::new(1.0, 0.0);
    }

    fn sample_in(i: Interval, t: f64) -> f64 {
        i.lo() + t * i.width()
    }

    /// The naive power a direct implementation would use (`n`-fold interval
    /// multiplication) — never what `pow` did, but the baseline that makes
    /// the endpoint rule's tightness guarantee concrete.
    fn pow_by_repeated_mul(i: Interval, n: u32) -> Interval {
        let mut result = Interval::point(1.0);
        for _ in 0..n {
            result = result * i;
        }
        result
    }

    #[test]
    fn powi_is_tighter_than_repeated_multiplication() {
        // The canonical case: squaring a zero-straddling interval.
        let a = Interval::new(-1.0, 2.0);
        assert_eq!(pow_by_repeated_mul(a, 2), Interval::new(-2.0, 4.0));
        assert_eq!(a.powi(2), Interval::new(0.0, 4.0));
        // pow delegates to powi.
        assert_eq!(a.pow(4), a.powi(4));
        assert_eq!(a.powi(0), Interval::point(1.0));
        assert_eq!(a.powi(1), a);
    }

    proptest! {
        /// powi is contained in (≤ a few ulps of) the old repeated-multiply
        /// enclosure: the fast path never loosens a bound the naive path
        /// certified.  The slack covers `f64::powi` computing endpoint
        /// powers by squaring, which can differ from the left-to-right
        /// product chain by a few ulps in either direction.
        #[test]
        fn prop_powi_tighter_than_repeated_mul(lo in -3.0..3.0f64, w in 0.0..4.0f64, n in 0u32..8) {
            let a = Interval::new(lo, lo + w);
            let fast = a.powi(n);
            let naive = pow_by_repeated_mul(a, n);
            let slack = 1e-12 * (1.0 + naive.abs_max());
            prop_assert!(fast.lo() >= naive.lo() - slack,
                         "fast lower bound {} looser than naive {}", fast.lo(), naive.lo());
            prop_assert!(fast.hi() <= naive.hi() + slack,
                         "fast upper bound {} looser than naive {}", fast.hi(), naive.hi());
        }

        /// powi remains a conservative enclosure of the true range.
        #[test]
        fn prop_powi_is_conservative(lo in -3.0..3.0f64, w in 0.0..4.0f64,
                                      t in 0.0..1.0f64, n in 0u32..8) {
            let a = Interval::new(lo, lo + w);
            let x = sample_in(a, t);
            prop_assert!(a.powi(n).contains(x.powi(n as i32)));
        }
    }

    proptest! {
        #[test]
        fn prop_add_is_conservative(alo in -10.0..10.0f64, aw in 0.0..5.0f64,
                                     blo in -10.0..10.0f64, bw in 0.0..5.0f64,
                                     ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
            let a = Interval::new(alo, alo + aw);
            let b = Interval::new(blo, blo + bw);
            let x = sample_in(a, ta);
            let y = sample_in(b, tb);
            prop_assert!((a + b).contains(x + y));
            prop_assert!((a - b).contains(x - y));
            prop_assert!((a * b).contains(x * y));
        }

        #[test]
        fn prop_pow_is_conservative(lo in -5.0..5.0f64, w in 0.0..5.0f64,
                                     t in 0.0..1.0f64, n in 0u32..6) {
            let a = Interval::new(lo, lo + w);
            let x = sample_in(a, t);
            prop_assert!(a.pow(n).contains(x.powi(n as i32)));
        }

        #[test]
        fn prop_bisect_covers(lo in -5.0..5.0f64, w in 0.0..5.0f64, t in 0.0..1.0f64) {
            let a = Interval::new(lo, lo + w);
            let x = sample_in(a, t);
            let (l, r) = a.bisect();
            prop_assert!(l.contains(x) || r.contains(x));
            prop_assert!(a.contains_interval(&l) && a.contains_interval(&r));
        }
    }
}
