//! Portable (plain-data) polynomial representation for artifact persistence.
//!
//! A [`PortablePolynomial`] is the structural content of a [`Polynomial`] as
//! ordinary owned data — no maps, no invariants — so higher layers (the
//! `vrl-runtime` artifact codec) can serialize it without knowing anything
//! about the internal term storage.  `to_portable`/`from_portable` round-trip
//! exactly: coefficients are carried as `f64` bit patterns end to end.

use crate::Polynomial;

/// Plain-data form of a [`Polynomial`]: the variable count and the sparse
/// `(exponents, coefficient)` terms in canonical (sorted) order.
#[derive(Debug, Clone, PartialEq)]
pub struct PortablePolynomial {
    /// Number of variables the polynomial ranges over.
    pub nvars: u32,
    /// Sparse terms; every exponent vector has length `nvars`.
    pub terms: Vec<(Vec<u32>, f64)>,
}

impl Polynomial {
    /// Extracts the plain-data form of this polynomial.
    pub fn to_portable(&self) -> PortablePolynomial {
        PortablePolynomial {
            nvars: self.nvars() as u32,
            terms: self.terms().map(|(e, c)| (e.clone(), c)).collect(),
        }
    }

    /// Rebuilds a polynomial from its plain-data form.
    ///
    /// # Errors
    ///
    /// Returns a message when an exponent vector's length disagrees with
    /// `nvars` (the only structural invariant a portable polynomial can
    /// violate).
    pub fn from_portable(portable: &PortablePolynomial) -> Result<Polynomial, String> {
        let nvars = portable.nvars as usize;
        for (exps, _) in &portable.terms {
            if exps.len() != nvars {
                return Err(format!(
                    "polynomial term has {} exponents but the polynomial has {} variables",
                    exps.len(),
                    nvars
                ));
            }
        }
        Ok(Polynomial::from_terms(
            nvars,
            portable.terms.iter().map(|(e, c)| (e.clone(), *c)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_terms_exactly() {
        let x = Polynomial::variable(0, 2);
        let y = Polynomial::variable(1, 2);
        let p = &(&(&x * &x) + &(&x * &y).scaled(-3.25)) + &Polynomial::constant(0.5, 2);
        let portable = p.to_portable();
        let q = Polynomial::from_portable(&portable).unwrap();
        assert_eq!(p, q);
        assert_eq!(portable.nvars, 2);
        assert_eq!(portable.terms.len(), 3);
    }

    #[test]
    fn zero_polynomial_round_trips() {
        let z = Polynomial::zero(3);
        let q = Polynomial::from_portable(&z.to_portable()).unwrap();
        assert_eq!(z, q);
    }

    #[test]
    fn wrong_exponent_length_is_rejected() {
        let bad = PortablePolynomial {
            nvars: 2,
            terms: vec![(vec![1], 1.0)],
        };
        assert!(Polynomial::from_portable(&bad).is_err());
    }
}
