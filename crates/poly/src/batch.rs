//! Structure-of-arrays point and box batches for lane-parallel evaluation.
//!
//! The batched kernels in the `compiled` module sweep 4–8 states at a time
//! through one shared power-table fill per variable.  They read coordinates
//! *variable-major*: all lane values of variable `j` must be contiguous so
//! the per-variable table fill is a unit-stride loop the compiler can
//! vectorize.  [`BatchPoints`] is that layout — one column per variable —
//! with a small builder API so serving paths can reuse the storage across
//! batches.  [`BatchBoxes`] is the interval analogue — one lower-endpoint
//! and one upper-endpoint column per variable — feeding the lane-batched
//! interval kernels that branch-and-bound uses to expand its frontier
//! several boxes per sweep.

use crate::Interval;

/// A batch of evaluation points stored structure-of-arrays: one contiguous
/// column of lane values per variable.
///
/// Columns grow amortized like `Vec`; [`BatchPoints::clear`] retains the
/// capacity, so a serving loop that refills the same batch every request is
/// allocation-free in steady state.
///
/// # Examples
///
/// ```
/// use vrl_poly::BatchPoints;
///
/// let mut batch = BatchPoints::new(2);
/// batch.push(&[1.0, 2.0]);
/// batch.push(&[3.0, 4.0]);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.column(0), &[1.0, 3.0]);
/// assert_eq!(batch.column(1), &[2.0, 4.0]);
/// assert_eq!(batch.state(1), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchPoints {
    nvars: usize,
    len: usize,
    columns: Vec<Vec<f64>>,
}

impl BatchPoints {
    /// An empty batch of points over `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        BatchPoints {
            nvars,
            len: 0,
            columns: vec![Vec::new(); nvars],
        }
    }

    /// An empty batch with room for `capacity` states per column.
    pub fn with_capacity(nvars: usize, capacity: usize) -> Self {
        BatchPoints {
            nvars,
            len: 0,
            // Not `vec![Vec::with_capacity(..); nvars]`: cloning a Vec does
            // not preserve its capacity, so that would preallocate only the
            // template column.
            columns: (0..nvars).map(|_| Vec::with_capacity(capacity)).collect(),
        }
    }

    /// Builds a batch by transposing row-major states.
    ///
    /// # Panics
    ///
    /// Panics if any state's dimension differs from `nvars`.
    pub fn from_states<S: AsRef<[f64]>>(nvars: usize, states: &[S]) -> Self {
        let mut batch = BatchPoints::with_capacity(nvars, states.len());
        for state in states {
            batch.push(state.as_ref());
        }
        batch
    }

    /// Appends one state as the next lane.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.nvars()`.
    pub fn push(&mut self, state: &[f64]) {
        assert_eq!(state.len(), self.nvars, "state has wrong dimension");
        for (column, &x) in self.columns.iter_mut().zip(state.iter()) {
            column.push(x);
        }
        self.len += 1;
    }

    /// Removes all states, keeping the column capacity.
    pub fn clear(&mut self) {
        for column in &mut self.columns {
            column.clear();
        }
        self.len = 0;
    }

    /// Resizes every column to `len` lanes, filling new lanes with `value` —
    /// what column-wise producers (e.g. the batched integrator step) use to
    /// size the output before writing columns directly.
    pub fn resize_lanes(&mut self, len: usize, value: f64) {
        for column in &mut self.columns {
            column.resize(len, value);
        }
        self.len = len;
    }

    /// Mutable access to the contiguous lane values of variable `var`, for
    /// column-wise producers.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.nvars()`.
    pub fn column_mut(&mut self, var: usize) -> &mut [f64] {
        &mut self.columns[var]
    }

    /// Number of variables per state.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of states (lanes) in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true when the batch holds no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contiguous lane values of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.nvars()`.
    pub fn column(&self, var: usize) -> &[f64] {
        &self.columns[var]
    }

    /// Reassembles lane `i` as a row-major state (test/debug convenience;
    /// the hot paths read columns or use [`BatchPoints::state_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn state(&self, i: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nvars);
        self.state_into(i, &mut out);
        out
    }

    /// Writes lane `i` row-major into `out` (cleared first), reusing the
    /// buffer's storage — what per-lane fallback paths use to avoid a
    /// transpose-back allocation per state.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn state_into(&self, i: usize, out: &mut Vec<f64>) {
        assert!(i < self.len, "lane index out of range");
        out.clear();
        out.extend(self.columns.iter().map(|c| c[i]));
    }
}

/// A batch of axis-aligned boxes stored structure-of-arrays: one contiguous
/// column of lane lower endpoints and one of lane upper endpoints per
/// variable.
///
/// This is the interval analogue of [`BatchPoints`]: the lane-batched
/// interval kernels read both endpoint columns of a variable as unit-stride
/// slices, so one power-table fill per variable serves a whole
/// [`crate::LANE_WIDTH`]-lane sweep of boxes.  Columns grow amortized like
/// `Vec`; [`BatchBoxes::clear`] retains the capacity, so the
/// branch-and-bound frontier loop that refills the same batch every sweep
/// is allocation-free in steady state.
///
/// # Examples
///
/// ```
/// use vrl_poly::{BatchBoxes, Interval};
///
/// let mut batch = BatchBoxes::new(2);
/// batch.push(&[Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)]);
/// batch.push(&[Interval::new(0.5, 0.75), Interval::new(-3.0, -2.0)]);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.lo_column(0), &[-1.0, 0.5]);
/// assert_eq!(batch.hi_column(1), &[2.0, -2.0]);
/// assert_eq!(batch.box_at(1)[1], Interval::new(-3.0, -2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchBoxes {
    nvars: usize,
    len: usize,
    lo_columns: Vec<Vec<f64>>,
    hi_columns: Vec<Vec<f64>>,
}

impl BatchBoxes {
    /// An empty batch of boxes over `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        BatchBoxes {
            nvars,
            len: 0,
            lo_columns: vec![Vec::new(); nvars],
            hi_columns: vec![Vec::new(); nvars],
        }
    }

    /// An empty batch with room for `capacity` boxes per column.
    pub fn with_capacity(nvars: usize, capacity: usize) -> Self {
        BatchBoxes {
            nvars,
            len: 0,
            // Per-column `with_capacity` (cloning a Vec drops its capacity).
            lo_columns: (0..nvars).map(|_| Vec::with_capacity(capacity)).collect(),
            hi_columns: (0..nvars).map(|_| Vec::with_capacity(capacity)).collect(),
        }
    }

    /// Builds a batch by transposing row-major boxes.
    ///
    /// # Panics
    ///
    /// Panics if any box's dimension differs from `nvars`.
    pub fn from_boxes<B: AsRef<[Interval]>>(nvars: usize, boxes: &[B]) -> Self {
        let mut batch = BatchBoxes::with_capacity(nvars, boxes.len());
        for domain in boxes {
            batch.push(domain.as_ref());
        }
        batch
    }

    /// Appends one box as the next lane.
    ///
    /// # Panics
    ///
    /// Panics if `domain.len() != self.nvars()`.
    pub fn push(&mut self, domain: &[Interval]) {
        assert_eq!(domain.len(), self.nvars, "box has wrong dimension");
        for (j, iv) in domain.iter().enumerate() {
            self.lo_columns[j].push(iv.lo());
            self.hi_columns[j].push(iv.hi());
        }
        self.len += 1;
    }

    /// Removes all boxes, keeping the column capacity.
    pub fn clear(&mut self) {
        for column in self.lo_columns.iter_mut().chain(self.hi_columns.iter_mut()) {
            column.clear();
        }
        self.len = 0;
    }

    /// Number of variables per box.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of boxes (lanes) in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true when the batch holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contiguous lane lower endpoints of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.nvars()`.
    pub fn lo_column(&self, var: usize) -> &[f64] {
        &self.lo_columns[var]
    }

    /// The contiguous lane upper endpoints of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.nvars()`.
    pub fn hi_column(&self, var: usize) -> &[f64] {
        &self.hi_columns[var]
    }

    /// Reassembles lane `i` as a row-major box (test/debug convenience; the
    /// hot paths read columns).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn box_at(&self, i: usize) -> Vec<Interval> {
        assert!(i < self.len, "lane index out of range");
        (0..self.nvars)
            .map(|j| Interval::new(self.lo_columns[j][i], self.hi_columns[j][i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_clear_and_reuse() {
        let mut batch = BatchPoints::with_capacity(3, 4);
        assert!(batch.is_empty());
        assert_eq!(batch.nvars(), 3);
        batch.push(&[1.0, 2.0, 3.0]);
        batch.push(&[4.0, 5.0, 6.0]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.column(2), &[3.0, 6.0]);
        assert_eq!(batch.state(0), vec![1.0, 2.0, 3.0]);
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&[7.0, 8.0, 9.0]);
        assert_eq!(batch.state(0), vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn from_states_transposes() {
        let batch = BatchPoints::from_states(2, &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.column(0), &[1.0, 3.0, 5.0]);
        assert_eq!(batch.column(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn zero_variable_batch_counts_lanes() {
        let mut batch = BatchPoints::new(0);
        batch.push(&[]);
        batch.push(&[]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.state(1), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn mismatched_push_rejected() {
        let mut batch = BatchPoints::new(2);
        batch.push(&[1.0]);
    }

    #[test]
    fn column_wise_production() {
        let mut batch = BatchPoints::new(2);
        batch.resize_lanes(3, 0.0);
        assert_eq!(batch.len(), 3);
        batch.column_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        batch.column_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(batch.state(1), vec![2.0, 5.0]);
        batch.resize_lanes(1, 0.0);
        assert_eq!(batch.state(0), vec![1.0, 4.0]);
    }

    #[test]
    fn boxes_push_clear_and_reuse() {
        let mut batch = BatchBoxes::with_capacity(2, 4);
        assert!(batch.is_empty());
        assert_eq!(batch.nvars(), 2);
        batch.push(&[Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)]);
        batch.push(&[Interval::new(0.5, 0.75), Interval::new(-3.0, -2.0)]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.lo_column(0), &[-1.0, 0.5]);
        assert_eq!(batch.hi_column(0), &[1.0, 0.75]);
        assert_eq!(
            batch.box_at(0),
            vec![Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)]
        );
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&[Interval::point(0.0), Interval::point(1.0)]);
        assert_eq!(
            batch.box_at(0),
            vec![Interval::point(0.0), Interval::point(1.0)]
        );
    }

    #[test]
    fn boxes_from_boxes_transposes() {
        let boxes = vec![
            vec![Interval::new(0.0, 1.0)],
            vec![Interval::new(2.0, 3.0)],
            vec![Interval::new(-1.0, -0.5)],
        ];
        let batch = BatchBoxes::from_boxes(1, &boxes);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.lo_column(0), &[0.0, 2.0, -1.0]);
        assert_eq!(batch.hi_column(0), &[1.0, 3.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn mismatched_box_push_rejected() {
        let mut batch = BatchBoxes::new(2);
        batch.push(&[Interval::zero()]);
    }
}
